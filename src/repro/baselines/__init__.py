"""Baseline index structures Umzi is compared against.

The paper motivates Umzi against two families (sections 1, 3, 9):

* classic LSM indexes that assume **fixed RIDs** (LevelDB/RocksDB-style, or
  WiscKey-style key->RID maps) -- :class:`~repro.baselines.lsm.ClassicLSMIndex`.
  They break when data evolves between zones and RIDs change;
* **separate per-zone indexes** with a query-side union (MemSQL-style) --
  :class:`~repro.baselines.separate.SeparateZoneIndexes`.  They expose a
  divided view: queries must reconcile duplicates/missing rows themselves
  and pay for searching both structures.

:class:`~repro.baselines.btree.SortedArrayIndex` is an in-memory,
fully-sorted multi-version index that doubles as the brute-force oracle in
property-based tests.
"""

from repro.baselines.btree import SortedArrayIndex
from repro.baselines.lsm import ClassicLSMIndex, LSMMergePolicy
from repro.baselines.separate import SeparateZoneIndexes

__all__ = [
    "ClassicLSMIndex",
    "LSMMergePolicy",
    "SeparateZoneIndexes",
    "SortedArrayIndex",
]
