"""A classic single-store LSM index with the fixed-RID assumption.

This is the design Umzi's section 3 argues against for HTAP: a standard
LSM secondary index (LevelDB/RocksDB-style levels; WiscKey-style key->RID
entries) that knows nothing about zones.  It works fine while RIDs are
stable -- and *breaks* when data evolves between zones and RIDs change,
because its only remedies are (a) serving dangling RIDs or (b) a full
rebuild (:meth:`ClassicLSMIndex.rebuild_with_rids`), whose cost the
ablation benchmark compares against Umzi's incremental evolve.

Both textbook merge policies (section 2.2) are implemented:

* **leveling** -- one run per level; a run moves up by merging into the
  next level's run whenever it exceeds its level's capacity;
* **tiering** -- up to T runs per level; a full level merges into one run
  at the next level.
"""

from __future__ import annotations

import enum
import threading
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.builder import RunBuilder
from repro.core.definition import IndexDefinition
from repro.core.entry import (
    IndexEntry,
    RID,
    RID_BYTES,
    Zone,
    replace_rid_in_blob,
)
from repro.core.merge import merge_entry_blob_streams
from repro.core.query import MAX_QUERY_TS
from repro.core.run import IndexRun, Synopsis
from repro.core.search import lookup_key_in_run, search_run
from repro.core.encoding import prefix_successor
from repro.storage.hierarchy import StorageHierarchy


class LSMMergePolicy(str, enum.Enum):
    LEVELING = "leveling"
    TIERING = "tiering"


class ClassicLSMIndex:
    """Single-zone LSM index over (key -> beginTS, RID) entries."""

    def __init__(
        self,
        definition: IndexDefinition,
        hierarchy: Optional[StorageHierarchy] = None,
        policy: LSMMergePolicy = LSMMergePolicy.LEVELING,
        memtable_limit: int = 1024,
        size_ratio: int = 4,
        data_block_bytes: int = 32 * 1024,
        name: str = "classic-lsm",
    ) -> None:
        if memtable_limit < 1:
            raise ValueError("memtable_limit must be >= 1")
        if size_ratio < 2:
            raise ValueError("size_ratio must be >= 2")
        self.definition = definition
        self.hierarchy = hierarchy if hierarchy is not None else StorageHierarchy()
        self.policy = policy
        self.memtable_limit = memtable_limit
        self.size_ratio = size_ratio
        self.builder = RunBuilder(definition, self.hierarchy, data_block_bytes)
        self._name = name
        self._memtable: List[IndexEntry] = []
        # levels[i] -> runs at level i, newest first.
        self._levels: List[List[IndexRun]] = []
        self._run_seq = 0
        self._lock = threading.Lock()
        self.flushes = 0
        self.merges = 0

    # -- writes -----------------------------------------------------------------------

    def insert(self, entry: IndexEntry) -> None:
        with self._lock:
            self._memtable.append(entry)
            if len(self._memtable) >= self.memtable_limit:
                self._flush_locked()

    def insert_many(self, entries: Iterable[IndexEntry]) -> None:
        for entry in entries:
            self.insert(entry)

    def flush(self) -> None:
        with self._lock:
            if self._memtable:
                self._flush_locked()

    def _flush_locked(self, maybe_merge: bool = True) -> None:
        run = self._build_run(self._memtable, level=0)
        self._memtable = []
        self.flushes += 1
        self._install(run, level=0)
        if maybe_merge:
            self._maybe_merge_locked()

    def _next_run_id(self) -> str:
        run_id = f"{self._name}-{self._run_seq:06d}"
        self._run_seq += 1
        return run_id

    def _build_run(self, entries: List[IndexEntry], level: int) -> IndexRun:
        run_id = self._next_run_id()
        return self.builder.build(
            run_id=run_id,
            entries=entries,
            zone=Zone.GROOMED,  # zone is only a label here; one store
            level=level,
            min_groomed_id=0,
            max_groomed_id=0,
        )

    def _merge_runs(self, inputs: List[IndexRun], level: int) -> IndexRun:
        """Merge ``inputs`` (newest first) into one run at ``level``.

        Reuses the core blob-stream K-way merge: entry bytes move from the
        input blocks to the new run verbatim, so baseline-vs-Umzi numbers
        compare index *designs*, not decode overhead.
        """
        return self.builder.build_from_blobs(
            run_id=self._next_run_id(),
            blob_pairs=merge_entry_blob_streams(self.definition, inputs),
            synopsis=Synopsis.union([r.header.synopsis for r in inputs]),
            zone=Zone.GROOMED,
            level=level,
            min_groomed_id=0,
            max_groomed_id=0,
        )

    def _install(self, run: IndexRun, level: int) -> None:
        while len(self._levels) <= level:
            self._levels.append([])
        self._levels[level].insert(0, run)

    def _capacity(self, level: int) -> int:
        return self.memtable_limit * (self.size_ratio ** (level + 1))

    def _maybe_merge_locked(self) -> None:
        if self.policy is LSMMergePolicy.LEVELING:
            self._merge_leveling()
        else:
            self._merge_tiering()

    def _merge_leveling(self) -> None:
        level = 0
        while level < len(self._levels):
            runs = self._levels[level]
            # Leveling invariant: at most one run per level; a freshly
            # flushed/merged extra run triggers an immediate merge.
            too_many = len(runs) > 1
            too_big = runs and runs[0].entry_count > self._capacity(level)
            if not (too_many or too_big):
                level += 1
                continue
            next_runs = (
                self._levels[level + 1] if level + 1 < len(self._levels) else []
            )
            inputs = list(runs) + list(next_runs)
            new_run = self._merge_runs(inputs, level=level + 1)
            for run in inputs:
                self.hierarchy.delete_namespace(run.run_id)
            self._levels[level] = []
            while len(self._levels) <= level + 1:
                self._levels.append([])
            self._levels[level + 1] = [new_run]
            self.merges += 1
            level += 1

    def _merge_tiering(self) -> None:
        level = 0
        while level < len(self._levels):
            runs = self._levels[level]
            if len(runs) < self.size_ratio:
                level += 1
                continue
            new_run = self._merge_runs(list(runs), level=level + 1)
            for run in runs:
                self.hierarchy.delete_namespace(run.run_id)
            self._levels[level] = []
            self._install(new_run, level + 1)
            self.merges += 1
            level += 1

    # -- reads ------------------------------------------------------------------------------

    def _runs_newest_first(self) -> List[IndexRun]:
        runs: List[IndexRun] = []
        for level_runs in self._levels:
            runs.extend(level_runs)
        return runs

    def lookup(
        self, key_bytes: bytes, query_ts: int = MAX_QUERY_TS
    ) -> Optional[IndexEntry]:
        best: Optional[IndexEntry] = None
        upper = prefix_successor(key_bytes)
        with self._lock:
            memtable = list(self._memtable)
            runs = self._runs_newest_first()
        for entry in memtable:
            if (
                entry.key_bytes(self.definition) == key_bytes
                and entry.begin_ts <= query_ts
                and (best is None or entry.begin_ts > best.begin_ts)
            ):
                best = entry
        if best is not None:
            return best
        for run in runs:
            hit = lookup_key_in_run(run, key_bytes, query_ts)
            if hit is not None:
                return hit
        return None

    def scan(
        self,
        lower_key: bytes,
        upper_exclusive: bytes,
        query_ts: int = MAX_QUERY_TS,
    ) -> List[IndexEntry]:
        """Newest visible version per key in byte range, key-ordered."""
        with self._lock:
            memtable = list(self._memtable)
            runs = self._runs_newest_first()
        best: Dict[bytes, IndexEntry] = {}
        for entry in memtable:
            key = entry.key_bytes(self.definition)
            in_range = lower_key <= key and (
                upper_exclusive == b"" or key < upper_exclusive
            )
            if in_range and entry.begin_ts <= query_ts:
                current = best.get(key)
                if current is None or entry.begin_ts > current.begin_ts:
                    best[key] = entry
        for run in runs:
            for entry in search_run(run, lower_key, upper_exclusive, query_ts):
                key = entry.key_bytes(self.definition)
                current = best.get(key)
                if current is None or entry.begin_ts > current.begin_ts:
                    best[key] = entry
        return [best[key] for key in sorted(best)]

    # -- the fixed-RID weakness ---------------------------------------------------------------

    def rebuild_with_rids(
        self,
        remap: Optional[Callable[[IndexEntry], Optional[RID]]] = None,
        remap_raw: Optional[Callable[[bytes, bytes], Optional[RID]]] = None,
    ) -> int:
        """Full rebuild after RIDs change (the only correct response a
        zone-oblivious LSM index has to data evolution).

        Exactly one remap callback must be given:

        * ``remap_raw(sort_key, blob)`` -- the zero-decode path: entries
          stream off the runs as raw ``(sort_key, entry_blob)`` pairs, the
          callback decides the new RID from the raw slices (``beginTS`` is
          the sort key's fixed 8-byte suffix, the old RID the blob's
          fixed 13-byte suffix), and the rewrite is a
          :func:`replace_rid_in_blob` splice -- no :class:`IndexEntry` is
          ever materialized for unchanged or spliced entries.  Because it
          reuses the K-way blob merge, *physical duplicates* -- the same
          ``(key, beginTS)`` version present in several runs -- collapse
          to the newest run's copy (and are not counted as rewritten),
          whereas the decoded path below preserves them verbatim;
        * ``remap(entry)`` -- the legacy decoded-entry API, kept for
          callers that need column values to decide (pays a wholesale
          decode of every entry, the cost the raw API exists to avoid).

        Both return the entry's new RID, or ``None`` to keep the old one,
        and the method returns the number of entries rewritten.  Compare
        the cost of this rebuild with Umzi's incremental evolve in
        ``benchmarks/bench_ablation_baselines.py``.
        """
        if (remap is None) == (remap_raw is None):
            raise ValueError("pass exactly one of remap / remap_raw")
        with self._lock:
            if remap_raw is not None:
                return self._rebuild_raw_locked(remap_raw)
            return self._rebuild_decoded_locked(remap)

    def _rebuild_raw_locked(
        self, remap_raw: Callable[[bytes, bytes], Optional[RID]]
    ) -> int:
        """Zero-decode rebuild: K-way blob merge + RID splices."""
        if self._memtable:
            # Runs are the raw substrate; flush pending entries into one
            # (each is serialized exactly once by the builder) so the
            # whole rebuild streams blobs.  Suppress the merge policy --
            # the rebuild collapses everything into one run anyway.
            self._flush_locked(maybe_merge=False)
        runs = self._runs_newest_first()
        if not runs:
            return 0
        counts = {"rewritten": 0}

        def spliced_pairs():
            for sort_key, blob in merge_entry_blob_streams(
                self.definition, runs
            ):
                new_rid = remap_raw(sort_key, blob)
                if new_rid is not None:
                    new_rid_bytes = new_rid.to_bytes()
                    if new_rid_bytes != blob[len(blob) - RID_BYTES:]:
                        counts["rewritten"] += 1
                        blob = replace_rid_in_blob(blob, new_rid)
                yield sort_key, blob

        new_run = self.builder.build_from_blobs(
            run_id=self._next_run_id(),
            blob_pairs=spliced_pairs(),
            synopsis=Synopsis.union([r.header.synopsis for r in runs]),
            zone=Zone.GROOMED,
            level=0,
            min_groomed_id=0,
            max_groomed_id=0,
        )
        for run in runs:
            self.hierarchy.delete_namespace(run.run_id)
        self._levels = []
        self._install(new_run, 0)
        self._maybe_merge_locked()
        return counts["rewritten"]

    def _rebuild_decoded_locked(
        self, remap: Callable[[IndexEntry], Optional[RID]]
    ) -> int:
        """Legacy rebuild: decode every entry, remap, re-serialize."""
        entries: List[IndexEntry] = list(self._memtable)
        runs = self._runs_newest_first()
        for run in runs:
            entries.extend(run.all_entries())
        rewritten = 0
        remapped: List[IndexEntry] = []
        for entry in entries:
            new_rid = remap(entry)
            if new_rid is not None and new_rid != entry.rid:
                from dataclasses import replace

                entry = replace(entry, rid=new_rid)
                rewritten += 1
            remapped.append(entry)
        for run in runs:
            self.hierarchy.delete_namespace(run.run_id)
        self._levels = []
        self._memtable = []
        if remapped:
            # _build_run sorts internally; install as the single run.
            run = self._build_run(remapped, level=0)
            self._install(run, 0)
            self._maybe_merge_locked()
        return rewritten

    # -- introspection ---------------------------------------------------------------------------

    def run_count(self) -> int:
        with self._lock:
            return sum(len(runs) for runs in self._levels)

    def entry_count(self) -> int:
        with self._lock:
            return len(self._memtable) + sum(
                run.entry_count for runs in self._levels for run in runs
            )


__all__ = ["ClassicLSMIndex", "LSMMergePolicy"]
