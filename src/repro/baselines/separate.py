"""Separate per-zone indexes with a query-side union (the divided view).

MemSQL-style alternative (paper sections 1, 9): each zone gets its own
independent index, and nothing coordinates them.  Queries must search both
structures and combine the results themselves, and during data evolution
there is a window where a record version exists in *both* indexes (if the
post-groomed side is populated before the groomed side is trimmed) or in
*neither* (the opposite order) -- precisely the "duplicate or missing data"
hazard the paper cites as motivation for a unified index.

The evolution window is made explicit and injectable
(:meth:`SeparateZoneIndexes.begin_evolution` /
:meth:`finish_evolution`) so tests and benchmarks can demonstrate both
anomaly modes, and the query-cost overhead of the divided view is
measurable against Umzi on identical workloads.
"""

from __future__ import annotations

import enum
import threading
from typing import Dict, Iterable, List, Optional, Tuple

from repro.baselines.btree import SortedArrayIndex
from repro.core.definition import IndexDefinition
from repro.core.entry import IndexEntry, Zone
from repro.core.query import MAX_QUERY_TS


class EvolutionOrder(str, enum.Enum):
    """Which side of the un-coordinated migration happens first."""

    ADD_THEN_REMOVE = "add_then_remove"  # window shows duplicates
    REMOVE_THEN_ADD = "remove_then_add"  # window loses data


class SeparateZoneIndexes:
    """Two independent single-zone indexes, no unified view."""

    def __init__(
        self,
        definition: IndexDefinition,
        evolution_order: EvolutionOrder = EvolutionOrder.ADD_THEN_REMOVE,
    ) -> None:
        self.definition = definition
        self.evolution_order = evolution_order
        self.groomed = SortedArrayIndex(definition)
        self.post_groomed = SortedArrayIndex(definition)
        self._lock = threading.Lock()
        self._mid_evolution = False

    # -- ingestion ---------------------------------------------------------------------

    def add_groomed(self, entries: Iterable[IndexEntry]) -> None:
        with self._lock:
            self.groomed.insert_many(entries)

    # -- the un-coordinated migration ----------------------------------------------------

    def evolve(
        self,
        groomed_entries: List[IndexEntry],
        post_groomed_entries: List[IndexEntry],
    ) -> None:
        """Atomic-looking migration (both halves under one lock).

        Even this "best case" for the divided view still leaves queries
        paying for two searches; the anomaly modes need the split version
        below.
        """
        self.begin_evolution(groomed_entries, post_groomed_entries)
        self.finish_evolution(groomed_entries, post_groomed_entries)

    def begin_evolution(
        self,
        groomed_entries: List[IndexEntry],
        post_groomed_entries: List[IndexEntry],
    ) -> None:
        """First half of the migration; leaves the divided view mid-window."""
        with self._lock:
            if self.evolution_order is EvolutionOrder.ADD_THEN_REMOVE:
                self.post_groomed.insert_many(post_groomed_entries)
            else:
                self._remove_from_groomed(groomed_entries)
            self._mid_evolution = True

    def finish_evolution(
        self,
        groomed_entries: List[IndexEntry],
        post_groomed_entries: List[IndexEntry],
    ) -> None:
        with self._lock:
            if self.evolution_order is EvolutionOrder.ADD_THEN_REMOVE:
                self._remove_from_groomed(groomed_entries)
            else:
                self.post_groomed.insert_many(post_groomed_entries)
            self._mid_evolution = False

    def _remove_from_groomed(self, entries: List[IndexEntry]) -> None:
        doomed = {
            (entry.key_bytes(self.definition), entry.begin_ts) for entry in entries
        }
        survivors = [
            entry
            for entry in self.groomed._entries  # baseline-internal access
            if (entry.key_bytes(self.definition), entry.begin_ts) not in doomed
        ]
        rebuilt = SortedArrayIndex(self.definition)
        rebuilt.insert_many(survivors)
        self.groomed = rebuilt

    @property
    def mid_evolution(self) -> bool:
        return self._mid_evolution

    # -- divided-view queries --------------------------------------------------------------

    def lookup(
        self, key_bytes: bytes, query_ts: int = MAX_QUERY_TS
    ) -> Optional[IndexEntry]:
        """Query both indexes and reconcile manually (the extra work)."""
        groomed_hit = self.groomed.lookup(key_bytes, query_ts)
        post_hit = self.post_groomed.lookup(key_bytes, query_ts)
        if groomed_hit is None:
            return post_hit
        if post_hit is None:
            return groomed_hit
        return groomed_hit if groomed_hit.begin_ts >= post_hit.begin_ts else post_hit

    def scan(
        self,
        lower_key: bytes,
        upper_exclusive: bytes,
        query_ts: int = MAX_QUERY_TS,
    ) -> List[IndexEntry]:
        """Union of both scans with client-side dedup by key."""
        combined: Dict[bytes, IndexEntry] = {}
        for side in (self.post_groomed, self.groomed):
            for entry in side.scan(lower_key, upper_exclusive, query_ts):
                key = entry.key_bytes(self.definition)
                current = combined.get(key)
                if current is None or entry.begin_ts > current.begin_ts:
                    combined[key] = entry
        return [combined[key] for key in sorted(combined)]

    def scan_naive_union(
        self,
        lower_key: bytes,
        upper_exclusive: bytes,
        query_ts: int = MAX_QUERY_TS,
    ) -> List[IndexEntry]:
        """Union *without* dedup -- what a naive client gets.

        Mid-evolution (ADD_THEN_REMOVE order) this returns duplicate rows;
        mid-evolution with REMOVE_THEN_ADD it silently misses rows.  Tests
        assert both anomalies to motivate Umzi's unified view.
        """
        results = list(self.groomed.scan(lower_key, upper_exclusive, query_ts))
        results.extend(self.post_groomed.scan(lower_key, upper_exclusive, query_ts))
        return results


__all__ = ["EvolutionOrder", "SeparateZoneIndexes"]
