"""An in-memory fully-sorted multi-version index.

Conceptually a B+-tree flattened into a sorted array (bisect-based); used

* as a microbenchmark baseline that pays no LSM overheads (no runs, no
  reconciliation) but also offers no write optimization -- every insert is
  an O(n) array insertion; and
* as the **oracle** for property-based tests: its answers define correct
  multi-version semantics for lookups and range scans.
"""

from __future__ import annotations

import bisect
from typing import Iterable, List, Optional, Tuple

from repro.core.definition import IndexDefinition
from repro.core.encoding import encode_ts_desc, prefix_successor
from repro.core.entry import IndexEntry


class SortedArrayIndex:
    """Sorted-array multi-version index with Umzi-identical semantics."""

    def __init__(self, definition: IndexDefinition) -> None:
        self.definition = definition
        self._keys: List[bytes] = []  # full sort keys (key bytes + ~beginTS)
        self._entries: List[IndexEntry] = []

    def __len__(self) -> int:
        return len(self._entries)

    # -- writes -------------------------------------------------------------------

    def insert(self, entry: IndexEntry) -> None:
        sort_key = entry.sort_key(self.definition)
        position = bisect.bisect_left(self._keys, sort_key)
        if position < len(self._keys) and self._keys[position] == sort_key:
            # Same key and beginTS: replace (exact-duplicate semantics).
            self._entries[position] = entry
            return
        self._keys.insert(position, sort_key)
        self._entries.insert(position, entry)

    def insert_many(self, entries: Iterable[IndexEntry]) -> None:
        for entry in entries:
            self.insert(entry)

    # -- reads ----------------------------------------------------------------------

    def lookup(self, key_bytes: bytes, query_ts: int) -> Optional[IndexEntry]:
        """Newest version of ``key_bytes`` with ``beginTS <= query_ts``."""
        results = self.scan(key_bytes, prefix_successor(key_bytes), query_ts)
        return results[0] if results else None

    def scan(
        self, lower_key: bytes, upper_exclusive: bytes, query_ts: int
    ) -> List[IndexEntry]:
        """Newest visible version of every key in the byte range."""
        start = bisect.bisect_left(self._keys, lower_key)
        definition = self.definition
        results: List[IndexEntry] = []
        previous_key: Optional[bytes] = None
        answered = False
        for position in range(start, len(self._keys)):
            entry = self._entries[position]
            key = entry.key_bytes(definition)
            if upper_exclusive != b"" and key >= upper_exclusive:
                break
            if key != previous_key:
                previous_key = key
                answered = False
            if answered:
                continue
            if entry.begin_ts > query_ts:
                continue
            answered = True
            results.append(entry)
        return results

    def all_versions(self, key_bytes: bytes) -> List[IndexEntry]:
        """Every version of one key, newest first (test introspection)."""
        start = bisect.bisect_left(self._keys, key_bytes)
        upper = prefix_successor(key_bytes)
        out: List[IndexEntry] = []
        for position in range(start, len(self._keys)):
            entry = self._entries[position]
            key = entry.key_bytes(self.definition)
            if upper != b"" and key >= upper:
                break
            out.append(entry)
        return out


__all__ = ["SortedArrayIndex"]
