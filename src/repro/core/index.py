"""The :class:`UmziIndex` facade -- one index instance per table shard.

Ties together the run lists, merge and evolve controllers, cache manager,
metadata journal and query executor, and implements the candidate-run
collection whose ordering makes lock-free queries correct against
concurrent evolve operations.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.builder import DEFAULT_DATA_BLOCK_BYTES, RunBuilder
from repro.core.cache import CacheManager
from repro.core.definition import IndexDefinition
from repro.core.entry import IndexEntry, RID, Zone
from repro.core.epoch import RunLifecycle, RunListVersion
from repro.core.evolve import EvolveController, EvolveResult, Watermark
from repro.core.ids import RunIdAllocator, parse_run_seq
from repro.core.journal import MetadataJournal
from repro.core.levels import LevelConfig
from repro.core.merge import MergeController, MergeResult
from repro.core.query import (
    MAX_QUERY_TS,
    PointLookup,
    QueryExecutor,
    RangeScanQuery,
    ReconcileStrategy,
)
from repro.core.recovery import RecoveredState, recover_index_state
from repro.core.run import IndexRun
from repro.core.runlist import RunList
from repro.core.stats import IndexStats, LevelStats
from repro.core.encoding import KeyValue
from repro.storage.hierarchy import StorageHierarchy
from repro.storage.metrics import ReadIntent


class SnapshotPin:
    """A pinned run-list version plus an executor that queries it.

    Handle form of :meth:`UmziIndex.snapshot_view` for holders whose
    lifetime is not lexical: the pin keeps every run of the version alive
    (cache eviction skips pinned runs, physical frees defer) until
    :meth:`release` -- call it exactly once; extra releases are no-ops.
    """

    def __init__(self, pin, executor: QueryExecutor) -> None:
        self._pin = pin
        self.executor = executor
        self._released = False

    @property
    def runs(self):
        return self._pin.runs

    def release(self) -> None:
        if self._released:
            return
        self._released = True
        self._pin.release()

    def __enter__(self) -> "SnapshotPin":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


@dataclass(frozen=True)
class UmziConfig:
    """Tunables of one index instance."""

    name: str = "umzi"
    levels: LevelConfig = field(default_factory=LevelConfig)
    data_block_bytes: int = DEFAULT_DATA_BLOCK_BYTES
    reconcile: ReconcileStrategy = ReconcileStrategy.PRIORITY_QUEUE
    use_synopsis: bool = True
    use_offset_array: bool = True
    # Ablation hook: False restores the legacy decode-per-probe run search
    # (see benchmarks/bench_ablation_zero_decode.py).
    use_raw_keys: bool = True
    # Extension beyond the paper: per-key (instead of batch-granularity)
    # synopsis pruning for batched lookups.  See QueryExecutor.
    per_key_batch_pruning: bool = False
    # Extension beyond the paper: per-run Bloom filters for point-lookup
    # run pruning (None = off; otherwise the false-positive rate).
    bloom_fpr: Optional[float] = None
    cache_high_watermark: float = 0.85
    cache_low_watermark: float = 0.60
    release_purged_blocks_after_query: bool = True
    # Maintenance-aware cache admission: "intent" (default) means
    # MAINTENANCE-intent reads (evolve streams, merges, recovery
    # validation) never promote blocks into the SSD cache; "legacy" is the
    # promote-everything ablation baseline.  Applied only when the index
    # constructs its own hierarchy -- an externally supplied hierarchy
    # keeps its owner's policy (e.g. ShardConfig.maintenance_read_mode).
    # See storage.metrics.ReadIntent.
    maintenance_read_mode: str = "intent"
    # Run lifecycle under concurrent maintenance: "versionset" (default)
    # refcounts immutable RunListVersions LevelDB/RocksDB-style -- one
    # Ref/Unref per query, O(1) regardless of run count -- and defers
    # physical reclamation of retired runs until no live version contains
    # them; "epoch" is the per-run-refcount ablation (same safety, O(runs)
    # pin cost); "legacy" is the unprotected ablation (retired runs are
    # freed inline, racing in-flight queries).  See repro.core.epoch.
    run_lifecycle: str = "versionset"


class UmziIndex:
    """A multi-version, multi-zone LSM index over one table shard."""

    def __init__(
        self,
        definition: IndexDefinition,
        hierarchy: Optional[StorageHierarchy] = None,
        config: Optional[UmziConfig] = None,
    ) -> None:
        self.definition = definition
        self.config = config if config is not None else UmziConfig()
        if hierarchy is None:
            self.hierarchy = StorageHierarchy(
                maintenance_read_mode=self.config.maintenance_read_mode
            )
        else:
            # An externally supplied hierarchy may serve several indexes
            # (one per shard); cache-admission policy belongs to its owner
            # (e.g. ShardConfig.maintenance_read_mode via WildfireShard),
            # so a per-index config must not stomp it.
            self.hierarchy = hierarchy

        self._run_prefix = f"{self.config.name}-run"
        self.allocator = RunIdAllocator(prefix=self._run_prefix)
        # Version-set run lifecycle: queries pin immutable run-list
        # versions; maintenance retires unlinked runs through it so frees
        # defer until no live version holds them (see repro.core.epoch).
        self.lifecycle = RunLifecycle(
            self.hierarchy.stats.epochs, mode=self.config.run_lifecycle
        )
        self.run_lists: Dict[Zone, RunList] = {
            Zone.GROOMED: RunList(
                f"{self.config.name}-groomed",
                on_publish=self.lifecycle.note_publish,
            ),
            Zone.POST_GROOMED: RunList(
                f"{self.config.name}-post-groomed",
                on_publish=self.lifecycle.note_publish,
            ),
        }
        self.watermark = Watermark()
        # Registered AFTER the run lists exist: every publication rebuilds
        # the lifecycle's current version node through this collector, and
        # pins arriving through it (executor queries, snapshot_view) take
        # the O(1) version-Ref path in versionset mode.
        self.lifecycle.attach_collector(self._collect_version)
        self.journal = MetadataJournal(
            self.hierarchy, namespace=f"{self.config.name}-meta"
        )
        self.builder = RunBuilder(
            definition, self.hierarchy, self.config.data_block_bytes,
            bloom_fpr=self.config.bloom_fpr,
        )
        self.cache = CacheManager(
            self.config.levels,
            self.hierarchy,
            self.run_lists,
            high_watermark=self.config.cache_high_watermark,
            low_watermark=self.config.cache_low_watermark,
            pin_checker=self.lifecycle.is_pinned,
        )
        self._retention_ts: Optional[int] = None
        # One structure mutex serializes evolve vs merge on this index's
        # run lists (maintenance-only; queries stay lock-free).
        self._maintenance_mutex = threading.Lock()
        self.merger = MergeController(
            self.config.levels,
            self.builder,
            self.hierarchy,
            self.allocator,
            self.run_lists,
            write_through=self.cache.write_through,
            ancestor_protector=self._is_live_ancestor,
            retention_provider=lambda: self._retention_ts,
            reclaimer=self.lifecycle.retire,
            structure_lock=self._maintenance_mutex,
        )
        self.evolver = EvolveController(
            self.config.levels,
            self.builder,
            self.hierarchy,
            self.allocator,
            self.run_lists,
            self.watermark,
            journal=self.journal,
            write_through=self.cache.write_through,
            ancestor_protector=self._is_live_ancestor,
            reclaimer=self.lifecycle.retire,
            structure_lock=self._maintenance_mutex,
        )
        self.executor = QueryExecutor(
            definition,
            collect_runs=self._collect_version,
            use_synopsis=self.config.use_synopsis,
            use_offset_array=self.config.use_offset_array,
            use_raw_keys=self.config.use_raw_keys,
            per_key_batch_pruning=self.config.per_key_batch_pruning,
            on_query_done=(
                self.cache.release_after_query
                if self.config.release_purged_blocks_after_query
                else None
            ),
            lifecycle=self.lifecycle,
        )
        self._build_lock = threading.Lock()

    # ------------------------------------------------------------------------------
    # entry construction
    # ------------------------------------------------------------------------------

    def make_entry(
        self,
        equality_values: Sequence[KeyValue],
        sort_values: Sequence[KeyValue],
        include_values: Sequence[KeyValue],
        begin_ts: int,
        rid: RID,
    ) -> IndexEntry:
        """Validate values against the definition and build one entry."""
        return IndexEntry.create(
            self.definition,
            tuple(equality_values),
            tuple(sort_values),
            tuple(include_values),
            begin_ts,
            rid,
        )

    # ------------------------------------------------------------------------------
    # maintenance operations (paper section 5)
    # ------------------------------------------------------------------------------

    def add_groomed_run(
        self,
        entries: Iterable[IndexEntry],
        min_groomed_id: int,
        max_groomed_id: int,
    ) -> IndexRun:
        """Index build after a groom operation (section 5.2).

        Builds a level-0 run (always persisted) over the newly groomed data
        and publishes it at the head of the groomed run list.
        """
        with self._build_lock:
            run = self.builder.build(
                run_id=self.allocator.allocate(Zone.GROOMED),
                entries=entries,
                zone=Zone.GROOMED,
                level=0,
                min_groomed_id=min_groomed_id,
                max_groomed_id=max_groomed_id,
                persisted=True,
                write_through_ssd=self.cache.write_through(0),
            )
            self.run_lists[Zone.GROOMED].push_front(run)
            return run

    def evolve(
        self,
        psn: int,
        entries: Iterable[IndexEntry],
        min_groomed_id: int,
        max_groomed_id: int,
    ) -> EvolveResult:
        """Index evolve after a post-groom operation (section 5.4)."""
        return self.evolver.evolve(psn, entries, min_groomed_id, max_groomed_id)

    def evolve_streaming(
        self,
        psn: int,
        new_rid_of,
        min_groomed_id: int,
        max_groomed_id: int,
    ) -> EvolveResult:
        """Zero-decode evolve: stream covered groomed-run blobs, splicing
        each entry's new post-groomed RID via ``new_rid_of(begin_ts)``
        (see :meth:`EvolveController.evolve_streaming`)."""
        return self.evolver.evolve_streaming(
            psn, new_rid_of, min_groomed_id, max_groomed_id
        )

    @property
    def indexed_psn(self) -> int:
        return self.evolver.indexed_psn

    def set_retention_ts(self, retention_ts: Optional[int]) -> None:
        """Set the MVCC retention horizon for future merges.

        Merges drop versions unreachable by any snapshot >= ``retention_ts``
        (each key keeps its newest version at or below the horizon plus all
        newer ones).  ``None`` keeps every version forever.  Time travel
        below the horizon becomes undefined -- callers own that contract.
        """
        if retention_ts is not None and self._retention_ts is not None:
            if retention_ts < self._retention_ts:
                raise ValueError(
                    "retention horizon may only move forward "
                    f"({self._retention_ts} -> {retention_ts})"
                )
        self._retention_ts = retention_ts

    @property
    def retention_ts(self) -> Optional[int]:
        return self._retention_ts

    def needs_merge(self) -> bool:
        return any(
            self.merger.needs_merge(zone)
            for zone in (Zone.GROOMED, Zone.POST_GROOMED)
        )

    def merge_step(self) -> Optional[MergeResult]:
        """Perform at most one pending merge (deterministic mode)."""
        for zone in (Zone.GROOMED, Zone.POST_GROOMED):
            result = self.merger.merge_step(zone)
            if result is not None:
                return result
        return None

    def run_maintenance(self, max_steps: int = 64) -> List[MergeResult]:
        """Merge until stable in both zones, then a cache pass."""
        results: List[MergeResult] = []
        for zone in (Zone.GROOMED, Zone.POST_GROOMED):
            results.extend(self.merger.merge_until_stable(zone, max_steps))
        self.cache.maintain()
        return results

    # ------------------------------------------------------------------------------
    # queries (paper section 7)
    # ------------------------------------------------------------------------------

    def range_scan(
        self,
        query: RangeScanQuery,
        strategy: Optional[ReconcileStrategy] = None,
    ) -> List[IndexEntry]:
        return self.executor.range_scan(
            query, strategy if strategy is not None else self.config.reconcile
        )

    def range_scan_iter(self, query: RangeScanQuery):
        """Streaming range scan (priority-queue path); see QueryExecutor."""
        return self.executor.range_scan_iter(query)

    def point_lookup(self, lookup: PointLookup) -> Optional[IndexEntry]:
        return self.executor.point_lookup(lookup)

    def batch_lookup(
        self, lookups: Sequence[PointLookup]
    ) -> List[Optional[IndexEntry]]:
        return self.executor.batch_lookup(lookups)

    # -- convenience wrappers ---------------------------------------------------------

    def lookup(
        self,
        equality_values: Sequence[KeyValue] = (),
        sort_values: Sequence[KeyValue] = (),
        query_ts: int = MAX_QUERY_TS,
    ) -> Optional[IndexEntry]:
        return self.point_lookup(
            PointLookup(tuple(equality_values), tuple(sort_values), query_ts)
        )

    def scan(
        self,
        equality_values: Sequence[KeyValue] = (),
        sort_lower: Optional[Sequence[KeyValue]] = None,
        sort_upper: Optional[Sequence[KeyValue]] = None,
        query_ts: int = MAX_QUERY_TS,
    ) -> List[IndexEntry]:
        return self.range_scan(
            RangeScanQuery(
                tuple(equality_values),
                tuple(sort_lower) if sort_lower is not None else None,
                tuple(sort_upper) if sort_upper is not None else None,
                query_ts,
            )
        )

    # ------------------------------------------------------------------------------
    # candidate-run collection
    # ------------------------------------------------------------------------------

    def _collect_version(self) -> RunListVersion:
        """Snapshot the index for one query as an immutable version.

        Publication-order argument for correctness against a concurrent
        evolve (whose sub-steps are: 1. add post-groomed run, 2. advance
        watermark, 3. remove groomed runs):

        * the groomed list is snapshotted **first**: any groomed run removed
          before this point had its post-groomed coverage published at
          sub-step 1 of the same (earlier) evolve, which therefore precedes
          our later post-groomed snapshot;
        * the watermark is read **before** the post-groomed snapshot: a
          watermark value W was published at sub-step 2, after the run
          covering up to W was added at sub-step 1, so the post-groomed
          snapshot (taken after the watermark read) must contain that
          coverage;
        * groomed runs at or below the watermark are dropped ("automatically
          ignored by queries", section 5.4); remaining overlap between the
          zones yields physical duplicates, which reconciliation removes.

        Each per-list snapshot is one atomic tuple read (see
        :meth:`RunList.snapshot`); the composed version is immutable, and
        when collected through :meth:`RunLifecycle.pin` the whole
        collect-and-register step is atomic against run retirement.
        """
        groomed = self.run_lists[Zone.GROOMED].snapshot()
        watermark_value = self.watermark.value
        post_groomed = self.run_lists[Zone.POST_GROOMED].snapshot()
        visible_groomed = tuple(
            run for run in groomed if run.max_groomed_id > watermark_value
        )
        return RunListVersion(
            version_id=self.lifecycle.version_seq,
            groomed=visible_groomed,
            post_groomed=tuple(post_groomed),
            watermark=watermark_value,
        )

    def _collect_candidate_runs(self) -> List[IndexRun]:
        """Candidate runs, newest first (list view of the current version)."""
        return self._collect_version().candidates()

    def visible_runs(self) -> List[IndexRun]:
        """Public view of the current version's candidate runs (ISSUE 9).

        The access-path planner's statistics layer folds these runs'
        headers into an :class:`~repro.planner.stats.AccessPathSynopsis`
        without decoding an entry; freshness is keyed on
        ``lifecycle.version_seq``, which every publication increments.
        """
        return self._collect_candidate_runs()

    def pin_snapshot(self) -> "SnapshotPin":
        """Pin the current :class:`RunListVersion` for repeatable reads.

        Returns a :class:`SnapshotPin` -- a long-lived handle whose
        executor answers every query from the pinned version, no matter
        how many evolves or merges commit in the meantime; the pin keeps
        the version's runs alive until :meth:`SnapshotPin.release`.
        Callers that want scope semantics should prefer
        :meth:`snapshot_view`; the explicit handle exists for holders
        whose lifetime is not lexical (e.g. the cluster's degraded-read
        mode keeps a pin open for as long as a storage brownout lasts).
        """
        pin = self.lifecycle.pin(self._collect_version)
        executor = QueryExecutor(
            self.definition,
            collect_runs=lambda: list(pin.runs),
            use_synopsis=self.config.use_synopsis,
            use_offset_array=self.config.use_offset_array,
            use_raw_keys=self.config.use_raw_keys,
            per_key_batch_pruning=self.config.per_key_batch_pruning,
        )
        return SnapshotPin(pin, executor)

    @contextmanager
    def snapshot_view(self) -> Iterator[QueryExecutor]:
        """Scope-bound :meth:`pin_snapshot` (the common case).

        Yields a :class:`QueryExecutor` whose every query answers from the
        pinned version.  (Individual queries outside this scope already pin
        per-query; this is for callers that need *several* queries over one
        consistent snapshot.)
        """
        snapshot = self.pin_snapshot()
        try:
            yield snapshot.executor
        finally:
            snapshot.release()

    def post_groomed_lookup(
        self,
        equality_values: Sequence[KeyValue],
        sort_values: Sequence[KeyValue],
        query_ts: int = MAX_QUERY_TS,
    ) -> Optional[IndexEntry]:
        """Point lookup restricted to the post-groomed portion of the index.

        Used by the post-groomer (paper section 2.1: the post-groom
        operation "utilizes the post-groomed portion of the indexes to
        collect the RIDs of the already post-groomed records that will be
        replaced").  Although it reuses the ordinary query machinery, the
        caller is background maintenance, so the whole lookup runs under a
        ``ReadIntent.MAINTENANCE`` scope: blocks it pulls from purged
        post-groomed levels are not admitted into the SSD cache.
        """
        executor = QueryExecutor(
            self.definition,
            collect_runs=self.run_lists[Zone.POST_GROOMED].snapshot,
            use_synopsis=self.config.use_synopsis,
            use_offset_array=self.config.use_offset_array,
            use_raw_keys=self.config.use_raw_keys,
            # The post-groomer's lookup races concurrent merges of the
            # post-groomed zone like any query does; pin its snapshot too.
            lifecycle=self.lifecycle,
        )
        with self.hierarchy.reading_as(ReadIntent.MAINTENANCE):
            return executor.point_lookup(
                PointLookup(tuple(equality_values), tuple(sort_values), query_ts)
            )

    def all_runs(self) -> List[IndexRun]:
        """Every run in both lists (no watermark filtering); newest first."""
        return (
            self.run_lists[Zone.GROOMED].snapshot()
            + self.run_lists[Zone.POST_GROOMED].snapshot()
        )

    # ------------------------------------------------------------------------------
    # recovery (paper section 5.5)
    # ------------------------------------------------------------------------------

    def recover(self) -> RecoveredState:
        """Rebuild run lists and metadata from shared storage.

        Call after :meth:`StorageHierarchy.crash_local_tiers` (or on a fresh
        process pointed at existing shared storage).
        """
        # Resume run-id allocation above every sequence number present in
        # shared storage: a fresh process starts its allocator at 0, and
        # the first post-recovery build would otherwise collide with a
        # surviving namespace (shared storage is append-only).  Scanned
        # before recover_index_state so ids dropped *by* recovery
        # (incomplete/corrupt/superseded) are never handed out again
        # either -- their delete may race a later write.
        max_seq = max(
            (
                parse_run_seq(self._run_prefix, namespace)
                for namespace in self.hierarchy.shared.namespaces()
            ),
            default=-1,
        )
        self.allocator.ensure_at_least(max_seq + 1)
        state = recover_index_state(
            self.definition, self.hierarchy, self._run_prefix, self.journal
        )
        for zone in (Zone.GROOMED, Zone.POST_GROOMED):
            runs = state.runs_by_zone[zone]
            # Newest first == descending end groomed id.
            runs.sort(key=lambda run: run.max_groomed_id, reverse=True)
            self.run_lists[zone].rebuild(runs)
        if state.checkpoint is not None:
            self.evolver.restore(state.checkpoint)
        self.merger.reset_active_tracking()
        return state

    # ------------------------------------------------------------------------------
    # internals / introspection
    # ------------------------------------------------------------------------------

    def _is_live_ancestor(self, run_id: str) -> bool:
        """Is ``run_id`` still named as an ancestor by any live run?"""
        for zone in (Zone.GROOMED, Zone.POST_GROOMED):
            for run in self.run_lists[zone].iter_runs():
                if run_id in run.header.ancestor_run_ids:
                    return True
        return False

    def stats(self) -> IndexStats:
        levels: List[LevelStats] = []
        total_entries = 0
        for level in range(self.config.levels.total_levels):
            zone = self.config.levels.zone_of(level)
            runs = [
                run
                for run in self.run_lists[zone].iter_runs()
                if run.level == level
            ]
            entry_count = sum(run.entry_count for run in runs)
            total_entries += entry_count
            levels.append(
                LevelStats(
                    level=level,
                    zone=zone,
                    run_count=len(runs),
                    entry_count=entry_count,
                    size_bytes=sum(run.size_bytes for run in runs),
                    persisted=self.config.levels.is_persisted(level),
                )
            )
        return IndexStats(
            definition=self.definition.describe(),
            levels=tuple(levels),
            groomed_run_count=len(self.run_lists[Zone.GROOMED]),
            post_groomed_run_count=len(self.run_lists[Zone.POST_GROOMED]),
            total_entries=total_entries,
            max_covered_groomed_id=self.watermark.value,
            indexed_psn=self.indexed_psn,
            current_cached_level=self.cache.current_cached_level,
            cached_run_fraction=self.cache.cached_fraction(),
        )


__all__ = ["SnapshotPin", "UmziConfig", "UmziIndex"]
