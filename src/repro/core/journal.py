"""Durable index metadata (paper section 5.5).

"After each index evolve operation, the maximum groomed blocked ID for the
post-groomed run list and IndexedPSN are also persisted."

Shared storage is append-only, so the journal writes a new checkpoint block
per evolve (monotonic ordinal within one namespace) and recovery reads the
newest one.  Old checkpoints are trimmed opportunistically to keep the
object small.

Every checkpoint block carries a CRC32 of its own payload: a torn write
(crash mid-append, bit rot) fails verification and ``latest`` falls back to
the newest *valid* checkpoint instead of recovering from garbage.
Pre-checksum blocks (4 bytes shorter) remain readable.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.run import block_checksum
from repro.faults.crash import crash_point
from repro.storage.block import Block, BlockId
from repro.storage.hierarchy import StorageHierarchy

_MAGIC = b"UMZM"
_FORMAT = ">QqQ"  # indexed_psn, watermark, checkpoint ordinal echo
_BODY_LEN = 4 + struct.calcsize(_FORMAT)
_CRC_LEN = 4


@dataclass(frozen=True)
class Checkpoint:
    """One persisted metadata point."""

    indexed_psn: int
    max_covered_groomed_id: int


class MetadataJournal:
    """Append-only checkpoint log in shared storage."""

    def __init__(self, hierarchy: StorageHierarchy, namespace: str) -> None:
        self.hierarchy = hierarchy
        self.namespace = namespace
        self._next_ordinal = self._discover_next_ordinal()
        # Validity cache: ordinals this process appended are valid by
        # construction; pre-existing ordinals (recovery) are validated
        # lazily on first trim and the verdict remembered, so the
        # steady-state trim path never re-reads checkpoint blocks.
        self._validity: Dict[int, bool] = {}

    def _discover_next_ordinal(self) -> int:
        ids = self.hierarchy.shared.namespace_block_ids(self.namespace)
        return (max(bid.ordinal for bid in ids) + 1) if ids else 0

    def append(self, checkpoint: Checkpoint) -> None:
        crash_point("journal.pre_append")
        body = _MAGIC + struct.pack(
            _FORMAT,
            checkpoint.indexed_psn,
            checkpoint.max_covered_groomed_id,
            self._next_ordinal,
        )
        payload = body + struct.pack(">I", block_checksum(body))
        block = Block(BlockId(self.namespace, self._next_ordinal), payload)
        # Durable path (with transient-error retry); never SSD-cached --
        # the journal is only ever read during recovery.
        self.hierarchy.write_persisted(block, write_through_ssd=False)
        self._validity[self._next_ordinal] = True
        self._next_ordinal += 1
        self._trim()

    def latest(self) -> Optional[Checkpoint]:
        """The newest checkpoint that verifies; torn tails are skipped."""
        ids = self.hierarchy.shared.namespace_block_ids(self.namespace)
        for bid in reversed(ids):
            block = self.hierarchy.read_shared(bid)
            if block is None:
                continue
            checkpoint = self._try_decode(block.payload)
            if checkpoint is not None:
                return checkpoint
        return None

    def valid_checkpoints(self) -> List[Checkpoint]:
        """All checkpoints that verify, newest first.

        Recovery uses the full list (not just :meth:`latest`) when the
        newest checkpoint promises coverage that shared storage cannot
        actually support -- e.g. the post-groomed run a checkpoint
        described was torn mid-write -- and must fall back to the newest
        checkpoint consistent with the surviving runs.
        """
        ids = self.hierarchy.shared.namespace_block_ids(self.namespace)
        checkpoints: List[Checkpoint] = []
        for bid in reversed(ids):
            block = self.hierarchy.read_shared(bid)
            if block is None:
                continue
            checkpoint = self._try_decode(block.payload)
            if checkpoint is not None:
                checkpoints.append(checkpoint)
        return checkpoints

    def _try_decode(self, payload: bytes) -> Optional[Checkpoint]:
        if payload[:4] != _MAGIC:
            return None
        if len(payload) == _BODY_LEN + _CRC_LEN:
            (stored,) = struct.unpack_from(">I", payload, _BODY_LEN)
            self.hierarchy.stats.decode.checksum_validations += 1
            if block_checksum(payload[:_BODY_LEN]) != stored:
                return None
        elif len(payload) != _BODY_LEN:
            return None  # truncated or padded: a torn pre-checksum write
        indexed_psn, watermark, _ordinal = struct.unpack_from(_FORMAT, payload, 4)
        return Checkpoint(indexed_psn=indexed_psn, max_covered_groomed_id=watermark)

    @staticmethod
    def _decode(payload: bytes) -> Checkpoint:
        """Strict decode (tests); raises instead of returning ``None``."""
        if payload[:4] != _MAGIC:
            raise ValueError("not an Umzi metadata checkpoint block")
        indexed_psn, watermark, _ordinal = struct.unpack_from(_FORMAT, payload, 4)
        return Checkpoint(indexed_psn=indexed_psn, max_covered_groomed_id=watermark)

    def _is_valid(self, bid: BlockId) -> bool:
        cached = self._validity.get(bid.ordinal)
        if cached is not None:
            return cached
        block = self.hierarchy.read_shared(bid)
        verdict = block is not None and self._try_decode(block.payload) is not None
        self._validity[bid.ordinal] = verdict
        return verdict

    def _trim(self, keep: int = 4) -> None:
        """Drop the oldest checkpoints, keeping the newest ``keep`` *valid*
        ones (and anything newer than them).

        Counting raw ordinals instead of validity lost the newest valid
        checkpoint whenever the tail held ``keep`` torn blocks -- recovery
        would then find no checkpoint at all (the ISSUE 6 regression).
        Torn blocks older than the cutoff are still deleted; if fewer
        than ``keep`` checkpoints verify, nothing is deleted.
        """
        ids = self.hierarchy.shared.namespace_block_ids(self.namespace)
        if len(ids) <= keep:
            return
        cutoff: Optional[int] = None
        valid_seen = 0
        for bid in reversed(ids):
            if self._is_valid(bid):
                valid_seen += 1
                if valid_seen == keep:
                    cutoff = bid.ordinal
                    break
        if cutoff is None:
            return  # fewer than ``keep`` valid checkpoints survive: keep all
        for bid in ids:
            if bid.ordinal < cutoff:
                self.hierarchy.shared.delete(bid)
                self._validity.pop(bid.ordinal, None)


__all__ = ["Checkpoint", "MetadataJournal"]
