"""Index statistics for monitoring, tests, and benchmark reporting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.entry import Zone


@dataclass(frozen=True)
class LevelStats:
    """Run census of one level."""

    level: int
    zone: Zone
    run_count: int
    entry_count: int
    size_bytes: int
    persisted: bool


@dataclass(frozen=True)
class IndexStats:
    """Point-in-time snapshot of one Umzi index instance."""

    definition: str
    levels: Tuple[LevelStats, ...]
    groomed_run_count: int
    post_groomed_run_count: int
    total_entries: int
    max_covered_groomed_id: int
    indexed_psn: int
    current_cached_level: int
    cached_run_fraction: float

    @property
    def total_runs(self) -> int:
        return self.groomed_run_count + self.post_groomed_run_count

    def format_table(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"{self.definition}",
            f"runs: groomed={self.groomed_run_count} "
            f"post-groomed={self.post_groomed_run_count} "
            f"entries={self.total_entries}",
            f"watermark={self.max_covered_groomed_id} "
            f"indexed_psn={self.indexed_psn} "
            f"cached_level={self.current_cached_level} "
            f"cached_fraction={self.cached_run_fraction:.2f}",
            f"{'level':>6} {'zone':>14} {'runs':>6} {'entries':>10} {'bytes':>12}",
        ]
        for level in self.levels:
            lines.append(
                f"{level.level:>6} {level.zone.name:>14} {level.run_count:>6} "
                f"{level.entry_count:>10} {level.size_bytes:>12}"
            )
        return "\n".join(lines)


__all__ = ["IndexStats", "LevelStats"]
