"""Run-id allocation.

Run ids double as storage namespaces, so they must be unique for the life
of the shared-storage instance (append-only: a reused id would collide).
The allocator is monotonic and thread-safe; ids embed the zone letter and a
sequence number for debuggability (``run-g-000042``).

A freshly-constructed allocator starts at 0, which is only safe for a
fresh shared-storage instance: a *recovered* process must resume above
every sequence number already present in shared storage or its first
build would collide with a surviving namespace.  Recovery calls
:meth:`RunIdAllocator.ensure_at_least` with ``max(seen) + 1`` after the
namespace scan (:func:`parse_run_seq` extracts the sequence numbers).
"""

from __future__ import annotations

import re
import threading

from repro.core.entry import Zone

_ZONE_LETTER = {Zone.GROOMED: "g", Zone.POST_GROOMED: "p"}
_RUN_ID_RE = re.compile(r"-[gp]-(\d{6,})$")


def parse_run_seq(prefix: str, namespace: str) -> int:
    """Sequence number of a run namespace, or ``-1`` if not one of ours."""
    if not namespace.startswith(prefix):
        return -1
    match = _RUN_ID_RE.search(namespace[len(prefix):])
    return int(match.group(1)) if match is not None else -1


class RunIdAllocator:
    """Monotonic, thread-safe run-id source for one index instance."""

    def __init__(self, prefix: str = "run") -> None:
        self._prefix = prefix
        self._next = 0
        self._lock = threading.Lock()

    @property
    def prefix(self) -> str:
        return self._prefix

    def allocate(self, zone: Zone) -> str:
        with self._lock:
            seq = self._next
            self._next += 1
        return f"{self._prefix}-{_ZONE_LETTER[zone]}-{seq:06d}"

    def ensure_at_least(self, next_seq: int) -> None:
        """Raise the floor of the next sequence number (recovery resume)."""
        with self._lock:
            if next_seq > self._next:
                self._next = next_seq


__all__ = ["RunIdAllocator", "parse_run_seq"]
