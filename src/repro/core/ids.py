"""Run-id allocation.

Run ids double as storage namespaces, so they must be unique for the life
of the shared-storage instance (append-only: a reused id would collide).
The allocator is monotonic and thread-safe; ids embed the zone letter and a
sequence number for debuggability (``run-g-000042``).
"""

from __future__ import annotations

import itertools
import threading

from repro.core.entry import Zone

_ZONE_LETTER = {Zone.GROOMED: "g", Zone.POST_GROOMED: "p"}


class RunIdAllocator:
    """Monotonic, thread-safe run-id source for one index instance."""

    def __init__(self, prefix: str = "run") -> None:
        self._prefix = prefix
        self._counter = itertools.count()
        self._lock = threading.Lock()

    def allocate(self, zone: Zone) -> str:
        with self._lock:
            seq = next(self._counter)
        return f"{self._prefix}-{_ZONE_LETTER[zone]}-{seq:06d}"


__all__ = ["RunIdAllocator"]
