"""Index query processing (paper section 7).

Two query types are supported: the **range scan** (all equality columns
bound, range bounds over the sort columns) and the **point lookup** (the
entire key bound).  Every query carries a ``query_ts`` snapshot timestamp:
only versions with ``beginTS <= query_ts`` are visible and only the newest
visible version per key is returned.

Query flow:

1. collect candidate runs by traversing the (lock-free) run lists, pruning
   by the evolve watermark and per-run synopses;
2. search each candidate run (offset array + binary search + bounded
   iteration, :mod:`repro.core.search`);
3. reconcile across runs with either the **set approach** or the
   **priority-queue approach** (section 7.1.2).

Batched point lookups sort the input keys and visit each run at most once,
sequentially (section 7.2).
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.definition import IndexDefinition
from repro.core.epoch import QueryPin, RunLifecycle
from repro.core.encoding import (
    KeyValue,
    UINT64_MAX,
    encode_composite,
    encode_uint64,
    prefix_successor,
)
from repro.core.entry import (
    IndexEntry,
    Zone,
    begin_ts_of_sort_key,
    user_key_of_sort_key,
)
from repro.core.run import IndexRun
from repro.core.search import (
    UNBOUNDED,
    batch_lookup_in_run,
    search_run,
    search_run_raw,
)

MAX_QUERY_TS = UINT64_MAX


class QueryError(ValueError):
    """Malformed query for the given index definition."""


class ReconcileStrategy(enum.Enum):
    """How results from multiple runs are combined (section 7.1.2)."""

    SET = "set"
    PRIORITY_QUEUE = "priority_queue"


@dataclass(frozen=True)
class RangeScanQuery:
    """Values for all equality columns plus bounds on the sort columns.

    ``sort_lower`` / ``sort_upper`` are inclusive bounds over a *prefix* of
    the sort columns (``None`` = unbounded on that side).
    """

    equality_values: Tuple[KeyValue, ...] = ()
    sort_lower: Optional[Tuple[KeyValue, ...]] = None
    sort_upper: Optional[Tuple[KeyValue, ...]] = None
    query_ts: int = MAX_QUERY_TS


@dataclass(frozen=True)
class PointLookup:
    """The entire index key (the primary key for a primary index)."""

    equality_values: Tuple[KeyValue, ...] = ()
    sort_values: Tuple[KeyValue, ...] = ()
    query_ts: int = MAX_QUERY_TS


@dataclass(frozen=True)
class _Bounds:
    """Encoded search interval plus the hash for offset-array narrowing."""

    lower_key: bytes
    upper_exclusive: bytes
    hash_value: Optional[int]


def compute_scan_bounds(
    definition: IndexDefinition, query: RangeScanQuery
) -> _Bounds:
    """Concatenated lower/upper bounds of section 7.1.1."""
    if len(query.equality_values) != len(definition.equality_columns):
        raise QueryError(
            f"range scan must bind all {len(definition.equality_columns)} "
            f"equality columns; got {len(query.equality_values)}"
        )
    for bound in (query.sort_lower, query.sort_upper):
        if bound is not None and len(bound) > len(definition.sort_columns):
            raise QueryError(
                f"sort bound {bound} longer than the "
                f"{len(definition.sort_columns)} sort columns"
            )
    hash_value: Optional[int] = None
    prefix = b""
    if definition.has_hash_column:
        hash_value = definition.hash_of(query.equality_values)
        prefix = encode_uint64(hash_value)
    prefix += encode_composite(query.equality_values)

    lower = prefix
    if query.sort_lower:
        lower += encode_composite(query.sort_lower)

    if query.sort_upper:
        upper = prefix_successor(prefix + encode_composite(query.sort_upper))
    elif prefix:
        upper = prefix_successor(prefix)
    else:
        upper = UNBOUNDED
    return _Bounds(lower_key=lower, upper_exclusive=upper, hash_value=hash_value)


def compute_point_bounds(
    definition: IndexDefinition, lookup: PointLookup
) -> _Bounds:
    if len(lookup.sort_values) != len(definition.sort_columns):
        raise QueryError(
            f"point lookup must bind all {len(definition.sort_columns)} "
            f"sort columns; got {len(lookup.sort_values)}"
        )
    scan = RangeScanQuery(
        equality_values=lookup.equality_values,
        sort_lower=lookup.sort_values or None,
        sort_upper=lookup.sort_values or None,
        query_ts=lookup.query_ts,
    )
    return compute_scan_bounds(definition, scan)


# ---------------------------------------------------------------------------
# run pruning
# ---------------------------------------------------------------------------


def run_may_contain(
    run: IndexRun,
    query: RangeScanQuery,
    use_synopsis: bool = True,
) -> bool:
    """Synopsis check of section 7: a run is a candidate only if every bound
    column value overlaps the run's recorded range."""
    if run.entry_count == 0:
        return False
    if run.header.min_begin_ts > query.query_ts:
        return False  # every version in the run is newer than the snapshot
    if not use_synopsis:
        return True
    synopsis = run.header.synopsis
    n_eq = len(run.definition.equality_columns)
    for position, value in enumerate(query.equality_values):
        crange = synopsis.column_range(position)
        if crange is not None and not crange.overlaps_point(value):
            return False
    if run.definition.sort_columns:
        low = query.sort_lower[0] if query.sort_lower else None
        high = query.sort_upper[0] if query.sort_upper else None
        crange = synopsis.column_range(n_eq)
        if crange is not None and not crange.overlaps_range(low, high):
            return False
    return True


# ---------------------------------------------------------------------------
# the executor
# ---------------------------------------------------------------------------


class QueryExecutor:
    """Executes queries over a snapshot provider of candidate runs.

    ``collect_runs`` must return the candidate runs *newest first*, already
    filtered by the evolve watermark (see
    :meth:`repro.core.index.UmziIndex._collect_candidate_runs` for the
    publication-order argument).

    **Read intent.**  Block fetches issued by the executor carry
    ``ReadIntent.QUERY`` by default: a shared-storage miss promotes the
    block into the SSD cache so subsequent queries over the same (purged)
    run hit locally, and ``on_query_done`` releases those transient blocks
    afterwards when the cache manager asks for it.  When an executor is
    driven by background machinery instead (the post-groomer's
    ``post_groomed_lookup``), the caller wraps the call in
    ``hierarchy.reading_as(ReadIntent.MAINTENANCE)`` -- the same code path
    then neither promotes nor perturbs the query-path hit/miss counters.

    **Run pinning.**  When a ``lifecycle`` (:class:`RunLifecycle`) is
    supplied, every query pins its run snapshot before collecting and
    releases it in a ``finally`` once the last result is out: the
    snapshot is *pinned*, so concurrent evolve/merge retirement defers
    the physical frees of any run the query still holds.  In versionset
    mode (the default) a pin whose collector is the index's registered
    version collector is a single Ref on the current
    :class:`RunListVersion` node and the release a single Unref --
    exactly two refcount operations per query, independent of run count
    (``EpochStats.version_refs``/``version_unrefs``); epoch mode walks
    the snapshot on a per-run ledger instead (O(runs),
    ``EpochStats.run_ref_ops``).  The pin is released *before*
    ``on_query_done`` fires, so the cache manager's release pass sees only
    pins held by *other* in-flight queries.  Without a lifecycle the
    executor behaves exactly as before (the legacy unprotected mode).
    """

    def __init__(
        self,
        definition: IndexDefinition,
        collect_runs: Callable[[], List[IndexRun]],
        use_synopsis: bool = True,
        use_offset_array: bool = True,
        use_raw_keys: bool = True,
        per_key_batch_pruning: bool = False,
        on_query_done: Optional[Callable[[List[IndexRun]], None]] = None,
        lifecycle: Optional[RunLifecycle] = None,
    ) -> None:
        self.definition = definition
        self.collect_runs = collect_runs
        self._lifecycle = lifecycle
        self.use_synopsis = use_synopsis
        self.use_offset_array = use_offset_array
        # Ablation hook: False restores the legacy decode-per-probe run
        # search (see benchmarks/bench_ablation_zero_decode.py).
        self.use_raw_keys = use_raw_keys
        # Paper-faithful batched lookups prune runs against the *batch's*
        # value bounding box (that granularity is what makes random batches
        # degrade linearly with run count in Figure 10b).  Per-key pruning
        # is an extension beyond the paper -- it checks every key against
        # every run synopsis individually, flattening that curve -- kept
        # opt-in and quantified in benchmarks/bench_ablation_batch_pruning.py.
        self.per_key_batch_pruning = per_key_batch_pruning
        # Hook for the cache manager: release transient blocks of purged runs.
        self._on_query_done = on_query_done

    # -- query scope (epoch pin + release hooks) -----------------------------------

    def _enter_query(self) -> Tuple[Optional[QueryPin], List[IndexRun]]:
        """Collect the run snapshot, pinning it when a lifecycle is wired."""
        if self._lifecycle is None:
            return None, self.collect_runs()
        pin = self._lifecycle.pin(self.collect_runs)
        return pin, list(pin.runs)

    def _exit_query(
        self, pin: Optional[QueryPin], touched: List[IndexRun]
    ) -> None:
        """Epoch exit, then block release -- in that order (see class doc).

        The block-release hook rides through the lifecycle as the pin's
        ``after`` action: it runs once the pin no longer counts, and when
        the exit happens inside a GC finalizer (abandoned iterator in a
        reference cycle) both the unpin and the hook are parked and run by
        the next lifecycle operation -- a finalizer must not take
        storage-tier locks.
        """
        after: Optional[Callable[[], None]] = None
        if self._on_query_done is not None:
            hook = self._on_query_done
            after = lambda: hook(touched)  # noqa: E731 - tiny closure
        if pin is not None:
            self._lifecycle.release(pin, after=after)
        elif after is not None:
            after()

    # -- range scan ----------------------------------------------------------------

    def range_scan(
        self,
        query: RangeScanQuery,
        strategy: ReconcileStrategy = ReconcileStrategy.PRIORITY_QUEUE,
    ) -> List[IndexEntry]:
        """Newest visible version of every key in the range, key-ordered."""
        bounds = compute_scan_bounds(self.definition, query)
        pin, runs = self._enter_query()
        # Everything after the pin runs under the finally, so an exception
        # anywhere (even in candidate filtering) cannot leak the epoch.
        candidates: List[IndexRun] = []
        try:
            candidates = [
                run
                for run in runs
                if run_may_contain(run, query, self.use_synopsis)
            ]
            if strategy is ReconcileStrategy.SET:
                return self._reconcile_set(candidates, bounds, query.query_ts)
            return self._reconcile_priority_queue(candidates, bounds, query.query_ts)
        finally:
            self._exit_query(pin, candidates)

    def _reconcile_set(
        self, runs: Sequence[IndexRun], bounds: _Bounds, query_ts: int
    ) -> List[IndexEntry]:
        """Set approach: scan run by run, remember the best version per key.

        Works well for small ranges; keeps all intermediate results in
        memory (the trade-off the paper calls out).  Versions are compared
        by raw ``beginTS`` slices, not run recency: run order tracks when
        entries were *indexed*, and a newer run may carry an older version
        of a key (evolve duplicates, out-of-order grooms), so first-seen-
        per-key would answer with the wrong version.  Runs are walked
        newest first so identical versions surfacing from both zones keep
        the newer zone's copy.
        """
        best: Dict[bytes, Tuple[int, IndexEntry]] = {}
        for run in runs:  # newest -> oldest
            for sort_key, entry in search_run_raw(
                run,
                bounds.lower_key,
                bounds.upper_exclusive,
                query_ts,
                bounds.hash_value,
                self.use_offset_array,
                self.use_raw_keys,
            ):
                key = user_key_of_sort_key(sort_key)
                begin_ts = begin_ts_of_sort_key(sort_key)
                current = best.get(key)
                if current is None or begin_ts > current[0]:
                    best[key] = (begin_ts, entry)
        return [best[key][1] for key in sorted(best)]

    def range_scan_iter(
        self, query: RangeScanQuery
    ) -> Iterator[IndexEntry]:
        """Streaming range scan (priority-queue reconciliation only).

        Yields the newest visible version per key in key order without
        materializing the result set -- the point of the priority-queue
        approach (section 7.1.2).  The run snapshot is taken (and pinned)
        once, at call time.  Cleanup -- epoch exit and purged-block
        release -- runs in the generator's ``finally``, which fires on
        exhaustion, on an explicit ``close()``, *and* when an abandoned
        iterator is garbage-collected (CPython calls ``close()`` from the
        generator's finalizer); a pin captured by a never-started iterator
        is released by the pin's own finalizer backstop.
        """
        bounds = compute_scan_bounds(self.definition, query)
        pin, runs = self._enter_query()
        try:
            candidates = [
                run
                for run in runs
                if run_may_contain(run, query, self.use_synopsis)
            ]
            inner = self._merge_runs_iter(candidates, bounds, query.query_ts)
        except BaseException:
            self._exit_query(pin, [])
            raise

        def guarded() -> Iterator[IndexEntry]:
            try:
                yield from inner
            finally:
                self._exit_query(pin, candidates)

        return guarded()

    def _reconcile_priority_queue(
        self, runs: Sequence[IndexRun], bounds: _Bounds, query_ts: int
    ) -> List[IndexEntry]:
        """Priority-queue approach: merge all run streams into one global
        key order and keep the first (newest) entry per key -- no
        intermediate result set (the merge step of merge sort)."""
        return list(self._merge_runs_iter(runs, bounds, query_ts))

    def _merge_runs_iter(
        self, runs: Sequence[IndexRun], bounds: _Bounds, query_ts: int
    ) -> Iterator[IndexEntry]:
        def stream(run: IndexRun, recency: int):
            # recency must be bound per stream (0 = newest run); it breaks
            # ties between identical versions surfacing from two zones.
            # The raw sort key (user key | descending beginTS) is exactly
            # the order the reconciliation heap needs -- no re-encoding.
            for sort_key, entry in search_run_raw(
                run,
                bounds.lower_key,
                bounds.upper_exclusive,
                query_ts,
                bounds.hash_value,
                self.use_offset_array,
                self.use_raw_keys,
            ):
                yield sort_key, recency, entry

        streams = [stream(run, recency) for recency, run in enumerate(runs)]
        previous_key: Optional[bytes] = None
        for sort_key, _recency, entry in heapq.merge(*streams):
            key = user_key_of_sort_key(sort_key)
            if key == previous_key:
                continue  # an older (or duplicate) version of an answered key
            previous_key = key
            yield entry

    # -- point lookups ------------------------------------------------------------------

    def point_lookup(self, lookup: PointLookup) -> Optional[IndexEntry]:
        """Search newest to oldest, stopping at the first visible match
        (the section 7.2 optimization)."""
        bounds = compute_point_bounds(self.definition, lookup)
        probe = RangeScanQuery(
            equality_values=lookup.equality_values,
            sort_lower=lookup.sort_values or None,
            sort_upper=lookup.sort_values or None,
            query_ts=lookup.query_ts,
        )
        pin, runs = self._enter_query()
        candidates: List[IndexRun] = []
        try:
            candidates = [
                run
                for run in runs
                if run_may_contain(run, probe, self.use_synopsis)
            ]
            for run in candidates:
                if not run.may_contain_key(bounds.lower_key):
                    continue  # Bloom filter says definitely absent
                for entry in search_run(
                    run,
                    bounds.lower_key,
                    bounds.upper_exclusive,
                    lookup.query_ts,
                    bounds.hash_value,
                    self.use_offset_array,
                    self.use_raw_keys,
                ):
                    return entry
            return None
        finally:
            self._exit_query(pin, candidates)

    def batch_lookup(
        self, lookups: Sequence[PointLookup]
    ) -> List[Optional[IndexEntry]]:
        """Batched point lookups (section 7.2).

        Keys are sorted by their encoded bytes, then searched against each
        run newest to oldest -- one sequential pass per run -- until every
        key is resolved or the runs are exhausted.  All lookups in a batch
        share one snapshot timestamp (the max is used; per-lookup filtering
        still applies).
        """
        if not lookups:
            return []
        # (encoded key, hash, input position) sorted by encoded key.
        encoded: List[Tuple[bytes, int, int]] = []
        for position, lookup in enumerate(lookups):
            bounds = compute_point_bounds(self.definition, lookup)
            encoded.append((bounds.lower_key, bounds.hash_value or 0, position))
        encoded.sort(key=lambda item: item[0])

        results: List[Optional[IndexEntry]] = [None] * len(lookups)
        unresolved = list(range(len(encoded)))  # indexes into `encoded`
        pin, candidates = self._enter_query()
        touched: List[IndexRun] = []
        try:
            batch_box = (
                self._batch_bounding_box(lookups) if self.use_synopsis else None
            )
            self._batch_lookup_runs(
                candidates, encoded, lookups, unresolved, results,
                batch_box, touched,
            )
        finally:
            self._exit_query(pin, touched)
        return results

    def _batch_lookup_runs(
        self,
        candidates: Sequence[IndexRun],
        encoded: List[Tuple[bytes, int, int]],
        lookups: Sequence[PointLookup],
        unresolved: List[int],
        results: List[Optional[IndexEntry]],
        batch_box,
        touched: List[IndexRun],
    ) -> None:
        for run in candidates:  # newest -> oldest
            if not unresolved:
                break
            if run.entry_count == 0:
                continue
            if self.use_synopsis:
                # Batch-granularity synopsis pruning (section 8.3: "the run
                # synopsis enables pruning most of the irrelevant runs" for
                # sequential batches, while random batches span the key
                # space and must search every run).
                if not self._run_overlaps_box(run, batch_box, lookups):
                    continue
                if self.per_key_batch_pruning:
                    probe_slots = [
                        i for i in unresolved
                        if self._key_may_be_in_run(run, lookups[encoded[i][2]])
                    ]
                else:
                    probe_slots = unresolved
            else:
                probe_slots = unresolved
            if probe_slots and run.header.bloom_blob is not None:
                # Bloom membership is orthogonal to pruning granularity:
                # it filters individual keys whenever a filter exists.
                probe_slots = [
                    i for i in probe_slots
                    if run.may_contain_key(encoded[i][0])
                ]
            if not probe_slots:
                continue
            batch = [(encoded[i][0], encoded[i][1]) for i in probe_slots]
            batch_ts = [lookups[encoded[i][2]].query_ts for i in probe_slots]
            if self.use_synopsis and not self._run_overlaps_batch(run, batch):
                continue
            touched.append(run)
            resolved_slots = set()
            found = self._batch_search_run(run, batch, batch_ts)
            for slot, entry in zip(probe_slots, found):
                if entry is not None:
                    results[encoded[slot][2]] = entry
                    resolved_slots.add(slot)
            unresolved = [i for i in unresolved if i not in resolved_slots]

    def _batch_bounding_box(self, lookups: Sequence[PointLookup]):
        """Per-column (min, max) over the whole batch, plus the max TS."""
        n_eq = len(self.definition.equality_columns)
        n_sort = len(self.definition.sort_columns)
        boxes = []
        for position in range(n_eq):
            values = [lk.equality_values[position] for lk in lookups]
            boxes.append((min(values), max(values)))
        for position in range(n_sort):
            values = [lk.sort_values[position] for lk in lookups]
            boxes.append((min(values), max(values)))
        max_ts = max(lk.query_ts for lk in lookups)
        return boxes, max_ts

    def _run_overlaps_box(self, run: IndexRun, box, lookups) -> bool:
        boxes, max_ts = box
        if run.header.min_begin_ts > max_ts:
            return False
        synopsis = run.header.synopsis
        for position, (low, high) in enumerate(boxes):
            crange = synopsis.column_range(position)
            if crange is not None and not crange.overlaps_range(low, high):
                return False
        return True

    def _key_may_be_in_run(self, run: IndexRun, lookup: PointLookup) -> bool:
        """Synopsis check for one point-lookup key against one run."""
        if run.header.min_begin_ts > lookup.query_ts:
            return False
        synopsis = run.header.synopsis
        for position, value in enumerate(lookup.equality_values):
            crange = synopsis.column_range(position)
            if crange is not None and not crange.overlaps_point(value):
                return False
        n_eq = len(self.definition.equality_columns)
        for offset, value in enumerate(lookup.sort_values):
            # A point lookup pins every column, so each column's synopsis
            # range is independently a sound filter (unlike range scans,
            # where only the leading sort column's range is usable alone).
            crange = synopsis.column_range(n_eq + offset)
            if crange is not None and not crange.overlaps_point(value):
                return False
        return True

    def _batch_search_run(
        self,
        run: IndexRun,
        batch: Sequence[Tuple[bytes, int]],
        batch_ts: Sequence[int],
    ) -> List[Optional[IndexEntry]]:
        # batch_lookup_in_run uses one shared query_ts; when the batch mixes
        # timestamps (rare), fall back to per-key searches.
        # batch_lookup already consulted the run's Bloom filter per key when
        # building the probe slots, so the run-level search must not re-hash
        # every key against it (use_bloom=False).
        unique_ts = set(batch_ts)
        if len(unique_ts) == 1:
            return batch_lookup_in_run(
                run, batch, unique_ts.pop(), self.use_offset_array,
                self.use_raw_keys, use_bloom=False,
            )
        results: List[Optional[IndexEntry]] = []
        for (key, hash_value), ts in zip(batch, batch_ts):
            single = batch_lookup_in_run(
                run, [(key, hash_value)], ts, self.use_offset_array,
                self.use_raw_keys, use_bloom=False,
            )
            results.append(single[0])
        return results

    def _run_overlaps_batch(
        self, run: IndexRun, batch: Sequence[Tuple[bytes, int]]
    ) -> bool:
        """Cheap batch-level prune: does any key's hash bucket have entries?

        Full synopsis pruning needs decoded column values; for sorted-key
        batches the offset array already answers "is this bucket empty"
        without any data-block I/O, which is the dominant pruning effect
        for equality-style batches.
        """
        offsets = run.header.offset_array
        if not offsets:
            return True
        nbits = run.definition.hash_bits
        count = run.entry_count
        for _key, hash_value in batch:
            bucket = hash_value >> (64 - nbits)
            lo = offsets[bucket]
            hi = offsets[bucket + 1] if bucket + 1 < len(offsets) else count
            if lo < hi:
                return True
        return False


__all__ = [
    "MAX_QUERY_TS",
    "PointLookup",
    "QueryError",
    "QueryExecutor",
    "RangeScanQuery",
    "ReconcileStrategy",
    "compute_point_bounds",
    "compute_scan_bounds",
    "run_may_contain",
]
