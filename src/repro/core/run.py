"""The on-storage index-run format (paper section 4.2).

A run is one header block plus one or more fixed-size data blocks:

* the **header block** carries the metadata: number of data blocks, merge
  level, zone, range of groomed block ids the run covers, the synopsis
  (min/max of every key column, used for run pruning), the offset array
  (2^n buckets over the most-significant hash bits, used to narrow binary
  search), a block index (first key and entry count per data block), the
  total entry count, and -- for the non-persisted-level protocol of section
  6.1 -- the list of ancestor run ids that must not be deleted until this
  run reaches a persisted level;
* each **data block** is a count-prefixed sequence of serialized entries
  in sort-key order.

Data blocks come in two formats:

* **v1** (legacy): ``count:u32 | entry offsets:u32[count] | entry bytes``.
  Probing a key requires decoding the entry at the offset and re-encoding
  its sort key -- the object-materialization cost the paper's
  memcmp-comparable key format (section 4.2) was designed to avoid.
* **v2** (current): ``"UMB2" | count:u32 | entry offsets:u32[count] |
  sort-key lengths:u32[count] | entry bytes``.  Because every entry blob
  *starts with* its sort key and the offset table also records each
  entry's sort-key length, :class:`DataBlockView` serves
  ``sort_key_at(i)`` / ``key_bytes_at(i)`` / ``begin_ts_at(i)`` as raw
  slices of the payload -- binary-search probes, batched lookups, and
  K-way merges compare memory directly and decode an :class:`IndexEntry`
  only for entries actually emitted.  The beginTS is the fixed 8-byte
  descending-encoded suffix of the sort key, so visibility checks are a
  slice plus one integer subtraction.

The two formats are distinguished by the leading 4 bytes: the v2 magic
``UMB2`` decodes as an entry count of ~1.4 billion, far beyond what any
block can hold, so v1 blocks (which start with their real count) can never
be misread as v2.  v1 blocks remain fully readable; their raw-key accessors
fall back to decode + re-encode.

Everything is serialized to plain ``bytes`` so runs round-trip through the
storage hierarchy like any other block.
"""

from __future__ import annotations

import struct
import zlib
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.definition import ColumnType, IndexDefinition
from repro.core.encoding import (
    KeyValue,
    decode_bytes,
    decode_float64,
    decode_int64,
    decode_str,
    encode_value,
)
from repro.core.entry import (
    IndexEntry,
    SORT_KEY_TS_BYTES,
    Zone,
    begin_ts_of_sort_key,
)
from repro.storage.block import Block, BlockId
from repro.storage.hierarchy import StorageHierarchy
from repro.storage.metrics import DecodeStats, ReadIntent

HEADER_ORDINAL = 0
_MAGIC = b"UMZI"
# Header v3 adds a per-data-block CRC32 to the block index so recovery can
# re-validate runs by checksumming raw payloads instead of decoding entries.
_VERSION = 3
_SUPPORTED_VERSIONS = (1, 2, 3)
_BLOCK_MAGIC_V2 = b"UMB2"


def block_checksum(payload: bytes) -> int:
    """CRC32 of one raw data-block payload (the recovery checksum).

    zlib's C-speed CRC32 stands in for CRC32C (the container has no
    Castagnoli implementation and a pure-Python table would sit on the
    write hot path); the property that matters -- any single flipped byte
    changes the digest -- is identical.
    """
    return zlib.crc32(payload) & 0xFFFFFFFF

_DECODERS = {
    ColumnType.INT64: decode_int64,
    ColumnType.FLOAT64: decode_float64,
    ColumnType.STRING: decode_str,
    ColumnType.BYTES: decode_bytes,
}


def _pack_bytes(data: bytes) -> bytes:
    return struct.pack(">I", len(data)) + data


def _unpack_bytes(data: bytes, offset: int) -> Tuple[bytes, int]:
    (length,) = struct.unpack_from(">I", data, offset)
    offset += 4
    return data[offset : offset + length], offset + length


def _pack_str(text: str) -> bytes:
    return _pack_bytes(text.encode("utf-8"))


def _unpack_str(data: bytes, offset: int) -> Tuple[str, int]:
    raw, offset = _unpack_bytes(data, offset)
    return raw.decode("utf-8"), offset


@dataclass(frozen=True)
class ColumnRange:
    """Min/max of one key column within a run (the synopsis row)."""

    min_value: KeyValue
    max_value: KeyValue

    def overlaps_point(self, value: KeyValue) -> bool:
        return self.min_value <= value <= self.max_value

    def overlaps_range(
        self, low: Optional[KeyValue], high: Optional[KeyValue]
    ) -> bool:
        if low is not None and low > self.max_value:
            return False
        if high is not None and high < self.min_value:
            return False
        return True


@dataclass(frozen=True)
class Synopsis:
    """Per-key-column value ranges; empty runs have no ranges.

    A run can be skipped by a query "if the input value of some key column
    does not overlap with the range specified by the synopsis".
    """

    ranges: Tuple[Optional[ColumnRange], ...]

    @classmethod
    def from_entries(
        cls, definition: IndexDefinition, entries: Sequence[IndexEntry]
    ) -> "Synopsis":
        n_eq = len(definition.equality_columns)
        n_key = len(definition.key_columns)
        if not entries:
            return cls(ranges=tuple([None] * n_key))
        ranges: List[Optional[ColumnRange]] = []
        for pos in range(n_key):
            if pos < n_eq:
                values = [e.equality_values[pos] for e in entries]
            else:
                values = [e.sort_values[pos - n_eq] for e in entries]
            ranges.append(ColumnRange(min(values), max(values)))
        return cls(ranges=tuple(ranges))

    def column_range(self, position: int) -> Optional[ColumnRange]:
        return self.ranges[position]

    @classmethod
    def union(cls, synopses: Sequence["Synopsis"]) -> "Synopsis":
        """Position-wise union of several runs' synopses.

        Used by the blob-level merge path: the merged run's entries are a
        subset of the inputs' entries, so the union of the input ranges is
        a sound (possibly over-approximate) synopsis without decoding a
        single merged entry.  Over-approximation only costs pruning
        opportunities, never correctness.
        """
        if not synopses:
            raise ValueError("union of zero synopses is undefined")
        width = len(synopses[0].ranges)
        merged: List[Optional[ColumnRange]] = []
        for position in range(width):
            present = [
                s.ranges[position] for s in synopses if s.ranges[position] is not None
            ]
            if not present:
                merged.append(None)
                continue
            merged.append(
                ColumnRange(
                    min(r.min_value for r in present),
                    max(r.max_value for r in present),
                )
            )
        return cls(ranges=tuple(merged))


@dataclass(frozen=True)
class DataBlockMeta:
    """Block-index entry: where one data block starts and how big it is.

    ``checksum`` is the CRC32 of the block's raw payload (header v3);
    ``None`` for runs written by older builders, which recovery must
    re-validate by decoding instead.
    """

    entry_count: int
    first_sort_key: bytes
    size_bytes: int
    checksum: Optional[int] = None


@dataclass(frozen=True)
class RunHeader:
    """All run metadata stored in the header block."""

    run_id: str
    zone: Zone
    level: int
    min_groomed_id: int
    max_groomed_id: int
    entry_count: int
    synopsis: Synopsis
    offset_array: Tuple[int, ...]
    block_meta: Tuple[DataBlockMeta, ...]
    min_begin_ts: int
    max_begin_ts: int
    persisted: bool
    ancestor_run_ids: Tuple[str, ...] = ()
    # Optional serialized Bloom filter over the run's distinct key bytes
    # (extension; see repro.core.bloom).
    bloom_blob: Optional[bytes] = None

    @property
    def num_data_blocks(self) -> int:
        return len(self.block_meta)

    @property
    def data_bytes(self) -> int:
        return sum(m.size_bytes for m in self.block_meta)

    # -- serialization ---------------------------------------------------------

    def to_bytes(self, definition: IndexDefinition) -> bytes:
        parts: List[bytes] = [_MAGIC, struct.pack(">H", _VERSION)]
        parts.append(_pack_str(self.run_id))
        parts.append(
            struct.pack(
                ">BHqqQ",
                int(self.zone),
                self.level,
                self.min_groomed_id,
                self.max_groomed_id,
                self.entry_count,
            )
        )
        parts.append(struct.pack(">QQB", self.min_begin_ts, self.max_begin_ts, int(self.persisted)))
        # synopsis: presence flag + encoded min/max per key column
        parts.append(struct.pack(">H", len(self.synopsis.ranges)))
        for crange in self.synopsis.ranges:
            if crange is None:
                parts.append(b"\x00")
            else:
                parts.append(b"\x01")
                parts.append(encode_value(crange.min_value))
                parts.append(encode_value(crange.max_value))
        # offset array
        parts.append(struct.pack(">I", len(self.offset_array)))
        if self.offset_array:
            parts.append(struct.pack(f">{len(self.offset_array)}Q", *self.offset_array))
        # block index (v3: per-block payload checksum for raw revalidation)
        parts.append(struct.pack(">I", len(self.block_meta)))
        for meta in self.block_meta:
            parts.append(struct.pack(">QI", meta.entry_count, meta.size_bytes))
            parts.append(_pack_bytes(meta.first_sort_key))
            if meta.checksum is None:
                parts.append(b"\x00")
            else:
                parts.append(struct.pack(">BI", 1, meta.checksum))
        # ancestors
        parts.append(struct.pack(">I", len(self.ancestor_run_ids)))
        for rid in self.ancestor_run_ids:
            parts.append(_pack_str(rid))
        # optional bloom filter
        if self.bloom_blob is None:
            parts.append(b"\x00")
        else:
            parts.append(b"\x01")
            parts.append(_pack_bytes(self.bloom_blob))
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, definition: IndexDefinition, data: bytes) -> "RunHeader":
        if data[:4] != _MAGIC:
            raise ValueError("not an Umzi run header block")
        (version,) = struct.unpack_from(">H", data, 4)
        if version not in _SUPPORTED_VERSIONS:
            raise ValueError(f"unsupported run header version {version}")
        pos = 6
        run_id, pos = _unpack_str(data, pos)
        zone_raw, level, min_gid, max_gid, entry_count = struct.unpack_from(
            ">BHqqQ", data, pos
        )
        pos += struct.calcsize(">BHqqQ")
        min_ts, max_ts, persisted = struct.unpack_from(">QQB", data, pos)
        pos += struct.calcsize(">QQB")
        (n_ranges,) = struct.unpack_from(">H", data, pos)
        pos += 2
        key_specs = definition.key_columns
        if n_ranges != len(key_specs):
            raise ValueError(
                f"synopsis has {n_ranges} columns but definition has "
                f"{len(key_specs)} key columns"
            )
        ranges: List[Optional[ColumnRange]] = []
        for spec in key_specs:
            present = data[pos]
            pos += 1
            if not present:
                ranges.append(None)
                continue
            decoder = _DECODERS[spec.ctype]
            min_value, pos = decoder(data, pos)
            max_value, pos = decoder(data, pos)
            ranges.append(ColumnRange(min_value, max_value))
        (n_offsets,) = struct.unpack_from(">I", data, pos)
        pos += 4
        offsets: Tuple[int, ...] = ()
        if n_offsets:
            offsets = struct.unpack_from(f">{n_offsets}Q", data, pos)
            pos += 8 * n_offsets
        (n_blocks,) = struct.unpack_from(">I", data, pos)
        pos += 4
        metas: List[DataBlockMeta] = []
        for _ in range(n_blocks):
            count, size_bytes = struct.unpack_from(">QI", data, pos)
            pos += struct.calcsize(">QI")
            first_key, pos = _unpack_bytes(data, pos)
            checksum: Optional[int] = None
            if version >= 3:
                present = data[pos]
                pos += 1
                if present:
                    (checksum,) = struct.unpack_from(">I", data, pos)
                    pos += 4
            metas.append(
                DataBlockMeta(
                    entry_count=count,
                    first_sort_key=first_key,
                    size_bytes=size_bytes,
                    checksum=checksum,
                )
            )
        (n_ancestors,) = struct.unpack_from(">I", data, pos)
        pos += 4
        ancestors: List[str] = []
        for _ in range(n_ancestors):
            ancestor, pos = _unpack_str(data, pos)
            ancestors.append(ancestor)
        bloom_blob: Optional[bytes] = None
        if pos < len(data) and data[pos]:
            bloom_blob, _ = _unpack_bytes(data, pos + 1)
        return cls(
            run_id=run_id,
            zone=Zone(zone_raw),
            level=level,
            min_groomed_id=min_gid,
            max_groomed_id=max_gid,
            entry_count=entry_count,
            synopsis=Synopsis(ranges=tuple(ranges)),
            offset_array=tuple(offsets),
            block_meta=tuple(metas),
            min_begin_ts=min_ts,
            max_begin_ts=max_ts,
            persisted=bool(persisted),
            ancestor_run_ids=tuple(ancestors),
            bloom_blob=bloom_blob,
        )


def encode_data_block_from_blobs(
    blob_pairs: Sequence[Tuple[bytes, bytes]]
) -> bytes:
    """Serialize one v2 data block from ``(sort_key, entry_blob)`` pairs.

    Layout: ``"UMB2" | count | per-entry offsets | per-entry sort-key
    lengths | entry bytes``.  The offset table lets binary-search probes
    touch *single* entries instead of whole blocks (the restart-point
    trick); the sort-key length table is what makes those probes zero
    decode -- each entry blob starts with its sort key, so a probe is a
    pure payload slice.
    """
    offsets: List[int] = []
    sklens: List[int] = []
    position = 0
    for sort_key, blob in blob_pairs:
        offsets.append(position)
        sklens.append(len(sort_key))
        position += len(blob)
    count = len(blob_pairs)
    parts = [_BLOCK_MAGIC_V2, struct.pack(">I", count)]
    if count:
        parts.append(struct.pack(f">{count}I", *offsets))
        parts.append(struct.pack(f">{count}I", *sklens))
    parts.extend(blob for _sk, blob in blob_pairs)
    return b"".join(parts)


def encode_data_block(
    definition: IndexDefinition, entries: Sequence[IndexEntry]
) -> bytes:
    """Serialize one data block (current v2 format) from decoded entries."""
    return encode_data_block_from_blobs(
        [entry.to_blob(definition) for entry in entries]
    )


def encode_data_block_v1(
    definition: IndexDefinition, entries: Sequence[IndexEntry]
) -> bytes:
    """Serialize one *legacy* v1 data block (compatibility tests only).

    Layout: ``count | per-entry offsets | entry bytes`` -- no sort-key
    length table, so raw-key accessors on v1 blocks must decode.
    """
    blobs = [entry.to_bytes(definition) for entry in entries]
    offsets: List[int] = []
    position = 0
    for blob in blobs:
        offsets.append(position)
        position += len(blob)
    parts = [struct.pack(">I", len(entries))]
    if offsets:
        parts.append(struct.pack(f">{len(offsets)}I", *offsets))
    parts.extend(blobs)
    return b"".join(parts)


class DataBlockView:
    """Lazy, memoizing view over one encoded data block (v1 or v2).

    On v2 payloads the raw-key accessors (:meth:`sort_key_at`,
    :meth:`key_bytes_at`, :meth:`begin_ts_at`, :meth:`entry_blob_at`) are
    pure payload slices -- no column decoding, no object construction.  On
    legacy v1 payloads they fall back to decoding the entry and re-encoding
    its sort key (memoized), preserving readability of old blocks.
    """

    __slots__ = (
        "definition",
        "payload",
        "version",
        "_offsets",
        "_sklens",
        "_base",
        "_cache",
        "_sort_key_cache",
        "_stats",
        "count",
    )

    def __init__(
        self,
        definition: IndexDefinition,
        payload: bytes,
        stats: Optional[DecodeStats] = None,
    ) -> None:
        self.definition = definition
        self.payload = payload
        self._stats = stats
        if payload[:4] == _BLOCK_MAGIC_V2:
            self.version = 2
            (self.count,) = struct.unpack_from(">I", payload, 4)
            self._offsets = struct.unpack_from(f">{self.count}I", payload, 8)
            self._sklens = struct.unpack_from(
                f">{self.count}I", payload, 8 + 4 * self.count
            )
            self._base = 8 + 8 * self.count
        else:
            self.version = 1
            (self.count,) = struct.unpack_from(">I", payload, 0)
            self._offsets = struct.unpack_from(f">{self.count}I", payload, 4)
            self._sklens = None
            self._base = 4 + 4 * self.count
        self._cache: Dict[int, IndexEntry] = {}
        self._sort_key_cache: Optional[Dict[int, bytes]] = (
            None if self._sklens is not None else {}
        )

    def entry(self, index: int) -> IndexEntry:
        cached = self._cache.get(index)
        if cached is not None:
            return cached
        if self._stats is not None:
            self._stats.entry_decodes += 1
        entry, _ = IndexEntry.from_bytes(
            self.definition, self.payload, self._base + self._offsets[index]
        )
        self._cache[index] = entry
        return entry

    # -- zero-decode accessors --------------------------------------------------

    def sort_key_at(self, index: int) -> bytes:
        """Raw sort key of entry ``index`` -- a payload slice on v2."""
        if self._sklens is not None:
            if self._stats is not None:
                self._stats.raw_key_probes += 1
            start = self._base + self._offsets[index]
            return self.payload[start : start + self._sklens[index]]
        # v1 fallback: decode once, memoize the re-encoded key.
        cached = self._sort_key_cache.get(index)
        if cached is None:
            cached = self.entry(index).sort_key(self.definition)
            self._sort_key_cache[index] = cached
        return cached

    def key_bytes_at(self, index: int) -> bytes:
        """Raw user key (sort key minus the 8-byte beginTS suffix)."""
        if self._sklens is not None:
            if self._stats is not None:
                self._stats.raw_key_probes += 1
            start = self._base + self._offsets[index]
            return self.payload[start : start + self._sklens[index] - SORT_KEY_TS_BYTES]
        return self.sort_key_at(index)[:-SORT_KEY_TS_BYTES]

    def begin_ts_at(self, index: int) -> int:
        """``beginTS`` of entry ``index`` from the fixed sort-key suffix."""
        return begin_ts_of_sort_key(self.sort_key_at(index))

    def entry_blob_at(self, index: int) -> bytes:
        """The raw serialized entry, verbatim (merge copy path)."""
        if self._stats is not None:
            self._stats.blob_copies += 1
        start = self._base + self._offsets[index]
        if index + 1 < self.count:
            return self.payload[start : self._base + self._offsets[index + 1]]
        return self.payload[start:]

    # -- decoded iteration ------------------------------------------------------

    def iter_from(self, start: int):
        for index in range(start, self.count):
            yield self.entry(index)

    def all_entries(self) -> List[IndexEntry]:
        return list(self.iter_from(0))


def decode_data_block(
    definition: IndexDefinition, payload: bytes
) -> List[IndexEntry]:
    """Fully materialize a data block (merges, tests)."""
    return DataBlockView(definition, payload).all_entries()


class IndexRun:
    """In-memory handle to one run: header metadata + block access.

    The handle holds only the header; data blocks are fetched through the
    storage hierarchy on demand (charging tier latency), with a small
    per-run decode cache so repeated touches within one query batch do not
    re-decode bytes.  Cached decodes are invalidated by nothing -- runs are
    immutable.
    """

    def __init__(
        self,
        definition: IndexDefinition,
        header: RunHeader,
        hierarchy: StorageHierarchy,
    ) -> None:
        self.definition = definition
        self.header = header
        self.hierarchy = hierarchy
        self._views: Dict[int, DataBlockView] = {}
        self._cumulative: Optional[List[int]] = None
        self._first_keys: Optional[List[bytes]] = None
        self._bloom = None  # decoded lazily from header.bloom_blob
        self._bloom_decoded = False

    # -- identity / metadata ----------------------------------------------------

    @property
    def run_id(self) -> str:
        return self.header.run_id

    @property
    def zone(self) -> Zone:
        return self.header.zone

    @property
    def level(self) -> int:
        return self.header.level

    @property
    def entry_count(self) -> int:
        return self.header.entry_count

    @property
    def min_groomed_id(self) -> int:
        return self.header.min_groomed_id

    @property
    def max_groomed_id(self) -> int:
        return self.header.max_groomed_id

    @property
    def size_bytes(self) -> int:
        return self.header.data_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IndexRun({self.run_id} zone={self.zone.name} level={self.level} "
            f"gids=[{self.min_groomed_id},{self.max_groomed_id}] "
            f"entries={self.entry_count})"
        )

    # -- block access -------------------------------------------------------------

    def header_block_id(self) -> BlockId:
        return BlockId(self.run_id, HEADER_ORDINAL)

    def data_block_id(self, block_index: int) -> BlockId:
        return BlockId(self.run_id, block_index + 1)

    def all_block_ids(self) -> List[BlockId]:
        return [self.header_block_id()] + [
            self.data_block_id(i) for i in range(self.header.num_data_blocks)
        ]

    def block_view(
        self, block_index: int, intent: Optional[ReadIntent] = None
    ) -> DataBlockView:
        """Fetch one data block as a lazy view (cached per handle).

        The storage read (and its tier latency) happens once per block;
        entry decoding happens per *probed* entry, so binary-search probes
        stay cheap regardless of block size.

        ``intent`` is the cache-admission signal passed down to
        :meth:`StorageHierarchy.read` (``None`` resolves through the
        hierarchy's scoped default).  An *explicitly* MAINTENANCE-intent
        fetch additionally skips the per-handle view cache (when the
        hierarchy runs the ``"intent"`` admission mode): the explicit
        intent is only passed by one-pass streams -- merges and streaming
        evolves touch each block exactly once, so memoizing their views
        would only retain dead payloads on a handle queries share.
        Scope-*inherited* maintenance reads (e.g. the post-groomer's point
        lookups under ``reading_as``) keep memoizing: binary-search probes
        revisit the same block many times, and re-fetching it per probe
        would multiply their I/O.
        """
        cached = self._views.get(block_index)
        if cached is not None:
            return cached
        effective = (
            intent
            if intent is not None
            else self.hierarchy.current_read_intent()
        )
        block = self.hierarchy.read(
            self.data_block_id(block_index), intent=effective
        )
        view = DataBlockView(
            self.definition, block.payload, stats=self.hierarchy.stats.decode
        )
        transient = (
            intent is ReadIntent.MAINTENANCE
            and self.hierarchy.maintenance_read_mode == "intent"
        )
        if not transient:
            self._views[block_index] = view
        return view

    def read_block(self, block_index: int) -> List[IndexEntry]:
        """Fetch and fully decode one data block (merges, tests)."""
        return self.block_view(block_index).all_entries()

    def drop_decode_cache(self) -> None:
        """Release decoded entries (used after purge, and by tests)."""
        self._views.clear()

    # -- global-ordinal navigation --------------------------------------------------

    def _cumulative_counts(self) -> List[int]:
        """``cum[i]`` = number of entries before data block ``i``."""
        if self._cumulative is None:
            cum = [0]
            for meta in self.header.block_meta:
                cum.append(cum[-1] + meta.entry_count)
            self._cumulative = cum
        return self._cumulative

    def locate(self, ordinal: int) -> Tuple[int, int]:
        """Map a global entry ordinal to ``(block_index, in_block_index)``."""
        if not 0 <= ordinal < self.entry_count:
            raise IndexError(f"ordinal {ordinal} out of range 0..{self.entry_count}")
        cum = self._cumulative_counts()
        lo, hi = 0, len(cum) - 1
        while lo + 1 < hi:
            mid = (lo + hi) // 2
            if cum[mid] <= ordinal:
                lo = mid
            else:
                hi = mid
        return lo, ordinal - cum[lo]

    def entry_at(self, ordinal: int) -> IndexEntry:
        block_index, in_block = self.locate(ordinal)
        return self.block_view(block_index).entry(in_block)

    def sort_key_at(self, ordinal: int) -> bytes:
        """Raw sort key at a global ordinal -- zero decode on v2 blocks."""
        block_index, in_block = self.locate(ordinal)
        return self.block_view(block_index).sort_key_at(in_block)

    def key_bytes_at(self, ordinal: int) -> bytes:
        """Raw user key (no beginTS suffix) at a global ordinal."""
        block_index, in_block = self.locate(ordinal)
        return self.block_view(block_index).key_bytes_at(in_block)

    def begin_ts_at(self, ordinal: int) -> int:
        """``beginTS`` at a global ordinal, from the raw sort-key suffix."""
        block_index, in_block = self.locate(ordinal)
        return self.block_view(block_index).begin_ts_at(in_block)

    def entry_blob_at(self, ordinal: int) -> bytes:
        """Raw serialized entry at a global ordinal (merge copy path)."""
        block_index, in_block = self.locate(ordinal)
        return self.block_view(block_index).entry_blob_at(in_block)

    def iter_entries(self, start_ordinal: int = 0):
        """Yield entries in sort-key order from ``start_ordinal`` onward."""
        if start_ordinal >= self.entry_count:
            return
        block_index, in_block = self.locate(start_ordinal)
        for bi in range(block_index, self.header.num_data_blocks):
            view = self.block_view(bi)
            start = in_block if bi == block_index else 0
            yield from view.iter_from(start)

    def iter_positions(
        self, start_ordinal: int = 0, intent: Optional[ReadIntent] = None
    ) -> Iterator[Tuple[DataBlockView, int]]:
        """Yield ``(block_view, in_block_index)`` in sort-key order.

        The raw-slice iteration primitive: callers probe
        ``view.sort_key_at(i)`` / ``view.begin_ts_at(i)`` and decode an
        entry only when they actually emit it.  ``intent`` flows to
        :meth:`block_view` (maintenance scans pass
        ``ReadIntent.MAINTENANCE`` so streamed blocks bypass cache
        admission).
        """
        if start_ordinal >= self.entry_count:
            return
        block_index, in_block = self.locate(start_ordinal)
        for bi in range(block_index, self.header.num_data_blocks):
            view = self.block_view(bi, intent=intent)
            start = in_block if bi == block_index else 0
            for i in range(start, view.count):
                yield view, i

    def iter_raw(
        self, start_ordinal: int = 0, intent: Optional[ReadIntent] = None
    ) -> Iterator[Tuple[bytes, bytes]]:
        """Yield ``(sort_key, entry_blob)`` pairs in sort-key order.

        The zero-decode merge input: blobs stream out verbatim, keys are
        payload slices (on v2 blocks).
        """
        for view, i in self.iter_positions(start_ordinal, intent=intent):
            yield view.sort_key_at(i), view.entry_blob_at(i)

    def all_entries(self) -> List[IndexEntry]:
        """Materialize every entry (tests / merges; charges block reads)."""
        return list(self.iter_entries(0))

    # -- block-index narrowing ------------------------------------------------------

    def _block_first_keys(self) -> List[bytes]:
        if self._first_keys is None:
            self._first_keys = [m.first_sort_key for m in self.header.block_meta]
        return self._first_keys

    def key_position_bounds(self, target: bytes) -> Tuple[int, int]:
        """Ordinal bounds on ``first_geq(target)`` from the block index.

        Binary-searches the header's ``block_meta.first_sort_key`` table
        (no data-block I/O) and returns ``(lo, hi)`` such that the first
        ordinal whose sort key is ``>= target`` lies in ``[lo, hi]``.
        Probing within these fences means binary search never fetches data
        blocks outside the key range.
        """
        first_keys = self._block_first_keys()
        cum = self._cumulative_counts()
        # Blocks before b_lo end strictly below target (bisect_left keeps
        # duplicates of target on the safe side); blocks from b_hi on start
        # strictly above it.
        b_lo = max(0, bisect_left(first_keys, target) - 1)
        b_hi = bisect_right(first_keys, target)
        return cum[b_lo], cum[b_hi]

    # -- bloom membership (extension) -----------------------------------------------

    def may_contain_key(self, key_bytes: bytes) -> bool:
        """Bloom-filter membership test; ``True`` when no filter exists."""
        if not self._bloom_decoded:
            from repro.core.bloom import BloomFilter

            blob = self.header.bloom_blob
            self._bloom = BloomFilter.from_bytes(blob) if blob else None
            self._bloom_decoded = True
        if self._bloom is None:
            return True
        return self._bloom.might_contain(key_bytes)

    # -- covering test -----------------------------------------------------------------

    def is_covered_by_watermark(self, max_covered_groomed_id: int) -> bool:
        """Whether queries must ignore this groomed run (paper section 5.4).

        After an evolve advances the post-groomed watermark, any groomed run
        whose *end* groomed block id is <= the watermark is fully covered by
        post-groomed runs and "automatically ignored by queries".
        """
        return (
            self.zone is Zone.GROOMED
            and self.max_groomed_id <= max_covered_groomed_id
        )


__all__ = [
    "ColumnRange",
    "DataBlockView",
    "DataBlockMeta",
    "IndexRun",
    "RunHeader",
    "Synopsis",
    "block_checksum",
    "decode_data_block",
    "encode_data_block",
    "encode_data_block_from_blobs",
    "encode_data_block_v1",
    "HEADER_ORDINAL",
]
