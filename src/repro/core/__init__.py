"""Umzi -- the unified multi-zone LSM index (the paper's contribution).

Public API
----------

:class:`~repro.core.definition.IndexDefinition`
    Declares equality columns, sort columns and included columns
    (paper section 4.1).
:class:`~repro.core.index.UmziIndex`
    The index facade: run ingestion, merge, evolve, caching, recovery and
    queries over the multi-zone run lists.
:class:`~repro.core.query.RangeScanQuery` / :class:`~repro.core.query.PointLookup`
    Query descriptors accepted by :meth:`UmziIndex.range_scan` and
    :meth:`UmziIndex.point_lookup`.

Everything else (run formats, run lists, merge policy, cache manager) is
importable for tests, benchmarks and power users but is not needed for
ordinary use -- see ``examples/quickstart.py``.
"""

from repro.core.definition import ColumnSpec, ColumnType, IndexDefinition
from repro.core.entry import IndexEntry, RID, Zone
from repro.core.epoch import RunLifecycle, RunListVersion
from repro.core.index import UmziIndex, UmziConfig
from repro.core.levels import LevelConfig
from repro.core.query import PointLookup, RangeScanQuery, ReconcileStrategy
from repro.core.run import IndexRun
from repro.core.stats import IndexStats

__all__ = [
    "ColumnSpec",
    "ColumnType",
    "IndexDefinition",
    "IndexEntry",
    "IndexRun",
    "IndexStats",
    "LevelConfig",
    "PointLookup",
    "RangeScanQuery",
    "ReconcileStrategy",
    "RID",
    "RunLifecycle",
    "RunListVersion",
    "UmziConfig",
    "UmziIndex",
    "Zone",
]
