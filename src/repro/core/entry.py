"""Index entries and record identifiers.

An index entry (paper section 4.2) is one logical row of a run's sorted
table: hash column, equality columns, sort columns, included columns,
``beginTS``, and the RID locating the indexed record.

A Wildfire RID is "identified by the combination of zone, block ID, and
record offset" (footnote 2) -- crucially it is *not* stable: when a record
evolves from the groomed to the post-groomed zone it gets a new RID, which
is exactly why classic LSM secondary indexes (fixed-RID assumption) do not
work and the evolve operation exists.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.definition import ColumnType, IndexDefinition
from repro.core.encoding import (
    KeyValue,
    decode_bytes,
    decode_float64,
    decode_int64,
    decode_str,
    decode_ts_desc,
    decode_uint64,
    encode_composite,
    encode_ts_desc,
    encode_uint64,
    encode_value,
)


class Zone(enum.IntEnum):
    """Data zones of the Wildfire lifecycle.

    The index covers GROOMED and POST_GROOMED (section 3: the live zone is
    small and not indexed); LIVE exists for the engine substrate's RIDs.
    """

    LIVE = 0
    GROOMED = 1
    POST_GROOMED = 2


@dataclass(frozen=True, order=True)
class RID:
    """Record identifier: (zone, block id, record offset)."""

    zone: Zone
    block_id: int
    offset: int

    _STRUCT = struct.Struct(">BQI")

    def to_bytes(self) -> bytes:
        return self._STRUCT.pack(int(self.zone), self.block_id, self.offset)

    @classmethod
    def from_bytes(cls, data: bytes, offset: int = 0) -> Tuple["RID", int]:
        zone, block_id, rec_offset = cls._STRUCT.unpack_from(data, offset)
        return (
            cls(zone=Zone(zone), block_id=block_id, offset=rec_offset),
            offset + cls._STRUCT.size,
        )

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.zone.name.lower()}:{self.block_id}:{self.offset}"


_DECODERS = {
    ColumnType.INT64: decode_int64,
    ColumnType.FLOAT64: decode_float64,
    ColumnType.STRING: decode_str,
    ColumnType.BYTES: decode_bytes,
}

# The sort key always ends in the fixed-width descending-beginTS encoding
# (section 4.2), so blob-level code can split ``user key | beginTS`` without
# decoding any column.
SORT_KEY_TS_BYTES = 8
_UINT64_MAX = (1 << 64) - 1


def user_key_of_sort_key(sort_key: bytes) -> bytes:
    """The ``key_bytes`` portion of a raw sort key (drop the beginTS suffix)."""
    return sort_key[:-SORT_KEY_TS_BYTES]


def begin_ts_of_sort_key(sort_key: bytes) -> int:
    """Decode ``beginTS`` from a raw sort key's fixed 8-byte suffix."""
    return _UINT64_MAX - int.from_bytes(sort_key[-SORT_KEY_TS_BYTES:], "big")


# Serialized RID width; the RID is always the fixed-size suffix of an entry
# blob (layout ``sort_key | includes | rid``), so the maintenance path can
# splice a new RID without decoding any column.
RID_BYTES = RID._STRUCT.size


def reencode_sort_key(
    blob: bytes, new_sort_key: bytes, old_sort_key_len: Optional[int] = None
) -> bytes:
    """Splice ``new_sort_key`` over the sort key a blob starts with.

    The general zero-decode re-key primitive: an entry blob's layout is
    ``sort_key | includes | rid``, so rewriting the key columns or beginTS
    of an entry is a byte splice -- the include columns and RID are
    forwarded verbatim, never decoded.  The current streaming evolve path
    needs only the RID-suffix specialization (:func:`replace_rid_in_blob`)
    because a record's key and beginTS survive zone migration unchanged;
    this helper is for maintenance rewrites that *do* change the key
    (e.g. a future beginTS-remapping groom).  ``old_sort_key_len``
    defaults to ``len(new_sort_key)`` (same-shape keys).
    """
    old_len = len(new_sort_key) if old_sort_key_len is None else old_sort_key_len
    return new_sort_key + blob[old_len:]


def replace_rid_in_blob(blob: bytes, new_rid: "RID") -> bytes:
    """Splice a new RID over a blob's fixed-width RID suffix.

    This is what the streaming evolve path does per entry: when a record
    moves from the groomed to the post-groomed zone its key and beginTS
    are unchanged -- only the RID suffix differs -- so the whole re-key is
    one slice plus a 13-byte pack.
    """
    return blob[: len(blob) - RID_BYTES] + new_rid.to_bytes()


@dataclass(frozen=True)
class IndexEntry:
    """One logical index row.

    ``sort_key`` is the memcmp-comparable concatenation
    ``hash | equality columns | sort columns | ~beginTS`` -- the full run
    order of paper section 4.2 (beginTS descending so newer versions sort
    first within a key).
    """

    hash_value: int
    equality_values: Tuple[KeyValue, ...]
    sort_values: Tuple[KeyValue, ...]
    include_values: Tuple[KeyValue, ...]
    begin_ts: int
    rid: RID

    @classmethod
    def create(
        cls,
        definition: IndexDefinition,
        equality_values: Tuple[KeyValue, ...],
        sort_values: Tuple[KeyValue, ...],
        include_values: Tuple[KeyValue, ...],
        begin_ts: int,
        rid: RID,
    ) -> "IndexEntry":
        """Validate against a definition and compute the hash column."""
        eq, st = definition.validate_key(equality_values, sort_values)
        incl = definition.validate_includes(include_values)
        return cls(
            hash_value=definition.hash_of(eq),
            equality_values=eq,
            sort_values=st,
            include_values=incl,
            begin_ts=begin_ts,
            rid=rid,
        )

    # -- ordering -------------------------------------------------------------

    def key_bytes(self, definition: IndexDefinition) -> bytes:
        """The user key (hash + equality + sort columns), excluding beginTS.

        Two entries with equal ``key_bytes`` are versions of the same key;
        reconciliation keeps only the newest visible one.
        """
        parts = []
        if definition.has_hash_column:
            parts.append(encode_uint64(self.hash_value))
        parts.append(encode_composite(self.equality_values))
        parts.append(encode_composite(self.sort_values))
        return b"".join(parts)

    def sort_key(self, definition: IndexDefinition) -> bytes:
        """Full run order: user key then descending beginTS."""
        return self.key_bytes(definition) + encode_ts_desc(self.begin_ts)

    # -- serialization ---------------------------------------------------------

    def to_bytes(self, definition: IndexDefinition) -> bytes:
        """Serialize for storage in a run data block.

        Layout: ``sort_key | includes | rid``.  The key columns are decoded
        back out of the sort key itself (all encodings are self-delimiting
        given the definition), so nothing is stored twice.
        """
        return self.to_blob(definition)[1]

    def to_blob(self, definition: IndexDefinition) -> Tuple[bytes, bytes]:
        """Serialize once, returning ``(sort_key, blob)``.

        The blob *starts with* the sort key, so callers that need both (the
        run builder, the blob-level merge) avoid encoding the key twice.
        """
        sort_key = self.sort_key(definition)
        parts = [sort_key]
        parts.extend(encode_value(v) for v in self.include_values)
        parts.append(self.rid.to_bytes())
        return sort_key, b"".join(parts)

    @classmethod
    def from_bytes(
        cls, definition: IndexDefinition, data: bytes, offset: int = 0
    ) -> Tuple["IndexEntry", int]:
        """Deserialize one entry; returns ``(entry, next_offset)``."""
        pos = offset
        hash_value = 0
        if definition.has_hash_column:
            hash_value, pos = decode_uint64(data, pos)
        eq_values = []
        for spec in definition.equality_columns:
            value, pos = _DECODERS[spec.ctype](data, pos)
            eq_values.append(value)
        sort_values = []
        for spec in definition.sort_columns:
            value, pos = _DECODERS[spec.ctype](data, pos)
            sort_values.append(value)
        begin_ts, pos = decode_ts_desc(data, pos)
        include_values = []
        for spec in definition.included_columns:
            value, pos = _DECODERS[spec.ctype](data, pos)
            include_values.append(value)
        rid, pos = RID.from_bytes(data, pos)
        return (
            cls(
                hash_value=hash_value,
                equality_values=tuple(eq_values),
                sort_values=tuple(sort_values),
                include_values=tuple(include_values),
                begin_ts=begin_ts,
                rid=rid,
            ),
            pos,
        )


__all__ = [
    "IndexEntry",
    "RID",
    "RID_BYTES",
    "SORT_KEY_TS_BYTES",
    "Zone",
    "begin_ts_of_sort_key",
    "reencode_sort_key",
    "replace_rid_in_blob",
    "user_key_of_sort_key",
]
