"""Background index maintenance (paper section 5.1).

"To minimize contentions caused by concurrent index maintenance operations,
each level is assigned a dedicated index maintenance thread."  The
reproduction provides both:

* **threaded mode** -- one worker per zone driving merges (a worker per
  level would be idle most of the time in a scaled-down run; contention
  behaviour is identical because merges serialize per level through the
  controller either way), plus a cache-maintenance worker;
* **step mode** -- a synchronous :meth:`MaintenanceService.step` that tests
  and deterministic benchmarks call explicitly.

Workers never block queries: all list mutations inside the controllers are
single atomic pointer publications.
"""

from __future__ import annotations

import threading
import time
from typing import List, Optional

from repro.core.cache import CacheManager
from repro.core.entry import Zone
from repro.core.merge import MergeController, MergeResult
from repro.faults.crash import crash_point


class MaintenanceService:
    """Drives merges and cache maintenance, threaded or stepwise."""

    def __init__(
        self,
        merge_controller: MergeController,
        cache_manager: Optional[CacheManager] = None,
        poll_interval_s: float = 0.01,
    ) -> None:
        self.merge_controller = merge_controller
        self.cache_manager = cache_manager
        self.poll_interval_s = poll_interval_s
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()
        self._merges_done = 0
        self._merge_count_lock = threading.Lock()
        # Backpressure gate (ISSUE 7): a ``() -> bool`` callable consulted
        # before every unit of maintenance work; False skips the unit.
        # See repro.qos.scheduler.DaemonScheduler.
        self._gate = None

    def set_gate(self, gate) -> None:
        """Install (or clear, with ``None``) the backpressure gate."""
        self._gate = gate

    def _gate_allows(self) -> bool:
        gate = self._gate
        return gate is None or gate()

    # -- synchronous mode -----------------------------------------------------------

    def step(self, max_merges_per_zone: int = 64) -> List[MergeResult]:
        """Run all pending maintenance now (deterministic tests/benches).

        With a gate installed, a throttled step does nothing and returns
        an empty list (the pending merges stay pending).
        """
        if not self._gate_allows():
            return []
        crash_point("maintenance.step")
        results: List[MergeResult] = []
        for zone in (Zone.GROOMED, Zone.POST_GROOMED):
            results.extend(
                self.merge_controller.merge_until_stable(zone, max_merges_per_zone)
            )
        if self.cache_manager is not None:
            self.cache_manager.maintain()
        with self._merge_count_lock:
            self._merges_done += len(results)
        return results

    # -- threaded mode -----------------------------------------------------------------

    def start(self) -> None:
        """Launch one merge worker per zone plus a cache worker."""
        if self._threads:
            raise RuntimeError("maintenance service already started")
        self._stop.clear()
        for zone in (Zone.GROOMED, Zone.POST_GROOMED):
            thread = threading.Thread(
                target=self._merge_loop,
                args=(zone,),
                name=f"umzi-merge-{zone.name.lower()}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        if self.cache_manager is not None:
            thread = threading.Thread(
                target=self._cache_loop, name="umzi-cache", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def stop(self, timeout_s: float = 5.0) -> None:
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=timeout_s)
        self._threads = []

    @property
    def running(self) -> bool:
        return bool(self._threads) and not self._stop.is_set()

    @property
    def merges_done(self) -> int:
        with self._merge_count_lock:
            return self._merges_done

    def _merge_loop(self, zone: Zone) -> None:
        while not self._stop.is_set():
            if not self._gate_allows():
                time.sleep(self.poll_interval_s)
                continue
            result = self.merge_controller.merge_step(zone)
            if result is None:
                time.sleep(self.poll_interval_s)
            else:
                with self._merge_count_lock:
                    self._merges_done += 1

    def _cache_loop(self) -> None:
        assert self.cache_manager is not None
        while not self._stop.is_set():
            if self._gate_allows():
                self.cache_manager.maintain()
            time.sleep(self.poll_interval_s)

    # -- context management ----------------------------------------------------------------

    def __enter__(self) -> "MaintenanceService":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


__all__ = ["MaintenanceService"]
