"""Per-run Bloom filters for point lookups (extension).

The paper's related work (section 9) notes that "bLSM uses bloom filters
to improve point lookup performance"; Umzi itself relies on the synopsis +
offset array.  Synopses prune by *range*, which helps nothing under random
ingest (every run spans the key space, Figure 11b).  A Bloom filter over
the exact key bytes prunes by *membership* and keeps working in exactly
that regime.

This module provides a compact, serializable Bloom filter keyed by a run's
entry key bytes.  It is opt-in (``UmziConfig.use_bloom_filters``) and
evaluated in ``benchmarks/bench_ablation_bloom.py``.
"""

from __future__ import annotations

import math
import struct
from typing import Iterable, List, Optional

from repro.core.encoding import UINT64_MAX, fnv1a64

_MAGIC = b"UMZB"


def _mix(h: int, i: int) -> int:
    """Double hashing: h1 + i*h2 over the two 32-bit halves of one hash."""
    h1 = h & 0xFFFFFFFF
    h2 = (h >> 32) | 1  # odd, so it cycles the whole table
    return (h1 + i * h2) & UINT64_MAX


class BloomFilter:
    """A standard k-hash Bloom filter over byte-string keys."""

    def __init__(self, num_bits: int, num_hashes: int) -> None:
        if num_bits < 8:
            num_bits = 8
        if not 1 <= num_hashes <= 16:
            raise ValueError("num_hashes must be within [1, 16]")
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        self._bits = bytearray((num_bits + 7) // 8)

    @classmethod
    def for_capacity(
        cls, expected_keys: int, false_positive_rate: float = 0.01
    ) -> "BloomFilter":
        """Size the filter for a target false-positive rate."""
        expected_keys = max(expected_keys, 1)
        if not 0.0 < false_positive_rate < 1.0:
            raise ValueError("false_positive_rate must be in (0, 1)")
        ln2 = math.log(2.0)
        num_bits = int(-expected_keys * math.log(false_positive_rate) / (ln2 ** 2))
        num_hashes = max(1, min(16, round((num_bits / expected_keys) * ln2)))
        return cls(num_bits=num_bits, num_hashes=num_hashes)

    # -- operations ---------------------------------------------------------------

    def add(self, key: bytes) -> None:
        h = fnv1a64(key)
        for i in range(self.num_hashes):
            bit = _mix(h, i) % self.num_bits
            self._bits[bit >> 3] |= 1 << (bit & 7)

    def add_all(self, keys: Iterable[bytes]) -> None:
        for key in keys:
            self.add(key)

    def might_contain(self, key: bytes) -> bool:
        h = fnv1a64(key)
        for i in range(self.num_hashes):
            bit = _mix(h, i) % self.num_bits
            if not self._bits[bit >> 3] & (1 << (bit & 7)):
                return False
        return True

    # -- serialization ----------------------------------------------------------------

    def to_bytes(self) -> bytes:
        return (
            _MAGIC
            + struct.pack(">IH", self.num_bits, self.num_hashes)
            + bytes(self._bits)
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "BloomFilter":
        if data[:4] != _MAGIC:
            raise ValueError("not a Bloom filter blob")
        num_bits, num_hashes = struct.unpack_from(">IH", data, 4)
        out = cls(num_bits=num_bits, num_hashes=num_hashes)
        payload = data[10:]
        if len(payload) != len(out._bits):
            raise ValueError("Bloom filter payload length mismatch")
        out._bits = bytearray(payload)
        return out

    @property
    def size_bytes(self) -> int:
        return len(self._bits)

    def fill_ratio(self) -> float:
        """Fraction of set bits (diagnostics; ~0.5 at design capacity)."""
        set_bits = sum(bin(b).count("1") for b in self._bits)
        return set_bits / self.num_bits


__all__ = ["BloomFilter"]
