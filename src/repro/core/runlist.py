"""Per-zone run lists with lock-free readers (paper section 5.1).

"Umzi relies on atomic pointers and chains runs in each zone together into
a linked list, where the header points to the most recent run.  All
maintenance operations are carefully designed so that each index
modification, i.e., a pointer modification, always results in a valid state
of the index."

The reproduction keeps the same discipline.  Nodes are mutable, but every
mutation the list ever performs is a *single reference assignment* (either
the head pointer or one node's ``next`` pointer), which is atomic for
readers under CPython's memory model -- the Python analogue of the paper's
atomic pointers.  Readers traverse without any lock and always observe a
valid (possibly momentarily stale or duplicate-containing) list; mutators
serialize among themselves with a short-duration lock, exactly as in the
paper ("these locks never block any index queries").

On top of the linked chain every mutation also **publishes an immutable
tuple snapshot** (one atomic reference assignment of ``_published``).
:meth:`RunList.snapshot` reads that tuple, so a query's run collection is
a true point-in-time version of the list: a half-applied ``replace`` can
never surface as "old span *and* new run" the way a mid-mutation traversal
of the chain could.  The tuple is what the run lifecycle
(:mod:`repro.core.epoch`) pins; ``on_publish`` lets the lifecycle stamp
each publication with a version sequence number -- and, in the default
version-set mode, hand the freshly composed immutable ``RunListVersion``
a refcount and a link to its predecessor, so queries pin it with a single
Ref instead of walking the runs.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from repro.core.run import IndexRun


class RunListError(RuntimeError):
    """Structural misuse of a run list (bad splice targets, etc.)."""


class _Node:
    """Mutable singly-linked node.  ``next`` writes are single assignments."""

    __slots__ = ("run", "next")

    def __init__(self, run: IndexRun, next_node: Optional["_Node"]) -> None:
        self.run = run
        self.next = next_node


class RunList:
    """A zone's chain of runs, newest first."""

    def __init__(
        self, name: str, on_publish: Optional[Callable[[], object]] = None
    ) -> None:
        self.name = name
        self._head: Optional[_Node] = None
        # Mutator-only lock; readers never touch it.
        self._mutation_lock = threading.Lock()
        # Immutable (version, runs) snapshot republished as ONE atomic
        # reference assignment at the end of every mutation; what
        # snapshot() and the epoch lifecycle read.
        self._published: Tuple[int, Tuple[IndexRun, ...]] = (0, ())
        # Publication hook (the run lifecycle's version/stats stamp).
        self.on_publish = on_publish

    # -- reader side (lock-free) ------------------------------------------------

    def iter_runs(self) -> Iterator[IndexRun]:
        """Lock-free traversal, newest to oldest.

        The head reference is read once; every subsequent hop reads one
        ``next`` reference.  Because every mutation is a single atomic
        reference assignment that preserves list validity, the traversal
        sees a consistent chain no matter how it interleaves with
        concurrent maintenance.
        """
        node = self._head
        while node is not None:
            yield node.run
            node = node.next

    def snapshot(self) -> List[IndexRun]:
        """Point-in-time version of the list (one atomic tuple read).

        Unlike a chain traversal -- which can interleave with a concurrent
        ``replace`` and observe a momentarily duplicate-containing view --
        the published tuple is immutable, so the snapshot is torn-free by
        construction.
        """
        return list(self._published[1])

    def published(self) -> Tuple[int, Tuple[IndexRun, ...]]:
        """The current ``(version, runs)`` publication (one atomic read)."""
        return self._published

    @property
    def version(self) -> int:
        """Monotonic count of publications this list has made."""
        return self._published[0]

    def head_run(self) -> Optional[IndexRun]:
        node = self._head
        return node.run if node is not None else None

    def __len__(self) -> int:
        return sum(1 for _ in self.iter_runs())

    def __contains__(self, run_id: str) -> bool:
        return any(run.run_id == run_id for run in self.iter_runs())

    # -- mutator side -----------------------------------------------------------

    def push_front(self, run: IndexRun) -> None:
        """Add the newest run (index build, paper section 5.2).

        "The new run must be set to point to the header before the header
        pointer is modified" -- same order here: the node is fully linked
        before the single head assignment publishes it.
        """
        with self._mutation_lock:
            node = _Node(run, self._head)
            self._head = node  # the one atomic publication
            self._publish_locked()

    def replace(self, old_run_ids: Sequence[str], new_run: IndexRun) -> None:
        """Replace a *contiguous* span of runs with one merged run (Fig. 4).

        Step 1: the new node's ``next`` is set to the successor of the last
        merged run (no reader can see the new node yet).  Step 2: a single
        assignment of the predecessor's ``next`` (or the head) swings
        traffic over.  Readers mid-span keep following the old chain, which
        still terminates correctly -- they may see old runs, never a broken
        list.
        """
        if not old_run_ids:
            raise RunListError("replace() needs at least one run to replace")
        wanted = list(old_run_ids)
        with self._mutation_lock:
            prev, first = self._find_span_start(wanted[0])
            # Walk the span verifying contiguity and order.
            node = first
            for expected in wanted:
                if node is None or node.run.run_id != expected:
                    raise RunListError(
                        f"runs {wanted} are not a contiguous span of list "
                        f"{self.name}"
                    )
                node = node.next
            successor = node
            new_node = _Node(new_run, successor)  # step 1 (private)
            if prev is None:
                self._head = new_node  # step 2 (atomic publication)
            else:
                prev.next = new_node  # step 2 (atomic publication)
            self._publish_locked()

    def remove(self, run_id: str) -> IndexRun:
        """Unlink one run (garbage collection after evolve, section 5.4).

        A single ``next`` (or head) reassignment; concurrent readers that
        already passed the predecessor simply finish traversing through the
        removed node, which still points into the live chain.
        """
        with self._mutation_lock:
            prev, node = self._find_span_start(run_id)
            if node is None:
                raise RunListError(f"run {run_id} not present in list {self.name}")
            if prev is None:
                self._head = node.next
            else:
                prev.next = node.next
            self._publish_locked()
            return node.run

    def remove_where(self, predicate: Callable[[IndexRun], bool]) -> List[IndexRun]:
        """Unlink every run matching ``predicate``; one atomic hop each."""
        removed: List[IndexRun] = []
        with self._mutation_lock:
            prev: Optional[_Node] = None
            node = self._head
            while node is not None:
                if predicate(node.run):
                    if prev is None:
                        self._head = node.next
                    else:
                        prev.next = node.next
                    removed.append(node.run)
                    node = node.next
                else:
                    prev = node
                    node = node.next
            if removed:
                self._publish_locked()
        return removed

    def clear(self) -> None:
        with self._mutation_lock:
            self._head = None
            self._publish_locked()

    def rebuild(self, runs_newest_first: Sequence[IndexRun]) -> None:
        """Recovery path: atomically install a whole new chain."""
        head: Optional[_Node] = None
        for run in reversed(list(runs_newest_first)):
            head = _Node(run, head)
        with self._mutation_lock:
            self._head = head
            self._publish_locked()

    # -- internals ---------------------------------------------------------------

    def _publish_locked(self) -> None:
        """Publish the post-mutation snapshot (one atomic assignment)."""
        version = self._published[0] + 1
        runs: List[IndexRun] = []
        node = self._head
        while node is not None:
            runs.append(node.run)
            node = node.next
        self._published = (version, tuple(runs))
        if self.on_publish is not None:
            self.on_publish()

    def _find_span_start(
        self, run_id: str
    ) -> "tuple[Optional[_Node], Optional[_Node]]":
        """Return ``(predecessor, node)`` for the run with ``run_id``."""
        prev: Optional[_Node] = None
        node = self._head
        while node is not None and node.run.run_id != run_id:
            prev = node
            node = node.next
        return prev, node

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ids = [run.run_id for run in self.iter_runs()]
        return f"RunList({self.name}: {' -> '.join(ids) or 'empty'})"


__all__ = ["RunList", "RunListError"]
