"""Order-preserving (memcmp-comparable) key encodings.

Paper section 4.2: "All ordering columns, i.e., the hash column, equality
columns, sort columns and beginTS, are stored in lexicographically
comparable formats, similar to LevelDB, so that keys can be compared by
simply using memory compare operations."

This module provides exactly that: every supported column type encodes to
``bytes`` such that ``encode(a) < encode(b)`` iff ``a < b`` under the
type's natural order.  ``beginTS`` is stored *descending* (section 4.2
sorts beginTS in descending order to put the newest version first), which
is achieved by encoding its bitwise complement.

Encodings
---------
* signed 64-bit int  -> 8 bytes big-endian with the sign bit flipped;
* float              -> 8 bytes of the IEEE-754 image, sign-adjusted so the
  byte order matches numeric order (standard trick used by key-value
  stores);
* str                -> UTF-8 with ``0x00`` escaped as ``0x00 0xFF`` and a
  ``0x00 0x00`` terminator, so variable-length strings compare correctly
  inside composite keys;
* bytes              -> same escape/terminator scheme as str.

The hash column uses 64-bit FNV-1a -- deterministic across processes
(unlike Python's builtin ``hash``), cheap, and well-spread in the high
bits, which is what the offset array consumes.
"""

from __future__ import annotations

import struct
from typing import Iterable, List, Sequence, Tuple, Union

KeyValue = Union[int, float, str, bytes]

INT64_MIN = -(1 << 63)
INT64_MAX = (1 << 63) - 1
UINT64_MAX = (1 << 64) - 1

_STRING_TERMINATOR = b"\x00\x00"
_STRING_ESCAPED_ZERO = b"\x00\xff"

_FNV64_OFFSET = 0xCBF29CE484222325
_FNV64_PRIME = 0x100000001B3


class EncodingError(ValueError):
    """Raised for values outside the encodable domain."""


# ---------------------------------------------------------------------------
# scalar encodings
# ---------------------------------------------------------------------------


def encode_int64(value: int) -> bytes:
    """Encode a signed 64-bit integer; big-endian with flipped sign bit."""
    if not INT64_MIN <= value <= INT64_MAX:
        raise EncodingError(f"integer {value} outside signed 64-bit range")
    return struct.pack(">Q", (value + (1 << 63)) & UINT64_MAX)


def decode_int64(data: bytes, offset: int = 0) -> Tuple[int, int]:
    """Decode an int64; returns ``(value, next_offset)``."""
    (raw,) = struct.unpack_from(">Q", data, offset)
    return raw - (1 << 63), offset + 8


def encode_uint64(value: int) -> bytes:
    """Encode an unsigned 64-bit integer (used for hashes and timestamps)."""
    if not 0 <= value <= UINT64_MAX:
        raise EncodingError(f"integer {value} outside unsigned 64-bit range")
    return struct.pack(">Q", value)


def decode_uint64(data: bytes, offset: int = 0) -> Tuple[int, int]:
    (value,) = struct.unpack_from(">Q", data, offset)
    return value, offset + 8


def encode_float64(value: float) -> bytes:
    """Encode a float so byte order equals numeric order.

    Positive floats: flip the sign bit.  Negative floats: flip all bits.
    NaN is rejected -- it has no place in an ordered index key.
    """
    if value != value:  # NaN
        raise EncodingError("NaN is not orderable and cannot be an index key")
    if value == 0.0:
        value = 0.0  # normalize -0.0: equal values must encode equally
    (raw,) = struct.unpack(">Q", struct.pack(">d", value))
    if raw & (1 << 63):
        raw ^= UINT64_MAX
    else:
        raw ^= 1 << 63
    return struct.pack(">Q", raw)


def decode_float64(data: bytes, offset: int = 0) -> Tuple[float, int]:
    (raw,) = struct.unpack_from(">Q", data, offset)
    if raw & (1 << 63):
        raw ^= 1 << 63
    else:
        raw ^= UINT64_MAX
    (value,) = struct.unpack(">d", struct.pack(">Q", raw))
    return value, offset + 8


def encode_bytes(value: bytes) -> bytes:
    """Escape-and-terminate encoding for variable-length byte strings."""
    return value.replace(b"\x00", _STRING_ESCAPED_ZERO) + _STRING_TERMINATOR


def decode_bytes(data: bytes, offset: int = 0) -> Tuple[bytes, int]:
    out = bytearray()
    i = offset
    n = len(data)
    while i < n:
        byte = data[i]
        if byte == 0x00:
            if i + 1 >= n:
                raise EncodingError("truncated escaped byte string")
            nxt = data[i + 1]
            if nxt == 0x00:
                return bytes(out), i + 2
            if nxt == 0xFF:
                out.append(0x00)
                i += 2
                continue
            raise EncodingError(f"invalid escape 0x00 0x{nxt:02x}")
        out.append(byte)
        i += 1
    raise EncodingError("unterminated byte string")


def encode_str(value: str) -> bytes:
    return encode_bytes(value.encode("utf-8"))


def decode_str(data: bytes, offset: int = 0) -> Tuple[str, int]:
    raw, nxt = decode_bytes(data, offset)
    return raw.decode("utf-8"), nxt


# ---------------------------------------------------------------------------
# descending timestamps
# ---------------------------------------------------------------------------


def encode_ts_desc(timestamp: int) -> bytes:
    """Encode ``beginTS`` so larger (newer) timestamps sort *first*."""
    if not 0 <= timestamp <= UINT64_MAX:
        raise EncodingError(f"timestamp {timestamp} outside unsigned 64-bit range")
    return struct.pack(">Q", UINT64_MAX - timestamp)


def decode_ts_desc(data: bytes, offset: int = 0) -> Tuple[int, int]:
    (raw,) = struct.unpack_from(">Q", data, offset)
    return UINT64_MAX - raw, offset + 8


# ---------------------------------------------------------------------------
# hashing
# ---------------------------------------------------------------------------


def fnv1a64(data: bytes) -> int:
    """64-bit FNV-1a -- the deterministic hash for equality columns."""
    value = _FNV64_OFFSET
    for byte in data:
        value ^= byte
        value = (value * _FNV64_PRIME) & UINT64_MAX
    return value


def _fmix64(value: int) -> int:
    """MurmurHash3's 64-bit avalanche finalizer.

    FNV-1a alone diffuses short inputs poorly into the *high* bits (all
    contiguous int64 keys share the same top byte), and the offset array
    consumes exactly those bits (paper section 4.2: "the most significant
    n bits of hash values").  The finalizer gives every bucket entropy.
    """
    value ^= value >> 33
    value = (value * 0xFF51AFD7ED558CCD) & UINT64_MAX
    value ^= value >> 33
    value = (value * 0xC4CEB9FE1A85EC53) & UINT64_MAX
    value ^= value >> 33
    return value


def hash_values(encoded_values: Iterable[bytes]) -> int:
    """Hash the concatenated encodings of the equality-column values."""
    return _fmix64(fnv1a64(b"".join(encoded_values)))


def high_bits(hash_value: int, nbits: int) -> int:
    """The most significant ``nbits`` of a 64-bit hash (offset-array bucket)."""
    if not 0 < nbits <= 64:
        raise EncodingError(f"nbits must be in (0, 64], got {nbits}")
    return hash_value >> (64 - nbits)


# ---------------------------------------------------------------------------
# composite keys
# ---------------------------------------------------------------------------


def encode_value(value: KeyValue) -> bytes:
    """Encode one scalar by its runtime type.

    Mixed types within one column are rejected at the
    :class:`~repro.core.definition.IndexDefinition` layer; this function is
    the low-level dispatch used once the type is known valid.
    """
    if isinstance(value, bool):
        # bool is an int subclass; keep it orderable but explicit.
        return encode_int64(int(value))
    if isinstance(value, int):
        return encode_int64(value)
    if isinstance(value, float):
        return encode_float64(value)
    if isinstance(value, str):
        return encode_str(value)
    if isinstance(value, bytes):
        return encode_bytes(value)
    raise EncodingError(f"unsupported key type {type(value).__name__}")


def encode_composite(values: Sequence[KeyValue]) -> bytes:
    """Concatenate encodings; composite order == tuple order."""
    return b"".join(encode_value(v) for v in values)


def prefix_successor(prefix: bytes) -> bytes:
    """Smallest byte string strictly greater than every string with ``prefix``.

    Used to build exclusive upper bounds for prefix scans.  Returns ``b""``
    sentinel (meaning "+infinity") if the prefix is all ``0xFF``.
    """
    out = bytearray(prefix)
    while out:
        if out[-1] != 0xFF:
            out[-1] += 1
            return bytes(out)
        out.pop()
    return b""


__all__ = [
    "EncodingError",
    "KeyValue",
    "decode_bytes",
    "decode_float64",
    "decode_int64",
    "decode_str",
    "decode_ts_desc",
    "decode_uint64",
    "encode_bytes",
    "encode_composite",
    "encode_float64",
    "encode_int64",
    "encode_str",
    "encode_ts_desc",
    "encode_uint64",
    "encode_value",
    "fnv1a64",
    "hash_values",
    "high_bits",
    "prefix_successor",
]
