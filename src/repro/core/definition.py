"""Index definitions (paper section 4.1).

An Umzi index is declared over *equality columns* (answering equality
predicates through the hash column + offset array), *sort columns*
(answering range predicates), and optional *included columns* (enabling
index-only plans).  Either of the first two groups may be empty:

* no equality columns  -> a pure range index (no hash column, no offset
  array);
* no sort columns      -> a pure hash index.

The three definitions used throughout the paper's evaluation are provided
as constructors: :func:`i1_definition`, :func:`i2_definition`,
:func:`i3_definition`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.core.encoding import (
    EncodingError,
    KeyValue,
    encode_value,
    hash_values,
)


class ColumnType(str, enum.Enum):
    """Supported key/include column types."""

    INT64 = "int64"
    FLOAT64 = "float64"
    STRING = "string"
    BYTES = "bytes"


_PYTHON_TYPES = {
    ColumnType.INT64: (int,),
    ColumnType.FLOAT64: (int, float),
    ColumnType.STRING: (str,),
    ColumnType.BYTES: (bytes,),
}


@dataclass(frozen=True)
class ColumnSpec:
    """A named, typed column participating in an index definition."""

    name: str
    ctype: ColumnType = ColumnType.INT64

    def validate(self, value: KeyValue) -> KeyValue:
        """Type-check (and normalize) one value for this column."""
        expected = _PYTHON_TYPES[self.ctype]
        if isinstance(value, bool) or not isinstance(value, expected):
            raise EncodingError(
                f"column {self.name!r} expects {self.ctype.value}, "
                f"got {type(value).__name__} ({value!r})"
            )
        if self.ctype is ColumnType.FLOAT64:
            return float(value)
        return value


class IndexDefinitionError(ValueError):
    """Invalid index definition (e.g. duplicate columns, no key columns)."""


@dataclass(frozen=True)
class IndexDefinition:
    """Declares the shape of one Umzi index.

    Parameters
    ----------
    equality_columns:
        Columns answered by equality predicates; their values are hashed
        into the hash column.  May be empty (pure range index).
    sort_columns:
        Columns answered by range predicates; ordered after the equality
        columns in every run.  May be empty (pure hash index).
    included_columns:
        Non-key columns stored in the index to enable index-only plans.
    hash_bits:
        Size of the offset array as ``2**hash_bits`` buckets over the most
        significant bits of the hash column (paper section 4.2).  Ignored
        when there are no equality columns.
    """

    equality_columns: Tuple[ColumnSpec, ...] = ()
    sort_columns: Tuple[ColumnSpec, ...] = ()
    included_columns: Tuple[ColumnSpec, ...] = ()
    hash_bits: int = 8

    def __post_init__(self) -> None:
        if not self.equality_columns and not self.sort_columns:
            raise IndexDefinitionError(
                "an index needs at least one equality or sort column"
            )
        names = [c.name for c in self.all_columns]
        if len(set(names)) != len(names):
            raise IndexDefinitionError(f"duplicate column names in {names}")
        if self.has_hash_column and not 1 <= self.hash_bits <= 24:
            raise IndexDefinitionError(
                f"hash_bits must be within [1, 24], got {self.hash_bits}"
            )

    # -- shape accessors -----------------------------------------------------

    @property
    def has_hash_column(self) -> bool:
        """Whether runs carry a hash column (i.e. equality columns exist)."""
        return bool(self.equality_columns)

    @property
    def key_columns(self) -> Tuple[ColumnSpec, ...]:
        return self.equality_columns + self.sort_columns

    @property
    def all_columns(self) -> Tuple[ColumnSpec, ...]:
        return self.key_columns + self.included_columns

    @property
    def offset_array_size(self) -> int:
        return (1 << self.hash_bits) if self.has_hash_column else 0

    def column_index(self) -> Mapping[str, int]:
        """Map column name -> position among key columns (synopsis layout)."""
        return {spec.name: i for i, spec in enumerate(self.key_columns)}

    # -- value validation / encoding ------------------------------------------

    def validate_key(
        self,
        equality_values: Sequence[KeyValue],
        sort_values: Sequence[KeyValue],
    ) -> Tuple[Tuple[KeyValue, ...], Tuple[KeyValue, ...]]:
        """Type-check a full key; returns normalized value tuples."""
        if len(equality_values) != len(self.equality_columns):
            raise EncodingError(
                f"expected {len(self.equality_columns)} equality values, "
                f"got {len(equality_values)}"
            )
        if len(sort_values) != len(self.sort_columns):
            raise EncodingError(
                f"expected {len(self.sort_columns)} sort values, "
                f"got {len(sort_values)}"
            )
        eq = tuple(
            spec.validate(v) for spec, v in zip(self.equality_columns, equality_values)
        )
        st = tuple(
            spec.validate(v) for spec, v in zip(self.sort_columns, sort_values)
        )
        return eq, st

    def validate_includes(
        self, include_values: Sequence[KeyValue]
    ) -> Tuple[KeyValue, ...]:
        if len(include_values) != len(self.included_columns):
            raise EncodingError(
                f"expected {len(self.included_columns)} included values, "
                f"got {len(include_values)}"
            )
        return tuple(
            spec.validate(v)
            for spec, v in zip(self.included_columns, include_values)
        )

    def hash_of(self, equality_values: Sequence[KeyValue]) -> int:
        """The 64-bit hash column value for a set of equality values."""
        if not self.has_hash_column:
            return 0
        return hash_values(encode_value(v) for v in equality_values)

    def describe(self) -> str:
        """One-line human-readable summary (used in stats/CLI output)."""
        parts: List[str] = []
        if self.equality_columns:
            parts.append("eq=" + ",".join(c.name for c in self.equality_columns))
        if self.sort_columns:
            parts.append("sort=" + ",".join(c.name for c in self.sort_columns))
        if self.included_columns:
            parts.append("incl=" + ",".join(c.name for c in self.included_columns))
        return "IndexDefinition(" + " ".join(parts) + ")"


# ---------------------------------------------------------------------------
# The paper's three evaluation definitions (section 8.1), all-int64 columns.
# ---------------------------------------------------------------------------


def i1_definition(hash_bits: int = 8) -> IndexDefinition:
    """I1: one equality column, one sort column, one included column."""
    return IndexDefinition(
        equality_columns=(ColumnSpec("eq0"),),
        sort_columns=(ColumnSpec("sort0"),),
        included_columns=(ColumnSpec("incl0"),),
        hash_bits=hash_bits,
    )


def i2_definition(hash_bits: int = 8) -> IndexDefinition:
    """I2: two equality columns, one included column."""
    return IndexDefinition(
        equality_columns=(ColumnSpec("eq0"), ColumnSpec("eq1")),
        included_columns=(ColumnSpec("incl0"),),
        hash_bits=hash_bits,
    )


def i3_definition(hash_bits: int = 8) -> IndexDefinition:
    """I3: one equality column, one included column."""
    return IndexDefinition(
        equality_columns=(ColumnSpec("eq0"),),
        included_columns=(ColumnSpec("incl0"),),
        hash_bits=hash_bits,
    )


__all__ = [
    "ColumnSpec",
    "ColumnType",
    "IndexDefinition",
    "IndexDefinitionError",
    "i1_definition",
    "i2_definition",
    "i3_definition",
]
