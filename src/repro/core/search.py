"""Single-run search (paper section 7.1.1).

A run is a sorted table, so search is: narrow the ordinal range with the
offset array (when the index has a hash column), binary-search the
concatenated lower bound, then iterate forward until the concatenated upper
bound, filtering on ``beginTS <= queryTS`` and keeping only the newest
visible version of each key (entries are sorted by key then descending
beginTS, so the first visible entry per key is the answer).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from repro.core.encoding import high_bits
from repro.core.entry import IndexEntry
from repro.core.run import IndexRun

# Sentinel: an empty upper bound means "+infinity" (scan to end of run).
UNBOUNDED = b""


def _first_geq(run: IndexRun, target: bytes, lo: int, hi: int) -> int:
    """First ordinal in [lo, hi) whose sort key is >= ``target``.

    Entries with ``key_bytes == target`` have sort keys that *extend*
    ``target`` (the descending-beginTS suffix), and extensions of a prefix
    compare greater, so this also finds the first entry of an exactly
    matching key.
    """
    definition = run.definition
    while lo < hi:
        mid = (lo + hi) // 2
        if run.entry_at(mid).sort_key(definition) < target:
            lo = mid + 1
        else:
            hi = mid
    return lo


def narrow_with_offset_array(
    run: IndexRun, hash_value: int
) -> Tuple[int, int]:
    """Initial ordinal range for a hash bucket (paper Figure 2b).

    ``offset[b]`` is the first ordinal whose hash high-bits are >= b;
    the bucket's entries live in ``[offset[b], offset[b+1])`` with the run's
    entry count as the final fence.
    """
    offsets = run.header.offset_array
    if not offsets:
        return 0, run.entry_count
    bucket = high_bits(hash_value, run.definition.hash_bits)
    lo = offsets[bucket]
    hi = offsets[bucket + 1] if bucket + 1 < len(offsets) else run.entry_count
    return lo, hi


def search_run(
    run: IndexRun,
    lower_key: bytes,
    upper_exclusive: bytes,
    query_ts: int,
    hash_value: Optional[int] = None,
    use_offset_array: bool = True,
) -> Iterator[IndexEntry]:
    """Yield the newest visible version of each matching key in one run.

    Parameters
    ----------
    lower_key:
        Inclusive lower bound over ``key_bytes`` (hash | eq | sort prefix).
    upper_exclusive:
        Exclusive upper bound, or :data:`UNBOUNDED` for "scan to run end".
    query_ts:
        Snapshot timestamp; versions with ``beginTS > query_ts`` are
        invisible.
    hash_value:
        When provided (equality query), the offset array narrows the
        initial binary-search range.
    use_offset_array:
        Ablation hook -- benchmarks disable it to measure its benefit.
    """
    if run.entry_count == 0:
        return
    if hash_value is not None and use_offset_array:
        lo, hi = narrow_with_offset_array(run, hash_value)
    else:
        lo, hi = 0, run.entry_count
    start = _first_geq(run, lower_key, lo, hi)
    definition = run.definition
    previous_key: Optional[bytes] = None
    emitted_previous = False
    for entry in run.iter_entries(start):
        key = entry.key_bytes(definition)
        if upper_exclusive != UNBOUNDED and key >= upper_exclusive:
            break
        if key != previous_key:
            previous_key = key
            emitted_previous = False
        if emitted_previous:
            continue  # an older version of a key we already answered
        if entry.begin_ts > query_ts:
            continue  # newer than the snapshot; keep looking within the key
        emitted_previous = True
        yield entry


def lookup_key_in_run(
    run: IndexRun,
    key: bytes,
    query_ts: int,
    hash_value: Optional[int] = None,
    use_offset_array: bool = True,
) -> Optional[IndexEntry]:
    """Point lookup: the newest visible version of one exact key, if any.

    Equivalent to a range scan whose lower and upper sort-column bounds
    coincide (paper section 7.2).
    """
    from repro.core.encoding import prefix_successor

    upper = prefix_successor(key)
    for entry in search_run(
        run, key, upper, query_ts, hash_value, use_offset_array
    ):
        return entry
    return None


def batch_lookup_in_run(
    run: IndexRun,
    sorted_keys: Sequence[Tuple[bytes, int]],
    query_ts: int,
    use_offset_array: bool = True,
) -> List[Optional[IndexEntry]]:
    """Look up a pre-sorted key batch with one sequential pass over the run.

    Paper section 7.2: "The sorted input keys are searched against each run
    sequentially ... This guarantees that each run is accessed sequentially
    and only once."  Keys must be sorted ascending by their encoded bytes;
    each element is ``(key_bytes, hash_value)``.
    """
    from repro.core.encoding import prefix_successor

    results: List[Optional[IndexEntry]] = [None] * len(sorted_keys)
    if run.entry_count == 0:
        return results
    floor = 0  # monotone cursor: keys are sorted, so never search backwards
    for i, (key, hash_value) in enumerate(sorted_keys):
        if use_offset_array and run.header.offset_array:
            lo, hi = narrow_with_offset_array(run, hash_value)
            lo = max(lo, floor)
        else:
            lo, hi = floor, run.entry_count
        if lo >= hi:
            # The monotone cursor moved past this bucket -- fall back to a
            # plain bounded search from the cursor.
            lo, hi = floor, run.entry_count
        start = _first_geq(run, key, lo, hi)
        floor = start
        upper = prefix_successor(key)
        definition = run.definition
        for entry in run.iter_entries(start):
            entry_key = entry.key_bytes(definition)
            if upper != b"" and entry_key >= upper:
                break
            if entry.begin_ts > query_ts:
                continue
            results[i] = entry
            break
    return results


__all__ = [
    "UNBOUNDED",
    "batch_lookup_in_run",
    "lookup_key_in_run",
    "narrow_with_offset_array",
    "search_run",
]
