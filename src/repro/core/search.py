"""Single-run search (paper section 7.1.1).

A run is a sorted table, so search is: narrow the ordinal range with the
offset array (when the index has a hash column) and the header's block
index, binary-search the concatenated lower bound, then iterate forward
until the concatenated upper bound, filtering on ``beginTS <= queryTS`` and
keeping only the newest visible version of each key (entries are sorted by
key then descending beginTS, so the first visible entry per key is the
answer).

The hot path is **zero decode**: binary-search probes and the forward scan
compare raw sort-key slices served straight out of v2 data-block payloads
(section 4.2: keys "can be compared by simply using memory compare
operations"), and an :class:`IndexEntry` is materialized only for entries
actually emitted.  ``use_raw_keys=False`` switches back to the legacy
decode-and-re-encode comparison -- an ablation hook used by
``benchmarks/bench_ablation_zero_decode.py`` to quantify the win.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from repro.core.encoding import high_bits, prefix_successor
from repro.core.entry import (
    IndexEntry,
    SORT_KEY_TS_BYTES,
    begin_ts_of_sort_key,
)
from repro.core.run import IndexRun

# Sentinel: an empty upper bound means "+infinity" (scan to end of run).
UNBOUNDED = b""


def _first_geq(
    run: IndexRun, target: bytes, lo: int, hi: int, use_raw_keys: bool = True
) -> int:
    """First ordinal in [lo, hi) whose sort key is >= ``target``.

    Entries with ``key_bytes == target`` have sort keys that *extend*
    ``target`` (the descending-beginTS suffix), and extensions of a prefix
    compare greater, so this also finds the first entry of an exactly
    matching key.
    """
    if use_raw_keys:
        while lo < hi:
            mid = (lo + hi) // 2
            if run.sort_key_at(mid) < target:
                lo = mid + 1
            else:
                hi = mid
        return lo
    # Legacy decode path: materialize the probed entry and re-encode its
    # sort key (kept for the zero-decode ablation).
    definition = run.definition
    while lo < hi:
        mid = (lo + hi) // 2
        if run.entry_at(mid).sort_key(definition) < target:
            lo = mid + 1
        else:
            hi = mid
    return lo


def narrow_with_offset_array(
    run: IndexRun, hash_value: int
) -> Tuple[int, int]:
    """Initial ordinal range for a hash bucket (paper Figure 2b).

    ``offset[b]`` is the first ordinal whose hash high-bits are >= b;
    the bucket's entries live in ``[offset[b], offset[b+1])`` with the run's
    entry count as the final fence.
    """
    offsets = run.header.offset_array
    if not offsets:
        return 0, run.entry_count
    bucket = high_bits(hash_value, run.definition.hash_bits)
    lo = offsets[bucket]
    hi = offsets[bucket + 1] if bucket + 1 < len(offsets) else run.entry_count
    return lo, hi


def _probe_fences(
    run: IndexRun,
    target: bytes,
    lo: int,
    hi: int,
) -> Tuple[int, int]:
    """Intersect a candidate range with the header block index.

    ``key_position_bounds`` brackets where the run-global
    ``first_geq(target)`` can fall using only header metadata, so
    binary-search probes never fetch data blocks outside the target's key
    range.  The clamped intersection is chosen so that a binary search over
    the returned ``[L, H)`` lands on exactly the same ordinal a search over
    the original ``[lo, hi)`` would -- including when the block bracket and
    the candidate range are disjoint (the result then degenerates to the
    nearer original fence, never to a position before the global
    ``first_geq``, which would leak out-of-range entries into the scan).
    """
    block_lo, block_hi = run.key_position_bounds(target)
    narrowed_lo = max(lo, min(block_lo, hi))
    narrowed_hi = min(hi, max(block_hi, lo))
    return narrowed_lo, narrowed_hi


def search_run(
    run: IndexRun,
    lower_key: bytes,
    upper_exclusive: bytes,
    query_ts: int,
    hash_value: Optional[int] = None,
    use_offset_array: bool = True,
    use_raw_keys: bool = True,
) -> Iterator[IndexEntry]:
    """Yield the newest visible version of each matching key in one run.

    Parameters
    ----------
    lower_key:
        Inclusive lower bound over ``key_bytes`` (hash | eq | sort prefix).
    upper_exclusive:
        Exclusive upper bound, or :data:`UNBOUNDED` for "scan to run end".
    query_ts:
        Snapshot timestamp; versions with ``beginTS > query_ts`` are
        invisible.
    hash_value:
        When provided (equality query), the offset array narrows the
        initial binary-search range.
    use_offset_array:
        Ablation hook -- benchmarks disable it to measure its benefit.
    use_raw_keys:
        Ablation hook -- ``False`` restores the legacy decode-per-probe
        comparison path.
    """
    for _sort_key, entry in search_run_raw(
        run,
        lower_key,
        upper_exclusive,
        query_ts,
        hash_value,
        use_offset_array,
        use_raw_keys,
    ):
        yield entry


def search_run_raw(
    run: IndexRun,
    lower_key: bytes,
    upper_exclusive: bytes,
    query_ts: int,
    hash_value: Optional[int] = None,
    use_offset_array: bool = True,
    use_raw_keys: bool = True,
) -> Iterator[Tuple[bytes, IndexEntry]]:
    """Like :func:`search_run` but yields ``(sort_key, entry)`` pairs.

    The raw sort key rides along so multi-run reconciliation
    (:mod:`repro.core.query`) can order and deduplicate streams without
    re-encoding keys from decoded entries.
    """
    if run.entry_count == 0:
        return
    if hash_value is not None and use_offset_array:
        lo, hi = narrow_with_offset_array(run, hash_value)
    else:
        lo, hi = 0, run.entry_count
    lo, hi = _probe_fences(run, lower_key, lo, hi)
    start = _first_geq(run, lower_key, lo, hi, use_raw_keys)

    if not use_raw_keys:
        # Legacy ablation path: decode every scanned entry.
        definition = run.definition
        previous_key: Optional[bytes] = None
        emitted_previous = False
        for entry in run.iter_entries(start):
            key = entry.key_bytes(definition)
            if upper_exclusive != UNBOUNDED and key >= upper_exclusive:
                break
            if key != previous_key:
                previous_key = key
                emitted_previous = False
            if emitted_previous:
                continue  # an older version of a key we already answered
            if entry.begin_ts > query_ts:
                continue  # newer than the snapshot; keep looking within the key
            emitted_previous = True
            yield entry.sort_key(definition), entry
        return

    previous_key = None
    emitted_previous = False
    for view, i in run.iter_positions(start):
        sort_key = view.sort_key_at(i)
        key = sort_key[:-SORT_KEY_TS_BYTES]
        if upper_exclusive != UNBOUNDED and key >= upper_exclusive:
            break
        if key != previous_key:
            previous_key = key
            emitted_previous = False
        if emitted_previous:
            continue  # an older version of a key we already answered
        if begin_ts_of_sort_key(sort_key) > query_ts:
            continue  # newer than the snapshot; keep looking within the key
        emitted_previous = True
        yield sort_key, view.entry(i)


def lookup_key_in_run(
    run: IndexRun,
    key: bytes,
    query_ts: int,
    hash_value: Optional[int] = None,
    use_offset_array: bool = True,
    use_raw_keys: bool = True,
    use_bloom: bool = True,
) -> Optional[IndexEntry]:
    """Point lookup: the newest visible version of one exact key, if any.

    Equivalent to a range scan whose lower and upper sort-column bounds
    coincide (paper section 7.2).  The run's Bloom filter (when present)
    is consulted *before* any block fetch, so definite misses cost zero
    data-block I/O.
    """
    if use_bloom and not run.may_contain_key(key):
        return None
    upper = prefix_successor(key)
    for entry in search_run(
        run, key, upper, query_ts, hash_value, use_offset_array, use_raw_keys
    ):
        return entry
    return None


def batch_lookup_in_run(
    run: IndexRun,
    sorted_keys: Sequence[Tuple[bytes, int]],
    query_ts: int,
    use_offset_array: bool = True,
    use_raw_keys: bool = True,
    use_bloom: bool = True,
) -> List[Optional[IndexEntry]]:
    """Look up a pre-sorted key batch with one sequential pass over the run.

    Paper section 7.2: "The sorted input keys are searched against each run
    sequentially ... This guarantees that each run is accessed sequentially
    and only once."  Keys must be sorted ascending by their encoded bytes;
    each element is ``(key_bytes, hash_value)``.

    Each key consults the run's Bloom filter (when present) before any
    block is fetched.  The monotone cursor narrows but never widens the
    offset-array bucket: keys are sorted, so when the cursor has moved past
    a key's entire bucket the key cannot exist in this run and is skipped
    outright -- the bucket's upper fence is kept rather than falling back
    to a full-run search.
    """
    results: List[Optional[IndexEntry]] = [None] * len(sorted_keys)
    if run.entry_count == 0:
        return results
    floor = 0  # monotone cursor: keys are sorted, so never search backwards
    for i, (key, hash_value) in enumerate(sorted_keys):
        if use_bloom and not run.may_contain_key(key):
            continue  # definite miss: zero probes, zero block fetches
        if use_offset_array and run.header.offset_array:
            lo, hi = narrow_with_offset_array(run, hash_value)
            if floor > lo:
                lo = floor
        else:
            lo, hi = floor, run.entry_count
        if lo >= hi:
            # Matching entries can only live inside the key's bucket, and
            # the monotone cursor has already moved past it (or the bucket
            # is empty): the key is absent from this run.  Keeping the
            # bucket's upper fence here -- instead of widening to a
            # full-run search -- is what makes the sequential pass stay
            # sequential.
            continue
        start = _first_geq(
            run, key, *_probe_fences(run, key, lo, hi), use_raw_keys
        )
        floor = start
        if not use_raw_keys:
            # Legacy ablation path: decode every scanned entry.
            upper = prefix_successor(key)
            definition = run.definition
            for entry in run.iter_entries(start):
                entry_key = entry.key_bytes(definition)
                if upper != b"" and entry_key >= upper:
                    break
                if entry.begin_ts > query_ts:
                    continue
                results[i] = entry
                break
            continue
        for view, in_block in run.iter_positions(start):
            sort_key = view.sort_key_at(in_block)
            if sort_key[:-SORT_KEY_TS_BYTES] != key:
                break  # fully-bound keys match exactly or not at all
            if begin_ts_of_sort_key(sort_key) > query_ts:
                continue
            results[i] = view.entry(in_block)
            break
    return results


__all__ = [
    "UNBOUNDED",
    "batch_lookup_in_run",
    "lookup_key_in_run",
    "narrow_with_offset_array",
    "search_run",
    "search_run_raw",
]
