"""The hybrid merge policy and merge execution (paper section 5.3).

Policy, parameterized by ``K`` and ``T`` (see :class:`LevelConfig`):

* each level keeps at most one **active** run; the rest are inactive;
* incoming runs from level L-1 are always merged *into the active run* of
  level L (i.e. the active run and the K incoming runs are replaced by one
  new run, which becomes the new active run of L);
* the active run of L is **full** once its size reaches T times the size
  of an inactive run at L-1; a full active run is marked inactive and the
  next merge starts a fresh active run;
* when level L accumulates K inactive runs, they are merged together with
  the active run of level L+1.

Level 0 is special: grooms push completed runs, so every level-0 run is
inactive from birth.

Merges stay **within a zone** (section 4.3); crossing zones is the evolve
operation's job.  Non-persisted-level bookkeeping follows section 6.1:
persisted inputs consumed by a non-persisted output are retained in shared
storage and recorded as *ancestors*; they are physically deleted only when
a descendant run reaches a persisted level again.
"""

from __future__ import annotations

import heapq
import threading
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.builder import RunBuilder
from repro.core.epoch import (
    delete_namespace_action,
    delete_run_action,
    drop_cache_action,
)
from repro.core.entry import (
    IndexEntry,
    Zone,
    begin_ts_of_sort_key,
    user_key_of_sort_key,
)
from repro.core.ids import RunIdAllocator
from repro.core.levels import LevelConfig
from repro.core.run import IndexRun, Synopsis
from repro.core.runlist import RunList
from repro.faults.crash import crash_point
from repro.storage.hierarchy import StorageHierarchy
from repro.storage.metrics import ReadIntent


@dataclass
class MergeResult:
    """What one merge step did (for logging, tests, and benchmarks)."""

    zone: Zone
    source_level: int
    target_level: int
    input_run_ids: Tuple[str, ...]
    output_run_id: str
    output_entries: int
    output_marked_inactive: bool
    deleted_run_ids: Tuple[str, ...]


def merge_entry_blob_streams(
    definition,
    runs_newest_first: Sequence[IndexRun],
    retention_ts: Optional[int] = None,
    intent: ReadIntent = ReadIntent.MAINTENANCE,
) -> Iterable[Tuple[bytes, bytes]]:
    """Zero-decode K-way merge: yields ``(sort_key, entry_blob)`` pairs.

    The heap merges ``(sort_key_slice, recency, entry_blob)`` triples read
    straight off the inputs' data-block payloads -- no
    :class:`IndexEntry` is ever constructed.  Within one zone, two entries
    with identical sort keys (same key, same ``beginTS``) describe the
    same record version; the copy from the newest run wins.  Distinct
    versions of a key (different ``beginTS``) are all kept -- Umzi is a
    multi-version index and must keep supporting time travel after merges.

    ``retention_ts`` enables MVCC garbage collection (the general LSM
    "reclaim disk space occupied by obsolete entries"): the versions the
    system must keep are those visible at some permitted snapshot
    >= retention_ts, i.e. every version with ``beginTS > retention_ts``
    plus, per key, the newest version with ``beginTS <= retention_ts``.
    Anything older is unreachable and dropped during the merge.  Both the
    user key and ``beginTS`` needed for that decision are raw slices of
    the sort key (beginTS is its fixed 8-byte suffix).

    Every caller is background machinery (merges, streaming evolve, the
    classic-LSM baseline), so input blocks are read with
    ``ReadIntent.MAINTENANCE`` by default: a one-pass stream over
    potentially purged runs must not flood the SSD cache with blocks no
    query will touch again.
    """
    def stream(run: IndexRun, recency: int):
        # recency is bound per stream so duplicate sort keys across runs
        # tie-break on run recency instead of comparing raw blobs.
        for sort_key, blob in run.iter_raw(intent=intent):
            yield sort_key, recency, blob

    streams = [
        stream(run, recency) for recency, run in enumerate(runs_newest_first)
    ]
    previous_sort_key: Optional[bytes] = None
    previous_user_key: Optional[bytes] = None
    retained_at_horizon = False
    for sort_key, _recency, blob in heapq.merge(*streams):
        if sort_key == previous_sort_key:
            continue
        previous_sort_key = sort_key
        if retention_ts is not None:
            user_key = user_key_of_sort_key(sort_key)
            if user_key != previous_user_key:
                previous_user_key = user_key
                retained_at_horizon = False
            if begin_ts_of_sort_key(sort_key) <= retention_ts:
                # Versions arrive newest-first per key: the first one at or
                # below the horizon is the version visible at retention_ts;
                # older ones for this key are unreachable.
                if retained_at_horizon:
                    continue
                retained_at_horizon = True
        yield sort_key, blob


def merge_entry_streams(
    definition,
    runs_newest_first: Sequence[IndexRun],
    retention_ts: Optional[int] = None,
    intent: ReadIntent = ReadIntent.MAINTENANCE,
) -> Iterable[IndexEntry]:
    """Decoded-entry view of :func:`merge_entry_blob_streams`.

    Compatibility shim for callers that want :class:`IndexEntry` objects
    (baselines, tests); the Umzi merge path itself stays on blobs via
    :meth:`RunBuilder.build_from_blobs`.
    """
    for _sort_key, blob in merge_entry_blob_streams(
        definition, runs_newest_first, retention_ts, intent=intent
    ):
        entry, _ = IndexEntry.from_bytes(definition, blob)
        yield entry


class MergeController:
    """Drives within-zone merges for one Umzi index instance.

    The controller owns the per-level *active run* bookkeeping.  Runs are
    immutable, so "active" is controller state (a run id per level), not a
    flag on the run.
    """

    def __init__(
        self,
        config: LevelConfig,
        builder: RunBuilder,
        hierarchy: StorageHierarchy,
        allocator: RunIdAllocator,
        run_lists: Dict[Zone, RunList],
        write_through: Optional[Callable[[int], bool]] = None,
        ancestor_protector: Optional[Callable[[str], bool]] = None,
        retention_provider: Optional[Callable[[], Optional[int]]] = None,
        reclaimer: Optional[Callable[[str, Callable[[], None]], None]] = None,
        structure_lock: Optional[threading.Lock] = None,
    ) -> None:
        self.config = config
        self.builder = builder
        self.hierarchy = hierarchy
        self.allocator = allocator
        self.run_lists = run_lists
        # write_through(level) -> should a new persisted run at `level` also
        # be written into the SSD cache?  Supplied by the cache manager.
        self._write_through = write_through if write_through is not None else lambda _: True
        # ancestor_protector(run_id) -> True if some live run still lists
        # run_id as an ancestor (so its shared-storage copy must survive).
        self._ancestor_protector = (
            ancestor_protector if ancestor_protector is not None else lambda _: False
        )
        # retention_provider() -> the MVCC retention horizon, or None to
        # keep every version forever (the default).
        self._retention_provider = (
            retention_provider if retention_provider is not None else lambda: None
        )
        # reclaimer(run_id, free) routes physical frees of unlinked runs
        # through the run lifecycle (protected modes defer them while queries
        # pin the run); the default executes immediately (legacy).
        self._reclaim = (
            reclaimer if reclaimer is not None else lambda _run_id, free: free()
        )
        self._active: Dict[int, Optional[str]] = {}
        self._lock = threading.Lock()
        # Maintenance *structure* mutex, shared with the evolve controller
        # of the same index: a merge's victim selection, input streaming and
        # span splice must not interleave with an evolve's garbage
        # collection of the same list (the evolve could unlink a victim
        # mid-merge, breaking the contiguous span -- or delete blocks the
        # merge is still streaming).  Queries never take this lock.
        self._structure_lock = (
            structure_lock if structure_lock is not None else threading.Lock()
        )

    # -- policy inspection --------------------------------------------------------

    def active_run_id(self, level: int) -> Optional[str]:
        with self._lock:
            return self._active.get(level)

    def runs_at_level(self, zone: Zone, level: int) -> List[IndexRun]:
        return [r for r in self.run_lists[zone].iter_runs() if r.level == level]

    def inactive_runs_at_level(self, zone: Zone, level: int) -> List[IndexRun]:
        active = self.active_run_id(level)
        return [r for r in self.runs_at_level(zone, level) if r.run_id != active]

    def level_needing_merge(self, zone: Zone) -> Optional[int]:
        """Lowest level of ``zone`` with K inactive runs, excluding the
        zone's last level (there is nowhere within the zone to merge into)."""
        levels = self.config.levels_of(zone)
        for level in levels[:-1]:
            if len(self.inactive_runs_at_level(zone, level)) >= self.config.max_runs_per_level:
                return level
        return None

    def needs_merge(self, zone: Zone) -> bool:
        return self.level_needing_merge(zone) is not None

    # -- execution -------------------------------------------------------------------

    def merge_step(self, zone: Zone) -> Optional[MergeResult]:
        """Perform one merge in ``zone`` if the policy calls for one.

        Policy check and execution run under the structure mutex as one
        step: a concurrent evolve may garbage-collect the level's runs
        between an unlocked check and the merge, which is how the daemons
        used to race (victim span no longer contiguous).
        """
        with self._structure_lock:
            level = self.level_needing_merge(zone)
            if level is None:
                return None
            return self._merge_level_locked(zone, level)

    def merge_until_stable(self, zone: Zone, max_steps: int = 64) -> List[MergeResult]:
        """Run merge steps until the policy is satisfied (tests/benches)."""
        results: List[MergeResult] = []
        for _ in range(max_steps):
            result = self.merge_step(zone)
            if result is None:
                break
            results.append(result)
        return results

    def merge_level(self, zone: Zone, level: int) -> MergeResult:
        """Merge level ``level``'s K oldest inactive runs into ``level+1``."""
        with self._structure_lock:
            return self._merge_level_locked(zone, level)

    def _merge_level_locked(self, zone: Zone, level: int) -> MergeResult:
        config = self.config
        target_level = level + 1
        if target_level > config.last_level_of(zone):
            raise ValueError(
                f"level {level} is the last level of zone {zone.name}; "
                "nothing to merge into"
            )
        run_list = self.run_lists[zone]

        inactive = self.inactive_runs_at_level(zone, level)
        if not inactive:
            raise ValueError(f"no inactive runs at level {level} to merge")
        # List order is newest-first; take the K *oldest* (tail of the span).
        take = min(config.max_runs_per_level, len(inactive))
        victims = inactive[-take:]

        target_active_id = self.active_run_id(target_level)
        target_active: Optional[IndexRun] = None
        if target_active_id is not None:
            for run in self.runs_at_level(zone, target_level):
                if run.run_id == target_active_id:
                    target_active = run
                    break

        # Inputs newest-first: the level-L victims, then the target active.
        inputs: List[IndexRun] = list(victims)
        if target_active is not None:
            inputs.append(target_active)

        # Zero-decode merge: entry blobs stream from the input blocks into
        # the new run verbatim; the output synopsis is the union of the
        # input synopses (sound over-approximation -- merged entries are a
        # subset of the inputs', and over-approximation only costs pruning).
        # Input blocks are maintenance reads: each is consumed exactly once
        # and must not displace query-hot blocks from the SSD cache.
        merged_blobs = merge_entry_blob_streams(
            self.builder.definition,
            inputs,
            self._retention_provider(),
            intent=ReadIntent.MAINTENANCE,
        )
        new_run_id = self.allocator.allocate(zone)
        persisted = config.is_persisted(target_level)
        ancestors = self._ancestors_for(inputs, persisted)
        new_run = self.builder.build_from_blobs(
            run_id=new_run_id,
            blob_pairs=merged_blobs,
            synopsis=Synopsis.union([r.header.synopsis for r in inputs]),
            zone=zone,
            level=target_level,
            min_groomed_id=min(r.min_groomed_id for r in inputs),
            max_groomed_id=max(r.max_groomed_id for r in inputs),
            persisted=persisted,
            write_through_ssd=self._write_through(target_level),
            spill_to_ssd=config.spill_non_persisted_to_ssd,
            ancestor_run_ids=ancestors,
        )

        # Splice: the victims and the old target-active form one contiguous
        # span (victims are the oldest at L, the target active is the newest
        # at L+1, and the list is globally recency-ordered).
        crash_point("merge.pre_splice")
        span = [r.run_id for r in inputs]
        run_list.replace(span, new_run)
        crash_point("merge.post_splice")

        deleted = self._garbage_collect_inputs(inputs, new_run)

        # Active-run bookkeeping: the merged run is the new active of the
        # target level, and is immediately marked inactive if full.
        reference = max(r.entry_count for r in victims)
        full = new_run.entry_count >= config.size_ratio * max(reference, 1)
        with self._lock:
            self._active[target_level] = None if full else new_run.run_id

        return MergeResult(
            zone=zone,
            source_level=level,
            target_level=target_level,
            input_run_ids=tuple(r.run_id for r in inputs),
            output_run_id=new_run.run_id,
            output_entries=new_run.entry_count,
            output_marked_inactive=full,
            deleted_run_ids=tuple(deleted),
        )

    # -- non-persisted-level bookkeeping ---------------------------------------------

    def _ancestors_for(
        self, inputs: Sequence[IndexRun], output_persisted: bool
    ) -> Tuple[str, ...]:
        """Ancestor set for the merged run (section 6.1).

        A non-persisted output must remember every *persisted* run whose
        data it now carries (directly, or transitively through non-persisted
        inputs), because those shared-storage copies are the only durable
        form of that data until the output's descendants persist again.
        """
        if output_persisted:
            return ()
        ancestors: Set[str] = set()
        for run in inputs:
            if run.header.persisted:
                ancestors.add(run.run_id)
            else:
                ancestors.update(run.header.ancestor_run_ids)
        return tuple(sorted(ancestors))

    def _garbage_collect_inputs(
        self, inputs: Sequence[IndexRun], new_run: IndexRun
    ) -> List[str]:
        """Schedule physical deletion of what a merge made obsolete.

        Every free goes through the reclaimer: the inputs were atomically
        spliced out of the run list (no new query can reach them), but a
        query pinned on an older snapshot may still be streaming their
        blocks -- the protected lifecycle modes park these frees until no
        pinned version covers the run.  The returned ids are the runs scheduled for deletion.
        """
        deleted: List[str] = []
        output_persisted = new_run.header.persisted
        for run in inputs:
            if run.header.persisted:
                if output_persisted:
                    # Normal LSM GC: data now lives in the durable new run.
                    self._reclaim(
                        run.run_id, delete_run_action(self.hierarchy, run)
                    )
                    deleted.append(run.run_id)
                else:
                    # Ancestor retention: keep the shared copy, free cache.
                    self._reclaim(
                        run.run_id, drop_cache_action(self.hierarchy, run)
                    )
            else:
                # Non-persisted input: local blocks are garbage now ...
                self._reclaim(
                    run.run_id, delete_run_action(self.hierarchy, run)
                )
                deleted.append(run.run_id)
                if output_persisted:
                    # ... and its recorded ancestors are finally safe to drop
                    # (unless some other live run still needs them).
                    for ancestor_id in run.header.ancestor_run_ids:
                        if not self._ancestor_protector(ancestor_id):
                            self._reclaim(
                                ancestor_id,
                                delete_namespace_action(
                                    self.hierarchy, ancestor_id
                                ),
                            )
                            deleted.append(ancestor_id)
        return deleted

    # -- recovery support -----------------------------------------------------------

    def reset_active_tracking(self) -> None:
        """Forget active-run state (after recovery all runs are inactive)."""
        with self._lock:
            self._active.clear()


__all__ = [
    "MergeController",
    "MergeResult",
    "merge_entry_blob_streams",
    "merge_entry_streams",
]
