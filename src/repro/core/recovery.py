"""Crash recovery (paper section 5.5).

An indexer process can crash and lose every local data structure (and, with
non-persisted levels, entire runs).  Recovery rebuilds the run lists from
what shared storage holds:

1. read the newest metadata checkpoint (IndexedPSN + watermark);
2. enumerate run headers in shared storage; delete *incomplete* runs (a
   crash mid-build leaves a header whose data blocks are missing, or
   orphaned data blocks without a header) and *corrupt* runs (a data-block
   payload whose CRC32 no longer matches the header's block index -- torn
   writes, bit rot);
3. per zone, sort runs by descending end groomed block id and add them one
   by one; "if multiple runs have overlapping groomed block IDs, the one
   with largest range is selected, while the rest are simply deleted since
   they have already been merged";
4. groomed runs wholly below the watermark are already covered by the
   post-groomed zone and are dropped too.

Payload validation is zero-decode on the clean path: header v3 records a
per-block checksum, so re-validating a run is one CRC pass over raw bytes
per block.  Runs written by older builders (no checksum) fall back to
decoding every entry -- the wholesale-decode cost this format revision
removes.
"""

from __future__ import annotations

import struct

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.definition import IndexDefinition
from repro.core.entry import Zone
from repro.core.journal import Checkpoint, MetadataJournal
from repro.core.run import (
    HEADER_ORDINAL,
    DataBlockView,
    IndexRun,
    RunHeader,
    block_checksum,
)
from repro.storage.block import BlockId
from repro.storage.hierarchy import StorageHierarchy
from repro.storage.metrics import ReadIntent


@dataclass
class RecoveredState:
    """Everything recovery reconstructed."""

    runs_by_zone: Dict[Zone, List[IndexRun]]
    checkpoint: Optional[Checkpoint]
    deleted_run_ids: List[str] = field(default_factory=list)
    incomplete_run_ids: List[str] = field(default_factory=list)
    # Subset of incomplete_run_ids dropped because a data-block payload
    # failed validation (checksum mismatch / undecodable), as opposed to
    # being absent outright.
    corrupt_run_ids: List[str] = field(default_factory=list)
    # When the newest valid checkpoint promised post-groomed coverage the
    # surviving runs cannot support (the covering run was torn mid-write
    # and dropped), recovery falls back to an older supported checkpoint;
    # ``clamped_from`` records the over-claiming one that was rejected.
    clamped_from: Optional[Checkpoint] = None


def _is_complete(hierarchy: StorageHierarchy, header: RunHeader) -> bool:
    """All data blocks the header promises must exist in shared storage."""
    for ordinal in range(1, header.num_data_blocks + 1):
        if not hierarchy.shared.contains(BlockId(header.run_id, ordinal)):
            return False
    return True


def _payloads_valid(
    definition: IndexDefinition, hierarchy: StorageHierarchy, header: RunHeader
) -> bool:
    """Re-validate every data block of one run against its header.

    Checksummed blocks (header v3) are verified by one CRC pass over the
    raw payload -- zero entry decodes.  Blocks without a checksum (runs
    written by older builders) fall back to fully decoding each entry,
    charged to ``maintenance_entry_decodes``.  Either way a mismatch means
    the run is dropped; its data is covered by other runs or rebuilt from
    groomed blocks upstream.
    """
    stats = hierarchy.stats.decode
    for ordinal in range(1, header.num_data_blocks + 1):
        meta = header.block_meta[ordinal - 1]
        # Recovery validates the durable copy (never a possibly-stale local
        # one) and is maintenance: the scan must not flood the SSD cache
        # that queries will need the moment the index is back.
        block = hierarchy.read_shared(
            BlockId(header.run_id, ordinal), intent=ReadIntent.MAINTENANCE
        )
        if block is None or len(block.payload) != meta.size_bytes:
            return False
        if meta.checksum is not None:
            stats.checksum_validations += 1
            if block_checksum(block.payload) != meta.checksum:
                return False
            continue
        # Decode fallback: structural validation only (pre-checksum runs
        # cannot detect a flipped byte inside a value payload).
        try:
            view = DataBlockView(definition, block.payload, stats=stats)
            if view.count != meta.entry_count:
                return False
            view.all_entries()
            stats.maintenance_entry_decodes += view.count
        except (ValueError, KeyError, IndexError, OverflowError,
                UnicodeDecodeError, struct.error):
            return False
    return True


def _covers(outer: RunHeader, inner: RunHeader) -> bool:
    return (
        outer.min_groomed_id <= inner.min_groomed_id
        and inner.max_groomed_id <= outer.max_groomed_id
    )


def _coverage_chains(headers: List[RunHeader]) -> List[Tuple[int, int]]:
    """Disjoint maximal gid intervals covered by these runs (merging
    overlapping and adjacent ranges)."""
    intervals = sorted(
        (h.min_groomed_id, h.max_groomed_id) for h in headers
    )
    chains: List[Tuple[int, int]] = []
    for lo, hi in intervals:
        if chains and lo <= chains[-1][1] + 1:
            chains[-1] = (chains[-1][0], max(chains[-1][1], hi))
        else:
            chains.append((lo, hi))
    return chains


def _supported_checkpoint(
    checkpoints: List[Checkpoint],
    post_groomed_kept: List[RunHeader],
    anchor: Optional[int],
) -> Tuple[Optional[Checkpoint], Optional[Checkpoint]]:
    """Newest checkpoint whose watermark the surviving runs can support.

    A checkpoint's watermark asserts "every groomed id up to here is
    covered by the post-groomed run list" -- and recovery *acts* on that
    assertion by deleting groomed runs at or under it.  If the covering
    post-groomed run was torn mid-write (a silent fault: the writer got
    no error) the newest checkpoint over-claims, and honouring it would
    turn recoverable data loss into silent wrong answers.  So recovery
    takes the newest checkpoint ``c`` (checkpoints arrive newest-first)
    such that the kept post-groomed runs cover ``[anchor, c.watermark]``
    contiguously, where ``anchor`` is the smallest groomed id any
    readable run header mentions -- the earliest surviving evidence of
    data.  Returns ``(effective, clamped_from)``.
    """
    if not checkpoints:
        return None, None
    chains = _coverage_chains(post_groomed_kept)
    for checkpoint in checkpoints:
        watermark = checkpoint.max_covered_groomed_id
        if watermark < 0:
            return checkpoint, _clamp_marker(checkpoints, checkpoint)
        if anchor is None:
            # A watermark >= 0 claims coverage, but no run header
            # survives at all: nothing supports any claim.
            continue
        if any(lo <= anchor and hi >= watermark for lo, hi in chains):
            return checkpoint, _clamp_marker(checkpoints, checkpoint)
    return None, checkpoints[0]


def _clamp_marker(
    checkpoints: List[Checkpoint], effective: Checkpoint
) -> Optional[Checkpoint]:
    newest = checkpoints[0]
    return newest if newest != effective else None


def recover_index_state(
    definition: IndexDefinition,
    hierarchy: StorageHierarchy,
    run_prefix: str,
    journal: Optional[MetadataJournal] = None,
) -> RecoveredState:
    """Rebuild run lists for one index instance from shared storage.

    ``run_prefix`` scopes the scan to this index's namespaces (run ids are
    ``{prefix}-{zone}-{seq}``).
    """
    checkpoints = journal.valid_checkpoints() if journal is not None else []

    headers: List[RunHeader] = []
    incomplete: List[str] = []
    corrupt: List[str] = []
    for namespace in hierarchy.shared.namespaces():
        if not namespace.startswith(run_prefix):
            continue
        header_block = hierarchy.read_shared(
            BlockId(namespace, HEADER_ORDINAL), intent=ReadIntent.MAINTENANCE
        )
        if header_block is None:
            # Orphaned data blocks without a header: a crash before the
            # header write can't happen (header goes first), but a partial
            # delete can leave them; clean up.
            hierarchy.delete_namespace(namespace)
            incomplete.append(namespace)
            continue
        try:
            header = RunHeader.from_bytes(definition, header_block.payload)
        except (ValueError, KeyError, IndexError, struct.error):
            # Corrupted header (torn write, bit rot): treat like an
            # incomplete run -- its data is covered by other runs or will
            # be rebuilt from groomed blocks upstream.
            hierarchy.delete_namespace(namespace)
            incomplete.append(namespace)
            continue
        if not _is_complete(hierarchy, header):
            hierarchy.delete_namespace(namespace)
            incomplete.append(namespace)
            continue
        if not _payloads_valid(definition, hierarchy, header):
            hierarchy.delete_namespace(namespace)
            incomplete.append(namespace)
            corrupt.append(namespace)
            continue
        headers.append(header)

    deleted: List[str] = []
    kept_by_zone: Dict[Zone, List[RunHeader]] = {}
    for zone in (Zone.GROOMED, Zone.POST_GROOMED):
        zone_headers = [h for h in headers if h.zone is zone]
        # Largest coverage first: descending end id, then widest range.
        # Entry count breaks exact-coverage ties so a replayed evolve's
        # empty (or thinner) duplicate never shadows the populated run.
        zone_headers.sort(
            key=lambda h: (
                h.max_groomed_id,
                h.max_groomed_id - h.min_groomed_id,
                h.entry_count,
            ),
            reverse=True,
        )
        kept: List[RunHeader] = []
        for header in zone_headers:
            if any(_covers(other, header) for other in kept):
                # Already merged into a bigger run.
                hierarchy.delete_namespace(header.run_id)
                deleted.append(header.run_id)
                continue
            kept.append(header)
        kept_by_zone[zone] = kept

    # The watermark is an *assertion* about post-groomed coverage, so it
    # is validated against the runs that actually survived before being
    # acted on (torn post-groomed persists make the newest checkpoint
    # over-claim; see _supported_checkpoint).
    anchor = min((h.min_groomed_id for h in headers), default=None)
    checkpoint, clamped_from = _supported_checkpoint(
        checkpoints, kept_by_zone[Zone.POST_GROOMED], anchor
    )
    watermark = checkpoint.max_covered_groomed_id if checkpoint else -1

    groomed_kept: List[RunHeader] = []
    for header in kept_by_zone[Zone.GROOMED]:
        if header.max_groomed_id <= watermark:
            # Fully covered by the post-groomed zone already.
            hierarchy.delete_namespace(header.run_id)
            deleted.append(header.run_id)
            continue
        groomed_kept.append(header)
    kept_by_zone[Zone.GROOMED] = groomed_kept

    runs_by_zone: Dict[Zone, List[IndexRun]] = {
        zone: [IndexRun(definition, header, hierarchy) for header in kept]
        for zone, kept in kept_by_zone.items()
    }

    return RecoveredState(
        runs_by_zone=runs_by_zone,
        checkpoint=checkpoint,
        deleted_run_ids=deleted,
        incomplete_run_ids=incomplete,
        corrupt_run_ids=corrupt,
        clamped_from=clamped_from,
    )


__all__ = ["RecoveredState", "recover_index_state"]
