"""The index evolve operation (paper section 5.4).

When the post-groomer moves groomed data blocks into the post-groomed zone,
the index must follow: entries pointing at deprecated groomed blocks are
replaced by entries pointing at the new post-groomed blocks.  Evolve is
decomposed into three sub-operations, each a single atomic modification,
so concurrent lock-free queries always see a valid index:

1. **Build** a post-groomed run for the new blocks and atomically add it to
   the post-groomed run list (the run still records the *groomed* block-id
   range it corresponds to).
2. **Advance the watermark**: atomically raise the maximum groomed block id
   covered by the post-groomed run list.  Groomed runs whose end id is no
   larger than the watermark are now automatically ignored by queries.
3. **Garbage-collect** the obsolete groomed runs from the groomed list.

Between steps the index may contain duplicates (the same record version in
both zones); section 5.4 shows these are harmless because reconciliation
keeps only the newest version per key at query time.  Evolve operations are
applied in strict PSN order.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.builder import RunBuilder
from repro.core.epoch import delete_run_action, drop_cache_action
from repro.core.entry import (
    IndexEntry,
    RID,
    Zone,
    begin_ts_of_sort_key,
    replace_rid_in_blob,
)
from repro.core.ids import RunIdAllocator
from repro.core.journal import Checkpoint, MetadataJournal
from repro.core.levels import LevelConfig
from repro.core.merge import merge_entry_blob_streams
from repro.core.run import IndexRun, Synopsis
from repro.core.runlist import RunList
from repro.faults.crash import crash_point
from repro.storage.hierarchy import StorageHierarchy
from repro.storage.metrics import ReadIntent


class EvolveError(RuntimeError):
    """Out-of-order PSN or structurally invalid evolve request."""


class Watermark:
    """The maximum groomed block id covered by the post-groomed run list.

    Reads and writes are single int-reference assignments -- atomic for
    lock-free readers, mirroring the paper's atomic update of this value.
    """

    def __init__(self, initial: int = -1) -> None:
        self._value = initial

    @property
    def value(self) -> int:
        return self._value

    def advance(self, new_value: int) -> None:
        if new_value < self._value:
            raise EvolveError(
                f"watermark may only advance ({self._value} -> {new_value})"
            )
        self._value = new_value  # atomic publication


@dataclass
class EvolveResult:
    """What one evolve operation did.

    ``spliced_blobs``/``skipped_blobs`` are only populated by the
    streaming path: spliced entries migrated as raw byte splices, skipped
    entries fell outside the evolved PSN's coverage (already evolved by an
    earlier operation, or groomed after this one was published).
    """

    psn: int
    new_run_id: str
    new_run_entries: int
    watermark_before: int
    watermark_after: int
    collected_run_ids: Tuple[str, ...]
    spliced_blobs: int = 0
    skipped_blobs: int = 0


class EvolveController:
    """Executes evolve operations in PSN order for one index instance.

    Evolve is maintenance: the streaming path reads every covered groomed
    run end to end exactly once, so those block fetches carry
    ``ReadIntent.MAINTENANCE`` -- under the default maintenance-aware cache
    policy they are served from whatever tier holds them but are never
    promoted into the SSD cache and never evict query-hot blocks of a
    purged level (``maintenance_read_mode="legacy"`` on the hierarchy
    restores the old promote-everything behaviour for ablations).
    """

    def __init__(
        self,
        config: LevelConfig,
        builder: RunBuilder,
        hierarchy: StorageHierarchy,
        allocator: RunIdAllocator,
        run_lists: Dict[Zone, RunList],
        watermark: Watermark,
        journal: Optional[MetadataJournal] = None,
        write_through: Optional[Callable[[int], bool]] = None,
        ancestor_protector: Optional[Callable[[str], bool]] = None,
        reclaimer: Optional[Callable[[str, Callable[[], None]], None]] = None,
        structure_lock: Optional[threading.Lock] = None,
    ) -> None:
        self.config = config
        self.builder = builder
        self.hierarchy = hierarchy
        self.allocator = allocator
        self.run_lists = run_lists
        self.watermark = watermark
        self.journal = journal
        self._write_through = write_through if write_through is not None else lambda _: True
        self._ancestor_protector = (
            ancestor_protector if ancestor_protector is not None else lambda _: False
        )
        # reclaimer(run_id, free) routes physical frees of unlinked runs
        # through the run lifecycle (protected modes defer them while queries
        # pin the run); the default executes immediately (legacy).
        self._reclaim = (
            reclaimer if reclaimer is not None else lambda _run_id, free: free()
        )
        self.indexed_psn = 0  # PSNs start at 1; 0 means "nothing evolved yet"
        # Serializes evolves among themselves AND against merges when the
        # index supplies its shared maintenance structure mutex (an evolve's
        # step 3 unlinks groomed runs a concurrent merge may have selected
        # as victims).  Queries never take this lock.
        self._lock = (
            structure_lock if structure_lock is not None else threading.Lock()
        )

    # -- the full operation ------------------------------------------------------------

    def evolve(
        self,
        psn: int,
        entries: Iterable[IndexEntry],
        min_groomed_id: int,
        max_groomed_id: int,
    ) -> EvolveResult:
        """Run all three sub-operations for one post-groom operation.

        ``entries`` are index entries over the *post-groomed* blocks (new
        RIDs); ``[min_groomed_id, max_groomed_id]`` is the groomed block-id
        range the post-groom consumed.
        """
        with self._lock:
            self._check_psn(psn)
            new_run = self.step1_build_run(entries, min_groomed_id, max_groomed_id)
            crash_point("evolve.post_publish")
            before = self.watermark.value
            self.step2_advance_watermark(max_groomed_id)
            crash_point("evolve.pre_gc")
            collected = self.step3_collect_obsolete()
            self.indexed_psn = psn
            crash_point("evolve.pre_checkpoint")
            self._checkpoint()
            return EvolveResult(
                psn=psn,
                new_run_id=new_run.run_id,
                new_run_entries=new_run.entry_count,
                watermark_before=before,
                watermark_after=self.watermark.value,
                collected_run_ids=tuple(collected),
            )

    def evolve_streaming(
        self,
        psn: int,
        new_rid_of: Callable[[int], Optional[RID]],
        min_groomed_id: int,
        max_groomed_id: int,
    ) -> EvolveResult:
        """Zero-decode evolve: splice new RIDs into raw groomed entry blobs.

        Instead of materializing an :class:`IndexEntry` per migrated record
        (the legacy ``evolve`` path), this streams ``(sort_key, blob)``
        pairs straight off the covered groomed runs' data blocks.  A
        record's key columns and ``beginTS`` do not change when it moves to
        the post-groomed zone -- only its RID does -- so the migration is a
        13-byte splice over the blob's fixed-width RID suffix; include
        columns are forwarded verbatim and the stream stays in sort order.

        ``new_rid_of(begin_ts)`` maps a version's ``beginTS`` (read as a
        raw sort-key suffix slice) to its post-groomed RID, or ``None`` for
        entries outside this operation's coverage (already evolved, or
        groomed after it was published) -- those are skipped, and partial
        coverage reconciles at query time exactly like section 5.4's
        duplicates.  ``beginTS`` values must uniquely identify record
        versions (the groomer's ``cycle | order`` composition guarantees
        this).  The output synopsis is the union of the inputs' synopses --
        sound because the evolved entries are a key-identical subset.
        """
        with self._lock:
            self._check_psn(psn)
            sources = [
                run
                for run in self.run_lists[Zone.GROOMED].snapshot()
                if run.min_groomed_id <= max_groomed_id
                and run.max_groomed_id >= min_groomed_id
            ]
            decode_stats = self.hierarchy.stats.decode
            counts = {"spliced": 0, "skipped": 0}

            def spliced_blobs():
                # Maintenance intent: the one-pass stream over the covered
                # groomed runs (possibly purged levels) must not thrash the
                # SSD cache that concurrent queries depend on.
                for sort_key, blob in merge_entry_blob_streams(
                    self.builder.definition,
                    sources,
                    intent=ReadIntent.MAINTENANCE,
                ):
                    new_rid = new_rid_of(begin_ts_of_sort_key(sort_key))
                    if new_rid is None:
                        counts["skipped"] += 1
                        continue
                    counts["spliced"] += 1
                    decode_stats.evolve_blob_splices += 1
                    yield sort_key, replace_rid_in_blob(blob, new_rid)

            if sources:
                synopsis = Synopsis.union([r.header.synopsis for r in sources])
            else:
                synopsis = Synopsis(
                    ranges=tuple(
                        [None] * len(self.builder.definition.key_columns)
                    )
                )
            new_run = self.step1_build_run_from_blobs(
                spliced_blobs(), synopsis, min_groomed_id, max_groomed_id
            )
            crash_point("evolve.post_publish")
            before = self.watermark.value
            self.step2_advance_watermark(max_groomed_id)
            crash_point("evolve.pre_gc")
            collected = self.step3_collect_obsolete()
            self.indexed_psn = psn
            crash_point("evolve.pre_checkpoint")
            self._checkpoint()
            return EvolveResult(
                psn=psn,
                new_run_id=new_run.run_id,
                new_run_entries=new_run.entry_count,
                watermark_before=before,
                watermark_after=self.watermark.value,
                collected_run_ids=tuple(collected),
                spliced_blobs=counts["spliced"],
                skipped_blobs=counts["skipped"],
            )

    def _check_psn(self, psn: int) -> None:
        if psn != self.indexed_psn + 1:
            raise EvolveError(
                f"evolve operations must be applied in PSN order: "
                f"expected {self.indexed_psn + 1}, got {psn}"
            )

    # -- the three atomic sub-operations (public for failure injection) -----------------

    def step1_build_run(
        self,
        entries: Iterable[IndexEntry],
        min_groomed_id: int,
        max_groomed_id: int,
    ) -> IndexRun:
        """Sub-operation 1: build the post-groomed run and publish it."""
        level = self.config.first_post_groomed_level
        run = self.builder.build(
            run_id=self.allocator.allocate(Zone.POST_GROOMED),
            entries=entries,
            zone=Zone.POST_GROOMED,
            level=level,
            min_groomed_id=min_groomed_id,
            max_groomed_id=max_groomed_id,
            persisted=True,  # post-groomed runs are always durable
            write_through_ssd=self._write_through(level),
        )
        crash_point("evolve.pre_publish")
        self.run_lists[Zone.POST_GROOMED].push_front(run)  # atomic
        return run

    def step1_build_run_from_blobs(
        self,
        blob_pairs: Iterable[Tuple[bytes, bytes]],
        synopsis: Synopsis,
        min_groomed_id: int,
        max_groomed_id: int,
    ) -> IndexRun:
        """Sub-operation 1 on the streaming path: build from raw blobs."""
        level = self.config.first_post_groomed_level
        run = self.builder.build_from_blobs(
            run_id=self.allocator.allocate(Zone.POST_GROOMED),
            blob_pairs=blob_pairs,
            synopsis=synopsis,
            zone=Zone.POST_GROOMED,
            level=level,
            min_groomed_id=min_groomed_id,
            max_groomed_id=max_groomed_id,
            persisted=True,  # post-groomed runs are always durable
            write_through_ssd=self._write_through(level),
        )
        crash_point("evolve.pre_publish")
        self.run_lists[Zone.POST_GROOMED].push_front(run)  # atomic
        return run

    def step2_advance_watermark(self, max_groomed_id: int) -> None:
        """Sub-operation 2: raise the covered-groomed-id watermark."""
        self.watermark.advance(max(self.watermark.value, max_groomed_id))

    def step3_collect_obsolete(self) -> List[str]:
        """Sub-operation 3: GC groomed runs fully under the watermark.

        A groomed run may be *partially* covered when post-groom boundaries
        do not align with run boundaries; such runs stay, and the resulting
        physical duplicates are reconciled away at query time (section 5.4).

        Physical frees go through the reclaimer: the runs were atomically
        unlinked by ``remove_where`` (no *new* query can see them), but a
        query that pinned its snapshot before this evolve may still be
        reading their blocks -- under the protected lifecycle modes the
        free is deferred until no pinned version covers the run.  The returned ids are the runs
        *scheduled* for deletion (immediately executed when unpinned).
        """
        watermark_value = self.watermark.value
        groomed = self.run_lists[Zone.GROOMED]
        removed = groomed.remove_where(
            lambda run: run.max_groomed_id <= watermark_value
        )
        collected: List[str] = []
        for run in removed:
            if self._ancestor_protector(run.run_id):
                # Some live non-persisted run still derives from this one;
                # keep the shared copy, just free the local cache.
                self._reclaim(run.run_id, drop_cache_action(self.hierarchy, run))
                continue
            self._reclaim(run.run_id, delete_run_action(self.hierarchy, run))
            collected.append(run.run_id)
        return collected

    # -- durability -----------------------------------------------------------------------

    def _checkpoint(self) -> None:
        if self.journal is not None:
            self.journal.append(
                Checkpoint(
                    indexed_psn=self.indexed_psn,
                    max_covered_groomed_id=self.watermark.value,
                )
            )

    def restore(self, checkpoint: Checkpoint) -> None:
        """Recovery: reinstall persisted PSN/watermark state."""
        with self._lock:
            self.indexed_psn = checkpoint.indexed_psn
            if checkpoint.max_covered_groomed_id > self.watermark.value:
                self.watermark.advance(checkpoint.max_covered_groomed_id)


__all__ = ["EvolveController", "EvolveError", "EvolveResult", "Watermark"]
