"""Level/zone configuration (paper sections 4.3, 5.3, 6.1).

Levels are numbered globally: ``0 .. groomed_levels-1`` form the groomed
zone, the next ``post_groomed_levels`` form the post-groomed zone (the
paper's Figure 3 uses levels 0-5 groomed, 6-9 post-groomed).  The merge
policy is the hybrid of section 5.3, parameterized by ``K`` (max runs per
level) and ``T`` (size ratio between adjacent levels).

Certain *lower groomed levels* may be configured non-persisted (section
6.1): their runs live only in local memory (optionally spilled to SSD) and
never hit shared storage.  Level 0 **must** be persisted -- the paper
requires it so recovery never has to rebuild runs from groomed data blocks
-- and this module enforces that invariant at construction time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Tuple

from repro.core.entry import Zone


class LevelConfigError(ValueError):
    """Invalid level configuration."""


@dataclass(frozen=True)
class LevelConfig:
    """Static shape of the multi-run structure.

    Parameters
    ----------
    groomed_levels:
        Number of levels assigned to the groomed zone (>= 1).
    post_groomed_levels:
        Number of levels assigned to the post-groomed zone (>= 1).
    max_runs_per_level:
        ``K`` -- when a level accumulates K inactive runs they are merged
        together with the next level's active run.
    size_ratio:
        ``T`` -- an active run at level L is full (becomes inactive) once it
        is T times larger than an inactive run at level L-1.
    non_persisted_levels:
        Groomed levels whose runs skip shared storage.  May not include
        level 0 and may not include post-groomed levels (evolve output must
        be durable -- groomed blocks get deleted afterwards).
    spill_non_persisted_to_ssd:
        Whether non-persisted runs also spill to the SSD tier.
    """

    groomed_levels: int = 4
    post_groomed_levels: int = 3
    max_runs_per_level: int = 4
    size_ratio: int = 4
    non_persisted_levels: FrozenSet[int] = frozenset()
    spill_non_persisted_to_ssd: bool = False

    def __post_init__(self) -> None:
        if self.groomed_levels < 1:
            raise LevelConfigError("need at least one groomed level")
        if self.post_groomed_levels < 1:
            raise LevelConfigError("need at least one post-groomed level")
        if self.max_runs_per_level < 1:
            raise LevelConfigError("max_runs_per_level (K) must be >= 1")
        if self.size_ratio < 2:
            raise LevelConfigError("size_ratio (T) must be >= 2")
        if 0 in self.non_persisted_levels:
            raise LevelConfigError(
                "level 0 must be persisted (paper section 6.1: recovery must "
                "never rebuild runs from groomed data blocks)"
            )
        for level in self.non_persisted_levels:
            if not 0 <= level < self.groomed_levels:
                raise LevelConfigError(
                    f"non-persisted level {level} is not a groomed level; "
                    "post-groomed runs must be durable because groomed "
                    "blocks are deleted after post-grooming"
                )

    # -- zone geometry -----------------------------------------------------------

    @property
    def total_levels(self) -> int:
        return self.groomed_levels + self.post_groomed_levels

    @property
    def first_post_groomed_level(self) -> int:
        return self.groomed_levels

    def zone_of(self, level: int) -> Zone:
        if not 0 <= level < self.total_levels:
            raise LevelConfigError(f"level {level} outside 0..{self.total_levels - 1}")
        return Zone.GROOMED if level < self.groomed_levels else Zone.POST_GROOMED

    def levels_of(self, zone: Zone) -> Tuple[int, ...]:
        if zone is Zone.GROOMED:
            return tuple(range(self.groomed_levels))
        if zone is Zone.POST_GROOMED:
            return tuple(range(self.groomed_levels, self.total_levels))
        raise LevelConfigError(f"zone {zone} has no index levels")

    def last_level_of(self, zone: Zone) -> int:
        return self.levels_of(zone)[-1]

    def is_persisted(self, level: int) -> bool:
        return level not in self.non_persisted_levels

    def next_persisted_level_at_or_above(self, level: int) -> int:
        """First persisted level >= ``level`` (always exists: the last
        groomed level is persisted or the search crosses into post-groomed,
        which is always persisted)."""
        candidate = level
        while candidate < self.total_levels and not self.is_persisted(candidate):
            candidate += 1
        return candidate


__all__ = ["LevelConfig", "LevelConfigError"]
