"""Epoch-pinned run lifecycle: safe reclamation under live queries.

The paper runs grooming, post-grooming, evolution and merging *concurrently*
with lock-free queries over one multi-zone index.  Unlinking a run from a
run list is an atomic pointer publication (``runlist.py``), so readers never
see a torn list -- but unlinking is only half the story.  The other half is
**reclamation**: once a merge or evolve has replaced a span of runs, their
data blocks are freed from shared storage and every local tier.  A query
that snapshotted the lists a microsecond earlier still holds handles to
those runs and will fault (``BlockNotFoundError``) when it reaches them.

This module closes that race with the classic epoch-based-reclamation
design LSM engines use (the LevelDB/RocksDB version-set lineage):

* a query **pins** an immutable :class:`RunListVersion` for its whole
  lifetime (entering an epoch);
* maintenance publishes new versions atomically and **retires** unlinked
  runs into a deferred-reclamation list instead of freeing them inline;
* retired runs are **reclaimed** -- cache blocks released, decoded-view
  caches invalidated, shared-storage namespaces deleted -- only once no
  live pin references them.

The pin ledger is a per-run refcount (exact, strictly stronger than epoch
granularity: a run is reclaimable the moment its last reader exits, not
when a whole epoch drains).  Publication order makes the check sound: a
run is always unlinked from its list *before* it is retired, and pinning
snapshots the published lists under the lifecycle mutex, so a pin either
registered the run before the retire check (deferral) or can no longer
see it at all.

``mode="legacy"`` preserves the pre-epoch behaviour as the ablation
baseline: retirement reclaims immediately, and an (unprotected) in-flight
query counter records how often that freed storage under a live query
(``EpochStats.reclaimed_while_pinned`` -- the hazard rate the benchmark
``benchmarks/bench_concurrent_throughput.py`` quantifies).
"""

from __future__ import annotations

import gc
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.run import IndexRun
from repro.storage.metrics import EpochStats

RUN_LIFECYCLE_MODES = ("epoch", "legacy")

# Cyclic-GC detection for finalizer-safe releases.  The collector can run
# at any allocation -- including one made while the current thread holds a
# non-reentrant lock anywhere in the storage stack (tier mutexes, the
# IOStats ledger, the lifecycle mutex itself).  A pin release executed
# from a GC finalizer must therefore never acquire locks or run reclaim
# actions inline; while the flag is set, releases park on the lifecycle's
# pending list instead (GIL-atomic append; a list resize during GC cannot
# re-enter the collector).  Refcount-driven finalization (non-cyclic) runs
# at the decref site in executor/user code, where no storage lock is held.
_gc_active = threading.local()


def _note_gc(phase: str, _info: dict) -> None:
    _gc_active.flag = phase == "start"


gc.callbacks.append(_note_gc)


def _in_gc_finalizer() -> bool:
    """Is the cyclic garbage collector running on this thread right now?"""
    return getattr(_gc_active, "flag", False)


@dataclass(frozen=True)
class RunListVersion:
    """One immutable, query-visible snapshot of an index's run lists.

    ``groomed`` holds only the *visible* groomed runs (the watermark filter
    of section 5.4 already applied -- the filter is part of the atomic
    collection, see :meth:`repro.core.index.UmziIndex._collect_version`),
    so ``candidates()`` is exactly the newest-first run set a query
    searches.  ``version_id`` is the lifecycle's publication sequence
    number at collection time.
    """

    version_id: int
    groomed: Tuple[IndexRun, ...]
    post_groomed: Tuple[IndexRun, ...]
    watermark: int

    def candidates(self) -> List[IndexRun]:
        """Candidate runs, newest first (visible groomed + post-groomed)."""
        return list(self.groomed) + list(self.post_groomed)


class QueryPin:
    """A query's membership in an epoch: holds one pinned run snapshot.

    Released exactly once, by :meth:`RunLifecycle.release` (normally from
    the query executor's ``finally``); ``__del__`` is a backstop so a pin
    captured by a generator that is created but never iterated still exits
    its epoch when the generator is garbage-collected.
    """

    __slots__ = ("version", "runs", "_lifecycle", "_released", "__weakref__")

    def __init__(
        self,
        lifecycle: "RunLifecycle",
        version: Optional[RunListVersion],
        runs: Tuple[IndexRun, ...],
    ) -> None:
        self.version = version
        self.runs = runs
        self._lifecycle = lifecycle
        self._released = False

    @property
    def released(self) -> bool:
        return self._released

    def release(self) -> None:
        self._lifecycle.release(self)

    def __enter__(self) -> "QueryPin":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        try:
            self.release()
        except Exception:
            pass


class _RetiredRun:
    """One parked reclamation: the run id plus the deferred free action."""

    __slots__ = ("run_id", "reclaim")

    def __init__(self, run_id: str, reclaim: Callable[[], None]) -> None:
        self.run_id = run_id
        self.reclaim = reclaim


class RunLifecycle:
    """Pin/retire/reclaim coordinator for one index instance.

    * Queries call :meth:`pin` with a collector callback; the collector
      runs under the lifecycle mutex so the snapshot it takes and the pin
      registration are one atomic step with respect to :meth:`retire`.
    * Maintenance calls :meth:`retire` *after* atomically unlinking the run
      from its list; the reclaim action executes immediately when nothing
      pins the run, and is parked otherwise, draining on pin release.
    * The cache manager consults :meth:`is_pinned` before evicting.

    All counters land on the shared :class:`EpochStats` ledger
    (``IOStats.epochs``), so benchmarks can counter-assert "zero
    reclaim-while-pinned events" the same way they assert I/O costs.
    """

    def __init__(self, stats: EpochStats, mode: str = "epoch") -> None:
        if mode not in RUN_LIFECYCLE_MODES:
            raise ValueError(
                f"run_lifecycle must be one of {RUN_LIFECYCLE_MODES}; "
                f"got {mode!r}"
            )
        self.mode = mode
        self.stats = stats
        self._lock = threading.Lock()
        # Owner thread of `_lock`, for finalizer re-entrancy detection: a
        # cyclic-GC pass can run at any allocation, including one made
        # *inside* a locked section, and may finalize an abandoned
        # iterator whose cleanup calls release().  The lock is
        # non-reentrant, so such a release must park instead of acquiring
        # (see `_pending_releases`).
        self._owner: Optional[int] = None
        self._version_seq = 0
        # run_id -> number of live pins whose snapshot contains the run.
        self._pin_counts: Dict[str, int] = {}
        self._retired: List[_RetiredRun] = []
        # Releases parked by a finalizer (cyclic GC, or re-entering this
        # thread's own locked section), together with their deferred
        # post-release hooks; GIL-atomic appends, drained under the lock
        # by the next lifecycle operation.
        self._pending_releases: List[
            Tuple[QueryPin, Optional[Callable[[], None]]]
        ] = []
        # Legacy mode: deliberately unprotected in-flight query counter --
        # just enough bookkeeping to *measure* the hazard, none to stop it.
        self._inflight = 0

    @contextmanager
    def _locked(self) -> Iterator[None]:
        # get_ident() before acquire: the int allocation could trigger
        # cyclic GC, and a finalizer release() must never observe this
        # thread as lock-holder-with-unset-owner.  The store itself
        # replaces a pre-existing instance-dict entry (set in __init__),
        # so it cannot allocate -- there is no window between acquiring
        # and publishing ownership in which GC can run.
        ident = threading.get_ident()
        self._lock.acquire()
        self._owner = ident
        try:
            yield
        finally:
            self._owner = None
            self._lock.release()

    # -- version publication -----------------------------------------------------

    def note_publish(self) -> int:
        """Record one atomic run-list publication; returns the sequence."""
        with self._locked():
            self._version_seq += 1
            self.stats.versions_published += 1
            return self._version_seq

    @property
    def version_seq(self) -> int:
        return self._version_seq

    # -- the query side ----------------------------------------------------------

    def pin(
        self,
        collect: Callable[[], Union[RunListVersion, Sequence[IndexRun]]],
    ) -> QueryPin:
        """Enter an epoch: snapshot via ``collect`` and pin every run in it.

        ``collect`` may return a :class:`RunListVersion` (the index facade
        does) or a plain newest-first run sequence (ad-hoc executors).  In
        epoch mode it runs under the lifecycle mutex, making snapshot +
        registration atomic against :meth:`retire`.
        """
        if self.mode == "legacy":
            self._inflight += 1  # unprotected on purpose (the ablation)
            self.stats.pins_entered += 1
            return QueryPin(self, *self._unpack(collect()))
        with self._locked():
            hooks = self._drain_pending_locked()
            version, runs = self._unpack(collect())
            for run in runs:
                self._pin_counts[run.run_id] = (
                    self._pin_counts.get(run.run_id, 0) + 1
                )
            self.stats.pins_entered += 1
            pin = QueryPin(self, version, runs)
            ready = self._drain_locked()
        self._run_hooks(hooks)
        self._reclaim(ready)
        return pin

    @staticmethod
    def _unpack(
        collected: Union[RunListVersion, Sequence[IndexRun]],
    ) -> Tuple[Optional[RunListVersion], Tuple[IndexRun, ...]]:
        if isinstance(collected, RunListVersion):
            return collected, tuple(collected.candidates())
        return None, tuple(collected)

    def release(
        self,
        pin: QueryPin,
        after: Optional[Callable[[], None]] = None,
    ) -> None:
        """Exit the pin's epoch; drain any reclamations it was blocking.

        ``after`` runs once the pin no longer counts (the query executor's
        purged-block release hook) -- outside the lifecycle mutex.

        Safe to call from finalizers: a release initiated while the cyclic
        collector is running (an abandoned iterator's ``finally``, or
        :meth:`QueryPin.__del__`) may be interrupting a thread that holds
        *any* non-reentrant lock -- the lifecycle mutex, a storage-tier
        mutex, the stats ledger -- so it must neither acquire locks nor
        run reclaim actions or hooks inline.  Such releases (and any
        release that re-enters this thread's own locked section) park on a
        GIL-atomic pending list, drained by the next lifecycle operation.
        """
        if pin._released:
            return
        pin._released = True
        if self.mode == "legacy":
            # The unprotected ablation: no lock, no parking (matches the
            # pre-epoch behaviour it exists to measure).
            self._inflight -= 1
            self.stats.pins_exited += 1
            if after is not None:
                after()
            return
        if _in_gc_finalizer() or self._owner == threading.get_ident():
            self._pending_releases.append((pin, after))
            return
        ready: List[_RetiredRun] = []
        with self._locked():
            hooks = self._drain_pending_locked()
            self._release_counts_locked(pin)
            ready = self._drain_locked()
        self._run_hooks(hooks)
        self._reclaim(ready)
        if after is not None:
            after()

    def _release_counts_locked(self, pin: QueryPin) -> None:
        for run in pin.runs:
            count = self._pin_counts.get(run.run_id, 0) - 1
            if count > 0:
                self._pin_counts[run.run_id] = count
            else:
                self._pin_counts.pop(run.run_id, None)
        self.stats.pins_exited += 1

    def _drain_pending_locked(self) -> List[Callable[[], None]]:
        """Apply releases parked by finalizers (see :meth:`release`).

        Returns their deferred post-release hooks, to be run by the caller
        *outside* the lifecycle mutex.
        """
        hooks: List[Callable[[], None]] = []
        while self._pending_releases:
            parked, after = self._pending_releases.pop()
            self._release_counts_locked(parked)
            if after is not None:
                hooks.append(after)
        return hooks

    @staticmethod
    def _run_hooks(hooks: List[Callable[[], None]]) -> None:
        for hook in hooks:
            hook()

    # -- the maintenance side ----------------------------------------------------

    def retire(self, run_id: str, reclaim: Callable[[], None]) -> None:
        """Hand an unlinked run's free action to the lifecycle.

        Must be called only *after* the run has been atomically removed
        from every published run list (so no new pin can acquire it).
        Reclaims inline when unpinned; parks behind the live pins
        otherwise.
        """
        if self.mode == "legacy":
            # The pre-epoch behaviour: free immediately, queries be damned.
            self.stats.runs_retired += 1
            if self._inflight > 0:
                self.stats.reclaimed_while_pinned += 1
            reclaim()
            self.stats.runs_reclaimed += 1
            return
        inline = False
        ready: List[_RetiredRun] = []
        with self._locked():
            hooks = self._drain_pending_locked()
            ready = self._drain_locked()
            self.stats.runs_retired += 1
            if self._pin_counts.get(run_id, 0) > 0:
                self.stats.reclaims_deferred += 1
                self._retired.append(_RetiredRun(run_id, reclaim))
            else:
                inline = True
        self._run_hooks(hooks)
        self._reclaim(ready)
        if inline:
            # No pin held the run at the (locked) check, and none can
            # appear: the run is gone from every published list.  Free
            # outside the mutex so storage-tier work never serializes pin
            # entry/exit.
            reclaim()
            self.stats.runs_reclaimed += 1

    def _drain_locked(self) -> List[_RetiredRun]:
        """Pop every retired run whose last pin just went away."""
        if not self._retired:
            return []
        ready = [
            item
            for item in self._retired
            if self._pin_counts.get(item.run_id, 0) == 0
        ]
        if ready:
            self._retired = [
                item
                for item in self._retired
                if self._pin_counts.get(item.run_id, 0) > 0
            ]
        return ready

    def _reclaim(self, ready: List[_RetiredRun]) -> None:
        for item in ready:
            item.reclaim()
            self.stats.runs_reclaimed += 1

    # -- inspection --------------------------------------------------------------

    def is_pinned(self, run_id: str) -> bool:
        """Is the run referenced by any live pin right now?

        In legacy mode always ``False``: nothing tracks per-run pins, which
        is precisely the ablation's hazard.
        """
        if self.mode == "legacy":
            return False
        with self._locked():
            # No pending-drain here: this runs inside cache eviction
            # passes, which must not execute drained release hooks.  A
            # parked (not yet drained) release just keeps the run looking
            # pinned a little longer -- the safe direction.
            return self._pin_counts.get(run_id, 0) > 0

    def pinned_run_ids(self) -> List[str]:
        with self._locked():
            hooks = self._drain_pending_locked()
            ids = sorted(self._pin_counts)
        self._run_hooks(hooks)  # cache-release hooks; do not alter pins
        return ids

    def retired_backlog(self) -> int:
        """Retired-but-not-yet-reclaimed run count (0 when idle)."""
        ready: List[_RetiredRun] = []
        with self._locked():
            # Parked finalizer releases may have just unblocked reclaims;
            # apply them so the reported backlog reflects live pins only.
            hooks = self._drain_pending_locked()
            ready = self._drain_locked()
            backlog = len(self._retired)
        self._run_hooks(hooks)
        self._reclaim(ready)
        return backlog


# ---------------------------------------------------------------------------
# reclaim-action factories (shared by the merge and evolve controllers)
# ---------------------------------------------------------------------------


def delete_run_action(hierarchy, run: IndexRun) -> Callable[[], None]:
    """Full reclamation: shared-storage namespace + decoded-view cache."""

    def free() -> None:
        hierarchy.delete_namespace(run.run_id)
        run.drop_decode_cache()

    return free


def delete_namespace_action(hierarchy, run_id: str) -> Callable[[], None]:
    """Namespace-only reclamation (ancestor runs known by id alone)."""

    def free() -> None:
        hierarchy.delete_namespace(run_id)

    return free


def drop_cache_action(hierarchy, run: IndexRun) -> Callable[[], None]:
    """Local-tier-only reclamation (ancestor-protected shared copies)."""

    def free() -> None:
        for block_id in run.all_block_ids():
            hierarchy.drop_from_cache(block_id)
        run.drop_decode_cache()

    return free


__all__ = [
    "QueryPin",
    "RUN_LIFECYCLE_MODES",
    "RunLifecycle",
    "RunListVersion",
    "delete_namespace_action",
    "delete_run_action",
    "drop_cache_action",
]
