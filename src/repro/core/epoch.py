"""Version-set run lifecycle: safe reclamation under live queries.

The paper runs grooming, post-grooming, evolution and merging *concurrently*
with lock-free queries over one multi-zone index.  Unlinking a run from a
run list is an atomic pointer publication (``runlist.py``), so readers never
see a torn list -- but unlinking is only half the story.  The other half is
**reclamation**: once a merge or evolve has replaced a span of runs, their
data blocks are freed from shared storage and every local tier.  A query
that snapshotted the lists a microsecond earlier still holds handles to
those runs and will fault (``BlockNotFoundError``) when it reaches them.

This module closes that race with deferred reclamation in one of three
modes (``RunLifecycle(mode=...)``):

* ``"versionset"`` (default) -- the LevelDB/RocksDB version-set design.
  Every run-list publication builds one immutable :class:`RunListVersion`
  node carrying a refcount and a link to its predecessor; a query pins the
  *current* node with a single Ref and releases it with a single Unref --
  **O(1) per query, independent of run count** (the countable invariant:
  exactly two refcount operations per query, ``EpochStats.version_refs``
  + ``version_unrefs``).  Retirement walks the live-version chain and
  physically frees a run only once no live version contains it; an
  obsolete version dies (``versions_reclaimed``) when its last reader
  unrefs it, unblocking the runs only it still covered.
* ``"epoch"`` -- the PR 4 design, kept as an ablation: the pin ledger is a
  per-run refcount (exact, strictly stronger than version granularity),
  but every pin entry/exit takes the lifecycle mutex and walks the whole
  snapshot -- O(runs) refcount updates per query, counted by
  ``EpochStats.run_ref_ops``.
* ``"legacy"`` -- the unprotected pre-lifecycle behaviour: retirement
  reclaims immediately, and an (unprotected) in-flight query counter
  records how often that freed storage under a live query
  (``EpochStats.reclaimed_while_pinned`` -- the hazard rate
  ``benchmarks/bench_concurrent_throughput.py`` quantifies).

Publication order makes every protected mode sound: a run is always
unlinked from its lists (one atomic tuple publication) *before* it is
retired, so a pin either captured the run before the retire check
(deferral) or can no longer see it at all.  Ad-hoc collectors that return
a plain run sequence rather than the index's composed version (the
post-groomer's zone-restricted lookup, unit-test stubs) fall back to the
per-run ledger even in versionset mode -- their snapshot is not a
published version, so it cannot be covered by the version chain.
"""

from __future__ import annotations

import gc
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.run import IndexRun
from repro.storage.metrics import EpochStats

RUN_LIFECYCLE_MODES = ("versionset", "epoch", "legacy")

# Cyclic-GC detection for finalizer-safe releases.  The collector can run
# at any allocation -- including one made while the current thread holds a
# non-reentrant lock anywhere in the storage stack (tier mutexes, the
# IOStats ledger, the lifecycle mutex itself).  A pin release executed
# from a GC finalizer must therefore never acquire locks or run reclaim
# actions inline; while the flag is set, releases park on the lifecycle's
# pending list instead (GIL-atomic append; a list resize during GC cannot
# re-enter the collector).  Refcount-driven finalization (non-cyclic) runs
# at the decref site in executor/user code, where no storage lock is held.
_gc_active = threading.local()


def _note_gc(phase: str, _info: dict) -> None:
    _gc_active.flag = phase == "start"


gc.callbacks.append(_note_gc)


def _in_gc_finalizer() -> bool:
    """Is the cyclic garbage collector running on this thread right now?"""
    return getattr(_gc_active, "flag", False)


@dataclass(frozen=True)
class RunListVersion:
    """One immutable, query-visible snapshot of an index's run lists.

    ``groomed`` holds only the *visible* groomed runs (the watermark filter
    of section 5.4 already applied -- the filter is part of the atomic
    collection, see :meth:`repro.core.index.UmziIndex._collect_version`),
    so ``candidates()`` is exactly the newest-first run set a query
    searches.  ``version_id`` is the lifecycle's publication sequence
    number at collection time.
    """

    version_id: int
    groomed: Tuple[IndexRun, ...]
    post_groomed: Tuple[IndexRun, ...]
    watermark: int

    def candidates(self) -> List[IndexRun]:
        """Candidate runs, newest first (visible groomed + post-groomed)."""
        return list(self.groomed) + list(self.post_groomed)


class _VersionNode:
    """One live entry of the version chain (versionset mode only).

    Wraps the immutable :class:`RunListVersion` with the mutable lifecycle
    state the reclamation walk needs: the refcount (one implicit ref while
    the node is *current*, plus one per pinned query) and the precomputed
    candidate tuple and run-id set.  The chain itself is the lifecycle's
    ``_versions`` list (oldest to newest); a dead node holds no link back
    into it, so superseded versions -- and the run objects only they
    referenced -- become collectable the moment they are removed.
    ``seq`` is the lifecycle publication sequence the node was built at
    -- the staleness check is one int compare.
    """

    __slots__ = ("version", "runs", "run_ids", "refs", "seq")

    def __init__(
        self,
        version: Optional[RunListVersion],
        runs: Tuple[IndexRun, ...],
        seq: int,
    ) -> None:
        self.version = version
        self.runs = runs
        self.run_ids = frozenset(run.run_id for run in runs)
        self.refs = 1  # the implicit "current version" reference
        self.seq = seq


class QueryPin:
    """A query's membership in an epoch: holds one pinned run snapshot.

    In versionset mode the pin holds a :class:`_VersionNode` reference
    (one Ref); in epoch mode it holds per-run refcounts.  Released exactly
    once, by :meth:`RunLifecycle.release` (normally from the query
    executor's ``finally``); ``__del__`` is a backstop so a pin captured
    by a generator that is created but never iterated still exits its
    epoch when the generator is garbage-collected.
    """

    __slots__ = ("version", "runs", "_lifecycle", "_node", "_released",
                 "__weakref__")

    def __init__(
        self,
        lifecycle: "RunLifecycle",
        version: Optional[RunListVersion],
        runs: Tuple[IndexRun, ...],
        node: Optional[_VersionNode] = None,
    ) -> None:
        self.version = version
        self.runs = runs
        self._lifecycle = lifecycle
        self._node = node
        self._released = False

    @property
    def released(self) -> bool:
        return self._released

    def release(self) -> None:
        self._lifecycle.release(self)

    def __enter__(self) -> "QueryPin":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        try:
            self.release()
        except Exception:
            pass


class _RetiredRun:
    """One parked reclamation: the run id plus the deferred free action."""

    __slots__ = ("run_id", "reclaim")

    def __init__(self, run_id: str, reclaim: Callable[[], None]) -> None:
        self.run_id = run_id
        self.reclaim = reclaim


class RunLifecycle:
    """Pin/retire/reclaim coordinator for one index instance.

    * Queries call :meth:`pin` with a collector callback.  In versionset
      mode, when the collector is the one registered via
      :meth:`attach_collector` (the index's composed-version collector),
      the pin is a single Ref on the current version node -- O(1); other
      collectors run under the lifecycle mutex on the per-run ledger so
      the snapshot they take and the pin registration stay one atomic
      step with respect to :meth:`retire`.
    * Maintenance calls :meth:`retire` *after* atomically unlinking the run
      from its list; the reclaim action executes immediately when no live
      version (and no per-run pin) covers the run, and is parked
      otherwise, draining when the covering version dies.
    * The cache manager consults :meth:`is_pinned` before evicting.

    All counters land on the shared :class:`EpochStats` ledger
    (``IOStats.epochs``), so benchmarks can counter-assert "zero
    reclaim-while-pinned events" and "exactly two refcount operations per
    query" the same way they assert I/O costs.
    """

    def __init__(self, stats: EpochStats, mode: str = "versionset") -> None:
        if mode not in RUN_LIFECYCLE_MODES:
            raise ValueError(
                f"run_lifecycle must be one of {RUN_LIFECYCLE_MODES}; "
                f"got {mode!r}"
            )
        self.mode = mode
        self.stats = stats
        self._lock = threading.Lock()
        # Owner thread of `_lock`, for finalizer re-entrancy detection: a
        # cyclic-GC pass can run at any allocation, including one made
        # *inside* a locked section, and may finalize an abandoned
        # iterator whose cleanup calls release().  The lock is
        # non-reentrant, so such a release must park instead of acquiring
        # (see `_pending_releases`).
        self._owner: Optional[int] = None
        self._version_seq = 0
        # run_id -> number of live pins whose snapshot contains the run
        # (epoch mode; versionset fallback for ad-hoc collectors).
        self._pin_counts: Dict[str, int] = {}
        # Versionset mode: the registered composed-version collector, the
        # current version node, and the live chain (oldest -> newest; a
        # node is live while it is current or some query still refs it).
        self._collector: Optional[Callable[[], RunListVersion]] = None
        self._current: Optional[_VersionNode] = None
        self._versions: List[_VersionNode] = []
        # Publications not yet folded into a current-node rebuild
        # (ISSUE 9): note_publish only bumps this dirty count; the next
        # pin/retire that needs the current node rebuilds once, so a
        # merge storm's N eager rebuilds collapse to one
        # (EpochStats.versions_coalesced counts the N-1 saved).
        self._unbuilt_publishes = 0
        self._retired: List[_RetiredRun] = []
        # Releases parked by a finalizer (cyclic GC, or re-entering this
        # thread's own locked section), together with their deferred
        # post-release hooks; GIL-atomic appends, drained under the lock
        # by the next lifecycle operation.
        self._pending_releases: List[
            Tuple[QueryPin, Optional[Callable[[], None]]]
        ] = []
        # Legacy mode: deliberately unprotected in-flight query counter --
        # just enough bookkeeping to *measure* the hazard, none to stop it.
        self._inflight = 0

    @contextmanager
    def _locked(self) -> Iterator[None]:
        # get_ident() before acquire: the int allocation could trigger
        # cyclic GC, and a finalizer release() must never observe this
        # thread as lock-holder-with-unset-owner.  The store itself
        # replaces a pre-existing instance-dict entry (set in __init__),
        # so it cannot allocate -- there is no window between acquiring
        # and publishing ownership in which GC can run.
        ident = threading.get_ident()
        self._lock.acquire()
        self._owner = ident
        try:
            yield
        finally:
            self._owner = None
            self._lock.release()

    # -- version publication -----------------------------------------------------

    def attach_collector(
        self, collect: Callable[[], RunListVersion]
    ) -> None:
        """Register the index's composed-version collector (versionset).

        The collector composes the published run-list tuples plus the
        watermark into one :class:`RunListVersion` (see
        :meth:`repro.core.index.UmziIndex._collect_version`).  It is
        invoked under the lifecycle mutex at every publication to rebuild
        the current version node, so it must not take locks -- the run
        lists' ``snapshot()``/``published()`` reads are lock-free by
        design.  Pins whose ``collect`` argument equals the registered
        collector take the O(1) version-Ref path.
        """
        self._collector = collect

    def note_publish(self) -> int:
        """Record one atomic run-list publication; returns the sequence.

        In versionset mode a publication only marks the current version
        node **dirty** (ISSUE 9): the O(runs) rebuild of the candidate
        tuple + run-id set is deferred to the first pin/retire that
        actually needs the current node (``_current_node_locked``'s
        seq-mismatch check).  A merge storm's N back-to-back publications
        therefore cost one rebuild instead of N; the N-1 folded
        publications are counted in ``EpochStats.versions_coalesced``.
        Queries never observe staleness -- every pin refreshes through
        ``_current_node_locked`` -- and a stale current node between
        publications only makes ``is_pinned``/``_covered_locked`` err on
        the safe side (runs look covered slightly longer).

        Deliberately **no** reclaim actions, parked releases, or release
        hooks execute here: ``note_publish`` is invoked from
        ``RunList._publish_locked``, i.e. while the caller still holds
        the run list's mutation lock, and storage-tier frees must never
        serialize run-list mutations (nor risk re-entering a list a hook
        might touch).  Anything a dying predecessor unblocks stays parked
        in ``_retired``/``_pending_releases`` and drains on the next
        lifecycle operation that runs unlocked (the retire that follows
        every unlink, a pin, a release, or a backlog probe).
        """
        with self._locked():
            self._version_seq += 1
            self.stats.versions_published += 1
            seq = self._version_seq
            if self.mode == "versionset" and self._collector is not None:
                self._unbuilt_publishes += 1
        return seq

    def _rebuild_current_locked(self) -> _VersionNode:
        """Install a fresh current version node from the collector.

        One rebuild folds every publication since the previous one; the
        surplus (N dirty publications -> 1 rebuild) is counted in
        ``EpochStats.versions_coalesced``.
        """
        if self._unbuilt_publishes > 1:
            self.stats.versions_coalesced += self._unbuilt_publishes - 1
        self._unbuilt_publishes = 0
        version = self._collector()
        runs: Tuple[IndexRun, ...]
        if isinstance(version, RunListVersion):
            runs = tuple(version.candidates())
        else:  # a collector may return a bare sequence (tests)
            version, runs = None, tuple(version)
        node = _VersionNode(version, runs, self._version_seq)
        self._versions.append(node)
        old, self._current = self._current, node
        if old is not None:
            old.refs -= 1  # drop the implicit "current" reference
            if old.refs == 0:
                self._kill_node_locked(old)
        return node

    def _kill_node_locked(self, node: _VersionNode) -> None:
        """Drop a dead version from the live chain (bookkeeping only --
        never runs reclaim actions; callers drain those where safe)."""
        self._versions.remove(node)
        self.stats.versions_reclaimed += 1

    def _current_node_locked(self) -> _VersionNode:
        """The fresh current node, rebuilding if a publication was missed
        (collector attached after publications, e.g. recovery rewires)."""
        node = self._current
        if node is None or node.seq != self._version_seq:
            node = self._rebuild_current_locked()
        return node

    @property
    def version_seq(self) -> int:
        return self._version_seq

    # -- the query side ----------------------------------------------------------

    def pin(
        self,
        collect: Callable[[], Union[RunListVersion, Sequence[IndexRun]]],
    ) -> QueryPin:
        """Enter an epoch: snapshot via ``collect`` and pin every run in it.

        ``collect`` may return a :class:`RunListVersion` (the index facade
        does) or a plain newest-first run sequence (ad-hoc executors).

        In versionset mode, when ``collect`` is the registered collector,
        the pin never calls it: the current version node -- rebuilt at the
        last publication from the very same collector -- *is* the
        snapshot, and pinning is one refcount increment under the mutex
        (``EpochStats.version_refs``), with no per-run loop.  Ad-hoc
        collectors (whose snapshot is not a published version and so
        cannot ride the version chain) fall back to the per-run ledger.
        In epoch mode every pin walks the snapshot on the per-run ledger
        -- O(runs) updates, counted by ``EpochStats.run_ref_ops``.
        Either way, snapshot + registration are atomic against
        :meth:`retire`.
        """
        if self.mode == "legacy":
            self._inflight += 1  # unprotected on purpose (the ablation)
            self.stats.pins_entered += 1
            return QueryPin(self, *self._unpack(collect()))
        use_version = (
            self.mode == "versionset"
            and self._collector is not None
            and collect == self._collector
        )
        with self._locked():
            hooks = self._drain_pending_locked()
            if use_version:
                node = self._current_node_locked()
                node.refs += 1
                self.stats.version_refs += 1
                pin = QueryPin(self, node.version, node.runs, node=node)
            else:
                version, runs = self._unpack(collect())
                for run in runs:
                    self._pin_counts[run.run_id] = (
                        self._pin_counts.get(run.run_id, 0) + 1
                    )
                self.stats.run_ref_ops += len(runs)
                pin = QueryPin(self, version, runs)
            self.stats.pins_entered += 1
            ready = self._drain_locked()
        self._run_hooks(hooks)
        self._reclaim(ready)
        return pin

    @staticmethod
    def _unpack(
        collected: Union[RunListVersion, Sequence[IndexRun]],
    ) -> Tuple[Optional[RunListVersion], Tuple[IndexRun, ...]]:
        if isinstance(collected, RunListVersion):
            return collected, tuple(collected.candidates())
        return None, tuple(collected)

    def release(
        self,
        pin: QueryPin,
        after: Optional[Callable[[], None]] = None,
    ) -> None:
        """Exit the pin's epoch; drain any reclamations it was blocking.

        ``after`` runs once the pin no longer counts (the query executor's
        purged-block release hook) -- outside the lifecycle mutex.

        Safe to call from finalizers: a release initiated while the cyclic
        collector is running (an abandoned iterator's ``finally``, or
        :meth:`QueryPin.__del__`) may be interrupting a thread that holds
        *any* non-reentrant lock -- the lifecycle mutex, a storage-tier
        mutex, the stats ledger -- so it must neither acquire locks nor
        run reclaim actions or hooks inline.  Such releases (and any
        release that re-enters this thread's own locked section) park on a
        GIL-atomic pending list, drained by the next lifecycle operation.
        """
        if pin._released:
            return
        pin._released = True
        if self.mode == "legacy":
            # The unprotected ablation: no lock, no parking (matches the
            # pre-epoch behaviour it exists to measure).
            self._inflight -= 1
            self.stats.pins_exited += 1
            if after is not None:
                after()
            return
        if _in_gc_finalizer() or self._owner == threading.get_ident():
            self._pending_releases.append((pin, after))
            return
        ready: List[_RetiredRun] = []
        with self._locked():
            hooks = self._drain_pending_locked()
            self._release_pin_locked(pin)
            ready = self._drain_locked()
        self._run_hooks(hooks)
        self._reclaim(ready)
        if after is not None:
            after()

    def _release_pin_locked(self, pin: QueryPin) -> None:
        node = pin._node
        if node is not None:
            # Versionset: a single Unref.  A superseded version whose last
            # reader just left dies here, even when the Unrefs arrive out
            # of publication order (a long-lived scan may outlive many
            # newer versions).
            node.refs -= 1
            self.stats.version_unrefs += 1
            if node.refs == 0 and node is not self._current:
                self._kill_node_locked(node)
        else:
            for run in pin.runs:
                count = self._pin_counts.get(run.run_id, 0) - 1
                if count > 0:
                    self._pin_counts[run.run_id] = count
                else:
                    self._pin_counts.pop(run.run_id, None)
            self.stats.run_ref_ops += len(pin.runs)
        self.stats.pins_exited += 1

    def _drain_pending_locked(self) -> List[Callable[[], None]]:
        """Apply releases parked by finalizers (see :meth:`release`).

        Returns their deferred post-release hooks, to be run by the caller
        *outside* the lifecycle mutex.
        """
        hooks: List[Callable[[], None]] = []
        while self._pending_releases:
            parked, after = self._pending_releases.pop()
            self._release_pin_locked(parked)
            if after is not None:
                hooks.append(after)
        return hooks

    @staticmethod
    def _run_hooks(hooks: List[Callable[[], None]]) -> None:
        for hook in hooks:
            hook()

    # -- the maintenance side ----------------------------------------------------

    def retire(self, run_id: str, reclaim: Callable[[], None]) -> None:
        """Hand an unlinked run's free action to the lifecycle.

        Must be called only *after* the run has been atomically removed
        from every published run list (so no new pin can acquire it; in
        versionset mode the removal's publication already rebuilt the
        current node without it).  Reclaims inline when no live version
        or per-run pin covers the run; parks behind them otherwise.
        """
        if self.mode == "legacy":
            # The pre-epoch behaviour: free immediately, queries be damned.
            self.stats.runs_retired += 1
            if self._inflight > 0:
                self.stats.reclaimed_while_pinned += 1
            reclaim()
            self.stats.runs_reclaimed += 1
            return
        inline = False
        ready: List[_RetiredRun] = []
        with self._locked():
            hooks = self._drain_pending_locked()
            if self.mode == "versionset" and self._collector is not None:
                # Maintenance-side refresh: make sure the current node
                # reflects the unlink that preceded this retire (O(runs),
                # but on the maintenance thread, never under a query pin).
                self._current_node_locked()
            ready = self._drain_locked()
            self.stats.runs_retired += 1
            if self._covered_locked(run_id):
                self.stats.reclaims_deferred += 1
                self._retired.append(_RetiredRun(run_id, reclaim))
            else:
                inline = True
        self._run_hooks(hooks)
        self._reclaim(ready)
        if inline:
            # Nothing covered the run at the (locked) check, and nothing
            # can start to: the run is gone from every published list and
            # every future version.  Free outside the mutex so
            # storage-tier work never serializes pin entry/exit.
            reclaim()
            self.stats.runs_reclaimed += 1

    def _covered_locked(self, run_id: str) -> bool:
        """Is the run reachable from any live version or per-run pin?

        The versionset reclamation rule: walk the live-version chain (the
        current node plus every superseded node some query still refs)
        and the per-run ledger; a retired run stays parked while either
        covers it.  In epoch mode only the per-run ledger exists.
        """
        if self._pin_counts.get(run_id, 0) > 0:
            return True
        if self.mode == "versionset":
            for node in self._versions:
                if run_id in node.run_ids:
                    return True
        return False

    def _drain_locked(self) -> List[_RetiredRun]:
        """Pop every retired run no live version or pin covers anymore."""
        if not self._retired:
            return []
        ready = [
            item
            for item in self._retired
            if not self._covered_locked(item.run_id)
        ]
        if ready:
            self._retired = [
                item
                for item in self._retired
                if self._covered_locked(item.run_id)
            ]
        return ready

    def _reclaim(self, ready: List[_RetiredRun]) -> None:
        for item in ready:
            item.reclaim()
            self.stats.runs_reclaimed += 1

    # -- inspection --------------------------------------------------------------

    def is_pinned(self, run_id: str) -> bool:
        """Is the run referenced by any live *query* pin right now?

        Used by cache eviction: a run is protected while some in-flight
        query may still read its blocks.  In versionset mode the current
        node's implicit reference does **not** count -- every live run is
        in the current version, and eviction of unread runs must stay
        possible -- only versions a query actually refs protect their
        runs.  In legacy mode always ``False``: nothing tracks pins,
        which is precisely the ablation's hazard.
        """
        if self.mode == "legacy":
            return False
        with self._locked():
            # No pending-drain here: this runs inside cache eviction
            # passes, which must not execute drained release hooks.  A
            # parked (not yet drained) release just keeps the run looking
            # pinned a little longer -- the safe direction.
            if self._pin_counts.get(run_id, 0) > 0:
                return True
            for node in self._versions:
                if self._query_refs_locked(node) > 0 and run_id in node.run_ids:
                    return True
            return False

    def _query_refs_locked(self, node: _VersionNode) -> int:
        """Refs held by queries (the implicit current ref excluded)."""
        return node.refs - (1 if node is self._current else 0)

    def pinned_run_ids(self) -> List[str]:
        with self._locked():
            hooks = self._drain_pending_locked()
            ids = set(self._pin_counts)
            for node in self._versions:
                if self._query_refs_locked(node) > 0:
                    ids.update(node.run_ids)
            ids = sorted(ids)
        self._run_hooks(hooks)  # cache-release hooks; do not alter pins
        return ids

    def live_version_count(self) -> int:
        """Live version-chain length (versionset; 0 before first publish).

        Bounded by 1 (the current node) + the number of distinct older
        versions still pinned by in-flight queries -- the whole point of
        the design: chain length tracks concurrency, not run count.
        """
        with self._locked():
            return len(self._versions)

    def retired_backlog(self) -> int:
        """Retired-but-not-yet-reclaimed run count (0 when idle)."""
        ready: List[_RetiredRun] = []
        with self._locked():
            # Parked finalizer releases may have just unblocked reclaims;
            # apply them so the reported backlog reflects live pins only.
            hooks = self._drain_pending_locked()
            ready = self._drain_locked()
            backlog = len(self._retired)
        self._run_hooks(hooks)
        self._reclaim(ready)
        return backlog


# ---------------------------------------------------------------------------
# reclaim-action factories (shared by the merge and evolve controllers)
# ---------------------------------------------------------------------------


def delete_run_action(hierarchy, run: IndexRun) -> Callable[[], None]:
    """Full reclamation: shared-storage namespace + decoded-view cache."""

    def free() -> None:
        hierarchy.delete_namespace(run.run_id)
        run.drop_decode_cache()

    return free


def delete_namespace_action(hierarchy, run_id: str) -> Callable[[], None]:
    """Namespace-only reclamation (ancestor runs known by id alone)."""

    def free() -> None:
        hierarchy.delete_namespace(run_id)

    return free


def drop_cache_action(hierarchy, run: IndexRun) -> Callable[[], None]:
    """Local-tier-only reclamation (ancestor-protected shared copies)."""

    def free() -> None:
        for block_id in run.all_block_ids():
            hierarchy.drop_from_cache(block_id)
        run.drop_decode_cache()

    return free


__all__ = [
    "QueryPin",
    "RUN_LIFECYCLE_MODES",
    "RunLifecycle",
    "RunListVersion",
    "delete_namespace_action",
    "delete_run_action",
    "drop_cache_action",
]
