"""SSD cache management (paper section 6.2).

Umzi "aggressively caches index runs using local memory and SSD, even
without ongoing queries", assuming recent data is accessed more often.  The
cache manager tracks the **current cached level**: runs at levels at or
below it are cached on SSD; runs above it are *purged* -- their data blocks
are dropped from the local tiers "while only [keeping] the header block for
queries to locate data blocks".

* When the SSD nears capacity, runs are purged starting from the current
  cached level (old data first), and the level is decremented once all its
  runs are purged.
* When the SSD has room, runs are loaded back in the reverse direction and
  the level is incremented once a level is fully cached.
* New runs created by merge or evolve are written through to the SSD cache
  iff their level is below (i.e. more recent than) the current cached level.
* A query that had to touch a purged run releases those transient blocks
  when it finishes.

``set_cache_level`` provides the manual override the paper uses for the
purge experiment (Figure 14).

**Scan resistance (maintenance-aware extension).**  Background maintenance
-- streaming evolve, merges, recovery validation -- reads entire purged
levels exactly once.  Those touches carry ``ReadIntent.MAINTENANCE``
through the hierarchy, which (in the default ``"intent"`` mode) refuses to
promote them into the SSD; symmetrically, the cache manager's
query-accounting entry points (:meth:`CacheManager.load_run`,
:meth:`CacheManager.release_after_query`) treat maintenance touches as
no-ops, so a purged level stays purged across an evolve instead of being
churned in and out of the cache.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Iterable, List, Optional

from repro.core.entry import Zone
from repro.core.levels import LevelConfig
from repro.core.run import IndexRun
from repro.core.runlist import RunList
from repro.storage.hierarchy import StorageHierarchy
from repro.storage.metrics import ReadIntent


class CacheManager:
    """Level-based purge/load policy over the storage hierarchy.

    The manager owns *which runs* live in the SSD cache (the paper's
    level-based purge/load policy); the hierarchy owns *how blocks get
    admitted* on the read path.  Both sides are read-intent aware: query
    touches participate in the usual load/release accounting, while
    maintenance touches (``ReadIntent.MAINTENANCE``) bypass it entirely --
    they neither load purged runs into the cache nor release blocks they
    never admitted (``maintenance_bypasses`` counts such bypassed calls for
    observability).
    """

    def __init__(
        self,
        config: LevelConfig,
        hierarchy: StorageHierarchy,
        run_lists: Dict[Zone, RunList],
        high_watermark: float = 0.85,
        low_watermark: float = 0.60,
        pin_checker: Optional[Callable[[str], bool]] = None,
    ) -> None:
        if not 0.0 < low_watermark <= high_watermark <= 1.0:
            raise ValueError("need 0 < low_watermark <= high_watermark <= 1")
        self.config = config
        self.hierarchy = hierarchy
        self.run_lists = run_lists
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        # pin_checker(run_id) -> is some live query snapshot still holding
        # the run?  Supplied by the run lifecycle (in versionset mode a
        # run counts as pinned when any query-reffed RunListVersion
        # contains it; the current version's implicit reference does not
        # count, or nothing could ever be evicted).  Eviction paths
        # (purge_run, release_after_query) skip pinned runs so a block is
        # never dropped out from under an in-flight iterator.
        self._pin_checker = (
            pin_checker if pin_checker is not None else lambda _run_id: False
        )
        # Everything cached initially; levels above this are purged.
        self._current_cached_level = config.total_levels - 1
        self._manual = False
        self._lock = threading.Lock()
        # Scan-resistance observability: maintenance touches that skipped
        # the load/release accounting.
        self.maintenance_bypasses = 0

    # -- state inspection ---------------------------------------------------------

    @property
    def current_cached_level(self) -> int:
        return self._current_cached_level

    def write_through(self, level: int) -> bool:
        """Should a new run at ``level`` be written through to the SSD?"""
        return level <= self._current_cached_level

    def is_purged_level(self, level: int) -> bool:
        return level > self._current_cached_level

    def is_run_cached(self, run: IndexRun) -> bool:
        """All data blocks locally present?"""
        return all(
            self.hierarchy.is_cached(run.data_block_id(i))
            for i in range(run.header.num_data_blocks)
        )

    # -- run-granularity primitives --------------------------------------------------

    def purge_run(self, run: IndexRun) -> int:
        """Drop a run's data blocks from the local tiers; keep the header.

        Non-persisted runs cannot be purged (the local copy is the only
        copy); they return 0.  So do runs pinned by a live query snapshot
        -- in versionset mode, runs reachable from any query-reffed
        version: evicting mid-read would stall the query on
        shared-storage refetches (and invalidate the decoded views it is
        iterating), so the purge pass simply revisits the run on a later
        cycle.
        """
        if not run.header.persisted:
            return 0
        if self._pin_checker(run.run_id):
            self.hierarchy.stats.epochs.eviction_pin_skips += 1
            return 0
        dropped = 0
        for i in range(run.header.num_data_blocks):
            if self.hierarchy.drop_from_cache(run.data_block_id(i)):
                dropped += 1
        run.drop_decode_cache()
        # Keep (or restore) the header block locally so queries can plan.
        header_id = run.header_block_id()
        if not self.hierarchy.is_cached(header_id):
            self.hierarchy.load_into_cache(header_id)
        return dropped

    def load_run(
        self, run: IndexRun, intent: Optional[ReadIntent] = None
    ) -> bool:
        """Fetch a run's data blocks from shared storage into the SSD.

        Maintenance touches bypass the load entirely (scan-resistant
        admission): a one-pass evolve or merge over a purged run must not
        pull that run into the cache as a side effect.  The call still
        reports success -- the caller can read the blocks through the
        hierarchy; they just will not be admitted.  ``intent=None``
        resolves through the hierarchy's ``reading_as`` scope, so calls
        issued from inside maintenance machinery bypass automatically.
        """
        if intent is None:
            intent = self.hierarchy.current_read_intent()
        if intent is ReadIntent.MAINTENANCE:
            self.maintenance_bypasses += 1
            return True
        if not run.header.persisted:
            return True  # already local by definition
        total_needed = sum(
            meta.size_bytes
            for i, meta in enumerate(run.header.block_meta)
            if not self.hierarchy.is_cached(run.data_block_id(i))
        )
        if not self.hierarchy.ssd.would_fit(total_needed):
            return False
        for i in range(run.header.num_data_blocks):
            block_id = run.data_block_id(i)
            if not self.hierarchy.is_cached(block_id):
                self.hierarchy.load_into_cache(block_id)
        return True

    def release_after_query(
        self,
        touched_purged_runs: Iterable[IndexRun],
        intent: Optional[ReadIntent] = None,
    ) -> None:
        """Drop transient blocks a query pulled in from purged runs.

        Maintenance touches are skipped symmetrically to :meth:`load_run`:
        under the intent-aware read mode a maintenance scan never admitted
        anything, so there is nothing to release -- and blindly dropping a
        touched run's blocks here could evict blocks a concurrent *query*
        had legitimately warmed.  ``intent=None`` resolves through the
        hierarchy's ``reading_as`` scope, so a query-machinery path driven
        by maintenance (a ``reading_as(MAINTENANCE)`` caller with
        ``on_query_done`` wired) cannot evict query-warmed blocks.
        """
        if intent is None:
            intent = self.hierarchy.current_read_intent()
        if intent is ReadIntent.MAINTENANCE:
            self.maintenance_bypasses += 1
            return
        for run in touched_purged_runs:
            if self._pin_checker(run.run_id):
                # Another query's pinned snapshot still holds this run:
                # dropping its blocks (and decoded views) now would yank
                # them out from under that query's live iterator.  The
                # next query to touch the run releases them; until then a
                # bounded SSD reclaims them through the ordinary purge
                # pass under pressure.
                self.hierarchy.stats.epochs.eviction_pin_skips += 1
                continue
            if self.is_purged_level(run.level):
                for i in range(run.header.num_data_blocks):
                    self.hierarchy.drop_from_cache(run.data_block_id(i))
                run.drop_decode_cache()

    # -- the dynamic policy --------------------------------------------------------------

    def maintain(self) -> None:
        """One maintenance pass: purge under pressure, load when spacious.

        No-op when the SSD is unbounded or a manual cache level is pinned
        (Figure 14 mode).
        """
        if self._manual or self.hierarchy.ssd.capacity_bytes is None:
            return
        with self._lock:
            if self.hierarchy.ssd.utilization() >= self.high_watermark:
                self._purge_pass()
            elif self.hierarchy.ssd.utilization() < self.low_watermark:
                self._load_pass()

    def _runs_at_level(self, level: int) -> List[IndexRun]:
        zone = self.config.zone_of(level)
        return [
            run for run in self.run_lists[zone].iter_runs() if run.level == level
        ]

    def _purge_pass(self) -> None:
        """Purge oldest-first until below the high watermark.

        Pinned runs are skipped (never evicted mid-read) without wedging
        the pass: the scan keeps descending to lower levels looking for
        evictable space, and ``_current_cached_level`` is only decremented
        when a level is genuinely fully purged -- no pinned holdouts.
        Empty runs (zero data blocks) are trivially purged and never count
        as holdouts.
        """
        level = self._current_cached_level
        while (
            self.hierarchy.ssd.utilization() >= self.high_watermark
            and level >= 0
        ):
            runs = self._runs_at_level(level)
            # Oldest runs first (tail of the newest-first list order).
            blocked = False
            for run in reversed(runs):
                if run.header.persisted and self.is_run_cached(run):
                    if self.purge_run(run) > 0:
                        if self.hierarchy.ssd.utilization() < self.high_watermark:
                            return
                    elif run.header.num_data_blocks > 0:
                        # A non-empty cached run that would not purge is a
                        # pinned holdout: this level is not fully purged.
                        blocked = True
            if level == 0:
                return  # never purge below level 0 entirely automatically
            if not blocked and level == self._current_cached_level:
                self._current_cached_level -= 1
            level -= 1

    def _load_pass(self) -> None:
        """Load recent-first in the reverse direction of purging."""
        while (
            self.hierarchy.ssd.utilization() < self.low_watermark
            and self._current_cached_level < self.config.total_levels - 1
        ):
            next_level = self._current_cached_level + 1
            runs = self._runs_at_level(next_level)
            all_cached = True
            for run in runs:  # newest first
                if not self.is_run_cached(run):
                    # Policy-driven admission, pinned to QUERY intent: the
                    # load pass is the cache manager deliberately warming
                    # the cache, and must not dissolve into a no-op just
                    # because a maintenance scope happens to be ambient.
                    if not self.load_run(run, intent=ReadIntent.QUERY):
                        return  # out of space; stop loading
                    if self.hierarchy.ssd.utilization() >= self.low_watermark:
                        all_cached = self.is_run_cached(run) and run is runs[-1]
                        break
            if all_cached or all(self.is_run_cached(r) for r in runs):
                self._current_cached_level = next_level
            else:
                return

    # -- manual control (Figure 14) ----------------------------------------------------------

    def set_cache_level(self, level: int) -> None:
        """Pin the cached/purged boundary: purge everything above ``level``,
        load everything at or below it, and disable the dynamic policy."""
        if not -1 <= level <= self.config.total_levels - 1:
            raise ValueError(
                f"cache level must be in [-1, {self.config.total_levels - 1}]"
            )
        with self._lock:
            self._manual = True
            self._current_cached_level = level
            for lvl in range(self.config.total_levels - 1, level, -1):
                for run in self._runs_at_level(lvl):
                    self.purge_run(run)
            for lvl in range(0, level + 1):
                for run in self._runs_at_level(lvl):
                    # Deliberate policy admission (see _load_pass).
                    self.load_run(run, intent=ReadIntent.QUERY)

    def resume_dynamic_policy(self) -> None:
        with self._lock:
            self._manual = False

    def cached_fraction(self) -> float:
        """Fraction of persisted runs whose data is fully cached."""
        runs = [
            run
            for zone in (Zone.GROOMED, Zone.POST_GROOMED)
            for run in self.run_lists[zone].iter_runs()
            if run.header.persisted
        ]
        if not runs:
            return 1.0
        cached = sum(1 for run in runs if self.is_run_cached(run))
        return cached / len(runs)


__all__ = ["CacheManager"]
