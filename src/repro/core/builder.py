"""Building index runs (paper section 5.2).

Index build "is done by simply scanning the data block and sorting index
entries" in run order, writing fixed-size data blocks and computing the
offset array on the fly.  The builder is the single primitive shared by
index build (after a groom), merge, and evolve -- they differ only in where
the input entries come from and which level/zone the run lands in.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.definition import IndexDefinition
from repro.core.entry import IndexEntry, Zone
from repro.core.run import (
    DataBlockMeta,
    IndexRun,
    RunHeader,
    Synopsis,
    encode_data_block,
)
from repro.core.encoding import high_bits
from repro.storage.block import Block, BlockId
from repro.storage.hierarchy import StorageHierarchy

DEFAULT_DATA_BLOCK_BYTES = 32 * 1024


class RunBuilder:
    """Builds one immutable run from a bag of entries.

    Parameters
    ----------
    definition:
        Index shape; controls entry order, offset array and synopsis.
    hierarchy:
        Storage to write blocks into.
    data_block_bytes:
        Target data-block size.  Shared storage prefers few large blocks;
        benchmarks default to 32 KiB scaled-down blocks.
    """

    def __init__(
        self,
        definition: IndexDefinition,
        hierarchy: StorageHierarchy,
        data_block_bytes: int = DEFAULT_DATA_BLOCK_BYTES,
        bloom_fpr: Optional[float] = None,
    ) -> None:
        if data_block_bytes <= 0:
            raise ValueError("data_block_bytes must be positive")
        self.definition = definition
        self.hierarchy = hierarchy
        self.data_block_bytes = data_block_bytes
        # When set, every built run carries a Bloom filter over its
        # distinct key bytes with this false-positive rate (extension).
        self.bloom_fpr = bloom_fpr

    # -- entry ordering -----------------------------------------------------------

    def sort_entries(self, entries: Iterable[IndexEntry]) -> List[IndexEntry]:
        """Sort into run order: hash | eq cols | sort cols | beginTS desc."""
        definition = self.definition
        return sorted(entries, key=lambda e: e.sort_key(definition))

    # -- offset array ----------------------------------------------------------------

    def compute_offset_array(self, sorted_entries: Sequence[IndexEntry]) -> Tuple[int, ...]:
        """``offset[b]`` = ordinal of the first entry with hash high-bits >= b.

        Matches the paper's Figure 2b; ``offset_array_size`` buckets, and a
        query for bucket ``i`` searches ``[offset[i], offset[i+1])`` (with
        the entry count as the implicit final fence).
        """
        definition = self.definition
        size = definition.offset_array_size
        if size == 0:
            return ()
        nbits = definition.hash_bits
        counts = [0] * size
        for entry in sorted_entries:
            counts[high_bits(entry.hash_value, nbits)] += 1
        offsets: List[int] = []
        running = 0
        for bucket in range(size):
            offsets.append(running)
            running += counts[bucket]
        return tuple(offsets)

    # -- build -------------------------------------------------------------------------

    def build(
        self,
        run_id: str,
        entries: Iterable[IndexEntry],
        zone: Zone,
        level: int,
        min_groomed_id: int,
        max_groomed_id: int,
        persisted: bool = True,
        write_through_ssd: bool = True,
        spill_to_ssd: bool = False,
        ancestor_run_ids: Sequence[str] = (),
        presorted: bool = False,
    ) -> IndexRun:
        """Sort, slice into data blocks, write, and return the run handle.

        ``persisted`` selects the durable path (shared storage +
        write-through SSD); non-persisted runs go to memory only (section
        6.1), optionally spilling to SSD.
        """
        definition = self.definition
        ordered = list(entries) if presorted else self.sort_entries(entries)
        offset_array = self.compute_offset_array(ordered)
        synopsis = Synopsis.from_entries(definition, ordered)

        # Slice into data blocks of ~data_block_bytes each.
        block_metas: List[DataBlockMeta] = []
        block_payloads: List[bytes] = []
        current: List[IndexEntry] = []
        current_bytes = 0
        for entry in ordered:
            encoded_len = len(entry.to_bytes(definition))
            if current and current_bytes + encoded_len > self.data_block_bytes:
                self._seal_block(current, block_metas, block_payloads)
                current = []
                current_bytes = 0
            current.append(entry)
            current_bytes += encoded_len
        if current:
            self._seal_block(current, block_metas, block_payloads)

        if ordered:
            min_ts = min(e.begin_ts for e in ordered)
            max_ts = max(e.begin_ts for e in ordered)
        else:
            min_ts = max_ts = 0

        bloom_blob = None
        if self.bloom_fpr is not None and ordered:
            from repro.core.bloom import BloomFilter

            distinct = {e.key_bytes(definition) for e in ordered}
            bloom = BloomFilter.for_capacity(len(distinct), self.bloom_fpr)
            bloom.add_all(distinct)
            bloom_blob = bloom.to_bytes()

        header = RunHeader(
            run_id=run_id,
            zone=zone,
            level=level,
            min_groomed_id=min_groomed_id,
            max_groomed_id=max_groomed_id,
            entry_count=len(ordered),
            synopsis=synopsis,
            offset_array=offset_array,
            block_meta=tuple(block_metas),
            min_begin_ts=min_ts,
            max_begin_ts=max_ts,
            persisted=persisted,
            ancestor_run_ids=tuple(ancestor_run_ids),
            bloom_blob=bloom_blob,
        )

        self._write_blocks(header, block_payloads, write_through_ssd, spill_to_ssd)
        return IndexRun(definition, header, self.hierarchy)

    # -- internals -----------------------------------------------------------------------

    def _seal_block(
        self,
        entries: List[IndexEntry],
        metas: List[DataBlockMeta],
        payloads: List[bytes],
    ) -> None:
        payload = encode_data_block(self.definition, entries)
        metas.append(
            DataBlockMeta(
                entry_count=len(entries),
                first_sort_key=entries[0].sort_key(self.definition),
                size_bytes=len(payload),
            )
        )
        payloads.append(payload)

    def _write_blocks(
        self,
        header: RunHeader,
        payloads: List[bytes],
        write_through_ssd: bool,
        spill_to_ssd: bool,
    ) -> None:
        header_block = Block(
            BlockId(header.run_id, 0), header.to_bytes(self.definition)
        )
        data_blocks = [
            Block(BlockId(header.run_id, i + 1), payload)
            for i, payload in enumerate(payloads)
        ]
        if header.persisted:
            # Header goes first so a crash mid-write leaves a detectably
            # incomplete run (recovery checks data blocks against the header).
            self.hierarchy.write_persisted(header_block, write_through_ssd)
            for block in data_blocks:
                self.hierarchy.write_persisted(block, write_through_ssd)
        else:
            self.hierarchy.write_cached_only(header_block, spill_to_ssd)
            for block in data_blocks:
                self.hierarchy.write_cached_only(block, spill_to_ssd)


__all__ = ["RunBuilder", "DEFAULT_DATA_BLOCK_BYTES"]
