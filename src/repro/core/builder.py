"""Building index runs (paper section 5.2).

Index build "is done by simply scanning the data block and sorting index
entries" in run order, writing fixed-size data blocks and computing the
offset array on the fly.  The builder is the single primitive shared by
index build (after a groom), merge, and evolve -- they differ only in where
the input entries come from and which level/zone the run lands in.

Two input shapes are accepted:

* :meth:`RunBuilder.build` takes decoded :class:`IndexEntry` objects
  (groom, evolve, tests) and serializes each once;
* :meth:`RunBuilder.build_from_blobs` takes pre-serialized
  ``(sort_key, entry_blob)`` pairs (the K-way merge path) and copies them
  verbatim -- merged entries are never decoded and re-encoded.  Everything
  derivable from raw sort keys (offset array, begin-TS range, Bloom
  filter, block index) is computed from the bytes; only the synopsis,
  whose per-column min/max needs decoded values, is supplied by the
  caller (merges pass the union of the input synopses).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.definition import IndexDefinition
from repro.core.entry import (
    IndexEntry,
    SORT_KEY_TS_BYTES,
    Zone,
    begin_ts_of_sort_key,
)
from repro.core.run import (
    DataBlockMeta,
    IndexRun,
    RunHeader,
    Synopsis,
    block_checksum,
    encode_data_block_from_blobs,
)
from repro.core.encoding import high_bits
from repro.faults.crash import crash_point
from repro.storage.block import Block, BlockId
from repro.storage.hierarchy import StorageHierarchy

DEFAULT_DATA_BLOCK_BYTES = 32 * 1024


class RunBuilder:
    """Builds one immutable run from a bag of entries.

    Parameters
    ----------
    definition:
        Index shape; controls entry order, offset array and synopsis.
    hierarchy:
        Storage to write blocks into.
    data_block_bytes:
        Target data-block size.  Shared storage prefers few large blocks;
        benchmarks default to 32 KiB scaled-down blocks.
    """

    def __init__(
        self,
        definition: IndexDefinition,
        hierarchy: StorageHierarchy,
        data_block_bytes: int = DEFAULT_DATA_BLOCK_BYTES,
        bloom_fpr: Optional[float] = None,
    ) -> None:
        if data_block_bytes <= 0:
            raise ValueError("data_block_bytes must be positive")
        self.definition = definition
        self.hierarchy = hierarchy
        self.data_block_bytes = data_block_bytes
        # When set, every built run carries a Bloom filter over its
        # distinct key bytes with this false-positive rate (extension).
        self.bloom_fpr = bloom_fpr

    # -- entry ordering -----------------------------------------------------------

    def sort_entries(self, entries: Iterable[IndexEntry]) -> List[IndexEntry]:
        """Sort into run order: hash | eq cols | sort cols | beginTS desc."""
        definition = self.definition
        return sorted(entries, key=lambda e: e.sort_key(definition))

    # -- offset array ----------------------------------------------------------------

    def compute_offset_array(self, sorted_entries: Sequence[IndexEntry]) -> Tuple[int, ...]:
        """``offset[b]`` = ordinal of the first entry with hash high-bits >= b.

        Matches the paper's Figure 2b; ``offset_array_size`` buckets, and a
        query for bucket ``i`` searches ``[offset[i], offset[i+1])`` (with
        the entry count as the implicit final fence).
        """
        return self._offset_array_from_hashes(
            [e.hash_value for e in sorted_entries]
        )

    def _offset_array_from_hashes(self, hashes: Sequence[int]) -> Tuple[int, ...]:
        definition = self.definition
        size = definition.offset_array_size
        if size == 0:
            return ()
        nbits = definition.hash_bits
        counts = [0] * size
        for hash_value in hashes:
            counts[high_bits(hash_value, nbits)] += 1
        offsets: List[int] = []
        running = 0
        for bucket in range(size):
            offsets.append(running)
            running += counts[bucket]
        return tuple(offsets)

    # -- build -------------------------------------------------------------------------

    def build(
        self,
        run_id: str,
        entries: Iterable[IndexEntry],
        zone: Zone,
        level: int,
        min_groomed_id: int,
        max_groomed_id: int,
        persisted: bool = True,
        write_through_ssd: bool = True,
        spill_to_ssd: bool = False,
        ancestor_run_ids: Sequence[str] = (),
        presorted: bool = False,
    ) -> IndexRun:
        """Sort, slice into data blocks, write, and return the run handle.

        ``persisted`` selects the durable path (shared storage +
        write-through SSD); non-persisted runs go to memory only (section
        6.1), optionally spilling to SSD.
        """
        definition = self.definition
        # Encode once: each entry serializes to (sort_key, blob) a single
        # time and the run order comes from sorting the raw key slices --
        # the old sort-then-serialize path encoded every sort key twice
        # (once for the sort key function, once inside to_blob).
        materialized = list(entries)
        synopsis = Synopsis.from_entries(definition, materialized)
        pairs = [entry.to_blob(definition) for entry in materialized]
        if not presorted:
            pairs.sort(key=lambda pair: pair[0])
        return self._build_common(
            run_id=run_id,
            blob_pairs=pairs,
            synopsis=synopsis,
            zone=zone,
            level=level,
            min_groomed_id=min_groomed_id,
            max_groomed_id=max_groomed_id,
            persisted=persisted,
            write_through_ssd=write_through_ssd,
            spill_to_ssd=spill_to_ssd,
            ancestor_run_ids=ancestor_run_ids,
        )

    def build_from_blobs(
        self,
        run_id: str,
        blob_pairs: Iterable[Tuple[bytes, bytes]],
        synopsis: Synopsis,
        zone: Zone,
        level: int,
        min_groomed_id: int,
        max_groomed_id: int,
        persisted: bool = True,
        write_through_ssd: bool = True,
        spill_to_ssd: bool = False,
        ancestor_run_ids: Sequence[str] = (),
    ) -> IndexRun:
        """Build a run from pre-serialized, pre-sorted entry blobs.

        ``blob_pairs`` yields ``(sort_key, entry_blob)`` in sort-key order
        (the shape :meth:`IndexRun.iter_raw` and the blob-level merge
        produce).  No entry is decoded: the offset array reads the hash
        from the first 8 sort-key bytes, begin-TS bounds come from the
        8-byte suffix, and the Bloom filter hashes raw user-key slices.
        """
        return self._build_common(
            run_id=run_id,
            blob_pairs=list(blob_pairs),
            synopsis=synopsis,
            zone=zone,
            level=level,
            min_groomed_id=min_groomed_id,
            max_groomed_id=max_groomed_id,
            persisted=persisted,
            write_through_ssd=write_through_ssd,
            spill_to_ssd=spill_to_ssd,
            ancestor_run_ids=ancestor_run_ids,
        )

    # -- internals -----------------------------------------------------------------------

    def _build_common(
        self,
        run_id: str,
        blob_pairs: List[Tuple[bytes, bytes]],
        synopsis: Synopsis,
        zone: Zone,
        level: int,
        min_groomed_id: int,
        max_groomed_id: int,
        persisted: bool,
        write_through_ssd: bool,
        spill_to_ssd: bool,
        ancestor_run_ids: Sequence[str],
    ) -> IndexRun:
        definition = self.definition
        if definition.has_hash_column:
            # The sort key starts with the 8-byte big-endian hash column.
            offset_array = self._offset_array_from_hashes(
                [int.from_bytes(sk[:8], "big") for sk, _blob in blob_pairs]
            )
        else:
            offset_array = ()

        # Slice into data blocks of ~data_block_bytes each.
        block_metas: List[DataBlockMeta] = []
        block_payloads: List[bytes] = []
        current: List[Tuple[bytes, bytes]] = []
        current_bytes = 0
        for pair in blob_pairs:
            blob_len = len(pair[1])
            if current and current_bytes + blob_len > self.data_block_bytes:
                self._seal_block(current, block_metas, block_payloads)
                current = []
                current_bytes = 0
            current.append(pair)
            current_bytes += blob_len
        if current:
            self._seal_block(current, block_metas, block_payloads)

        if blob_pairs:
            ts_values = [begin_ts_of_sort_key(sk) for sk, _blob in blob_pairs]
            min_ts = min(ts_values)
            max_ts = max(ts_values)
        else:
            min_ts = max_ts = 0

        bloom_blob = None
        if self.bloom_fpr is not None and blob_pairs:
            from repro.core.bloom import BloomFilter

            distinct = {sk[:-SORT_KEY_TS_BYTES] for sk, _blob in blob_pairs}
            bloom = BloomFilter.for_capacity(len(distinct), self.bloom_fpr)
            bloom.add_all(distinct)
            bloom_blob = bloom.to_bytes()

        header = RunHeader(
            run_id=run_id,
            zone=zone,
            level=level,
            min_groomed_id=min_groomed_id,
            max_groomed_id=max_groomed_id,
            entry_count=len(blob_pairs),
            synopsis=synopsis,
            offset_array=offset_array,
            block_meta=tuple(block_metas),
            min_begin_ts=min_ts,
            max_begin_ts=max_ts,
            persisted=persisted,
            ancestor_run_ids=tuple(ancestor_run_ids),
            bloom_blob=bloom_blob,
        )

        self._write_blocks(header, block_payloads, write_through_ssd, spill_to_ssd)
        return IndexRun(definition, header, self.hierarchy)

    def _seal_block(
        self,
        blob_pairs: List[Tuple[bytes, bytes]],
        metas: List[DataBlockMeta],
        payloads: List[bytes],
    ) -> None:
        payload = encode_data_block_from_blobs(blob_pairs)
        metas.append(
            DataBlockMeta(
                entry_count=len(blob_pairs),
                first_sort_key=blob_pairs[0][0],
                size_bytes=len(payload),
                # Recovery re-validates the run by checksumming raw
                # payloads against this -- no entry decodes on the clean
                # path (and the journal uses it for torn-write detection).
                checksum=block_checksum(payload),
            )
        )
        payloads.append(payload)

    def _write_blocks(
        self,
        header: RunHeader,
        payloads: List[bytes],
        write_through_ssd: bool,
        spill_to_ssd: bool,
    ) -> None:
        header_block = Block(
            BlockId(header.run_id, 0), header.to_bytes(self.definition)
        )
        data_blocks = [
            Block(BlockId(header.run_id, i + 1), payload)
            for i, payload in enumerate(payloads)
        ]
        if header.persisted:
            # Header goes first so a crash mid-write leaves a detectably
            # incomplete run (recovery checks data blocks against the header).
            crash_point("builder.pre_persist")
            self.hierarchy.write_persisted(header_block, write_through_ssd)
            for block in data_blocks:
                crash_point("builder.data_block")
                self.hierarchy.write_persisted(block, write_through_ssd)
            crash_point("builder.post_persist")
        else:
            self.hierarchy.write_cached_only(header_block, spill_to_ssd)
            for block in data_blocks:
                self.hierarchy.write_cached_only(block, spill_to_ssd)


__all__ = ["RunBuilder", "DEFAULT_DATA_BLOCK_BYTES"]
