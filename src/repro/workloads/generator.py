"""Key and update-workload generators (paper sections 8.1, 8.4).

Keys are abstract integers ``k`` produced sequentially (time-correlated,
so runs cover disjoint ranges and synopses prune well) or randomly
(uniform, so every run overlaps every query).  A :class:`KeyMapper`
projects ``k`` onto a concrete index definition's equality / sort /
included columns -- the paper's generator likewise emits "keys with
include columns" rather than full records.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.core.definition import IndexDefinition
from repro.core.encoding import KeyValue


class KeyMode(str, enum.Enum):
    SEQUENTIAL = "sequential"
    RANDOM = "random"


class KeyGenerator:
    """Deterministic source of abstract integer keys."""

    def __init__(
        self,
        mode: KeyMode = KeyMode.SEQUENTIAL,
        seed: int = 7,
        key_space: int = 1 << 40,
    ) -> None:
        self.mode = mode
        self.key_space = key_space
        self._rng = random.Random(seed)
        self._next_sequential = 0

    def next_key(self) -> int:
        if self.mode is KeyMode.SEQUENTIAL:
            key = self._next_sequential
            self._next_sequential += 1
            return key
        return self._rng.randrange(self.key_space)

    def next_batch(self, count: int) -> List[int]:
        return [self.next_key() for _ in range(count)]

    @property
    def generated(self) -> int:
        """Keys emitted so far (sequential mode only advances this)."""
        return self._next_sequential


@dataclass(frozen=True)
class KeyMapper:
    """Projects an abstract key onto one index definition's columns.

    Every equality and sort column receives a value derived from ``k`` so
    the full composite key is unique per ``k`` regardless of definition
    shape; included columns carry a deterministic payload.  ``spread``
    controls how an equality column groups keys (e.g. device id = k //
    spread gives ``spread`` messages per device).
    """

    definition: IndexDefinition
    spread: int = 1

    def equality_values(self, k: int) -> Tuple[KeyValue, ...]:
        n = len(self.definition.equality_columns)
        if n == 0:
            return ()
        if len(self.definition.sort_columns) > 0:
            # eq columns group keys; the sort column disambiguates.
            base = k // self.spread if self.spread > 1 else k
        else:
            base = k
        # Multiple equality columns split the key value deterministically.
        return tuple(base + i for i in range(n))

    def sort_values(self, k: int) -> Tuple[KeyValue, ...]:
        n = len(self.definition.sort_columns)
        if n == 0:
            return ()
        first = k % self.spread if self.spread > 1 else k
        return (first,) + tuple(k + i for i in range(1, n))

    def include_values(self, k: int) -> Tuple[KeyValue, ...]:
        return tuple(
            k * 10 + i for i in range(len(self.definition.included_columns))
        )

    def key_columns(self, k: int) -> Tuple[Tuple[KeyValue, ...], Tuple[KeyValue, ...]]:
        return self.equality_values(k), self.sort_values(k)


class IoTUpdateWorkload:
    """The section 8.4 update model, per groom cycle.

    "The ingested data for the latest groom cycle updates p% of data from
    the last groom cycle, and 0.1 x p% of data from the last 50 cycles,
    and 0.01 x p% of data in the last 100 cycles"; the remainder of the
    cycle's budget is fresh keys.
    """

    def __init__(
        self,
        records_per_cycle: int,
        update_percent: float = 10.0,
        seed: int = 11,
    ) -> None:
        if records_per_cycle < 1:
            raise ValueError("records_per_cycle must be >= 1")
        if not 0.0 <= update_percent <= 100.0:
            raise ValueError("update_percent must be within [0, 100]")
        self.records_per_cycle = records_per_cycle
        self.update_percent = update_percent
        self._rng = random.Random(seed)
        self._history: List[List[int]] = []  # keys ingested per cycle
        self._next_fresh = 0

    def next_cycle(self) -> List[int]:
        """Keys (fresh + updates) for the next groom cycle."""
        budget = self.records_per_cycle
        p = self.update_percent / 100.0
        updates: List[int] = []
        if self._history:
            updates.extend(
                self._sample(self._history[-1:], int(round(budget * p)))
            )
            updates.extend(
                self._sample(self._history[-50:], int(round(budget * p * 0.1)))
            )
            updates.extend(
                self._sample(self._history[-100:], int(round(budget * p * 0.01)))
            )
            updates = updates[:budget]
        fresh_count = budget - len(updates)
        fresh = list(
            range(self._next_fresh, self._next_fresh + fresh_count)
        )
        self._next_fresh += fresh_count
        cycle_keys = fresh + updates
        self._rng.shuffle(cycle_keys)
        self._history.append(cycle_keys)
        return cycle_keys

    def _sample(self, cycles: Sequence[List[int]], count: int) -> List[int]:
        pool = [key for cycle in cycles for key in cycle]
        if not pool or count <= 0:
            return []
        return [self._rng.choice(pool) for _ in range(count)]

    @property
    def keys_ingested(self) -> int:
        return sum(len(cycle) for cycle in self._history)

    def known_keys(self) -> List[int]:
        """Distinct keys ingested so far (query-target sampling)."""
        return sorted({key for cycle in self._history for key in cycle})


__all__ = ["IoTUpdateWorkload", "KeyGenerator", "KeyMapper", "KeyMode"]
