"""Mixed HTAP operation streams.

The paper's end-to-end experiments run ingest and lookup batches
concurrently at a fixed cadence; real HTAP front-ends interleave more
operation kinds.  This module generates deterministic mixed streams --
upserts, point lookups, range scans, and time-travel reads over previously
observed snapshots -- with configurable weights, for soak tests and
user-defined benchmarks.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.workloads.generator import IoTUpdateWorkload


class OpKind(str, enum.Enum):
    UPSERT_BATCH = "upsert_batch"
    POINT_LOOKUP = "point_lookup"
    RANGE_SCAN = "range_scan"
    TIME_TRAVEL = "time_travel"


@dataclass(frozen=True)
class Operation:
    """One operation of the mixed stream.

    ``keys`` carries the abstract workload keys involved (upsert batches,
    lookup targets, or the scan anchor); ``scan_range`` is set for range
    scans; ``snapshot_back`` tells time-travel reads how many observed
    snapshots to rewind.
    """

    kind: OpKind
    keys: Tuple[int, ...] = ()
    scan_range: int = 0
    snapshot_back: int = 0


@dataclass(frozen=True)
class MixWeights:
    """Relative operation frequencies (normalized internally)."""

    upsert_batch: float = 0.40
    point_lookup: float = 0.40
    range_scan: float = 0.15
    time_travel: float = 0.05

    def normalized(self) -> List[Tuple[OpKind, float]]:
        pairs = [
            (OpKind.UPSERT_BATCH, self.upsert_batch),
            (OpKind.POINT_LOOKUP, self.point_lookup),
            (OpKind.RANGE_SCAN, self.range_scan),
            (OpKind.TIME_TRAVEL, self.time_travel),
        ]
        total = sum(weight for _, weight in pairs)
        if total <= 0:
            raise ValueError("at least one operation weight must be positive")
        return [(kind, weight / total) for kind, weight in pairs]


class MixedWorkload:
    """Deterministic mixed-operation stream over an evolving key set.

    Upserts follow the paper's IoT update model; reads target keys that
    have actually been written, so every generated lookup is answerable.
    """

    def __init__(
        self,
        records_per_upsert: int = 50,
        update_percent: float = 10.0,
        lookup_batch: int = 20,
        max_scan_range: int = 200,
        weights: Optional[MixWeights] = None,
        seed: int = 31,
    ) -> None:
        if lookup_batch < 1:
            raise ValueError("lookup_batch must be >= 1")
        if max_scan_range < 1:
            raise ValueError("max_scan_range must be >= 1")
        self._ingest = IoTUpdateWorkload(
            records_per_upsert, update_percent, seed=seed
        )
        self._rng = random.Random(seed + 1)
        self.lookup_batch = lookup_batch
        self.max_scan_range = max_scan_range
        self._weights = (weights or MixWeights()).normalized()
        self._snapshots_observed = 0

    @property
    def keys_written(self) -> int:
        return self._ingest.keys_ingested

    def note_snapshot(self) -> None:
        """Record that the driver captured one more snapshot timestamp."""
        self._snapshots_observed += 1

    def next_operation(self) -> Operation:
        """Draw the next operation.

        The first operation is always an upsert batch so reads never
        target an empty table.
        """
        if self._ingest.keys_ingested == 0:
            return Operation(
                OpKind.UPSERT_BATCH, tuple(self._ingest.next_cycle())
            )
        roll = self._rng.random()
        cumulative = 0.0
        kind = OpKind.UPSERT_BATCH
        for candidate, weight in self._weights:
            cumulative += weight
            if roll < cumulative:
                kind = candidate
                break
        if kind is OpKind.UPSERT_BATCH:
            return Operation(kind, tuple(self._ingest.next_cycle()))
        if kind is OpKind.POINT_LOOKUP:
            population = self._ingest.keys_ingested
            keys = tuple(
                self._rng.randrange(population)
                for _ in range(self.lookup_batch)
            )
            return Operation(kind, keys)
        if kind is OpKind.RANGE_SCAN:
            population = self._ingest.keys_ingested
            anchor = self._rng.randrange(population)
            span = self._rng.randint(1, self.max_scan_range)
            return Operation(kind, (anchor,), scan_range=span)
        # TIME_TRAVEL: rewind 1..N observed snapshots (0 when none yet).
        back = (
            self._rng.randint(1, self._snapshots_observed)
            if self._snapshots_observed
            else 0
        )
        population = self._ingest.keys_ingested
        key = self._rng.randrange(population)
        return Operation(OpKind.TIME_TRAVEL, (key,), snapshot_back=back)

    def stream(self, count: int) -> List[Operation]:
        return [self.next_operation() for _ in range(count)]


__all__ = ["MixWeights", "MixedWorkload", "OpKind", "Operation"]
