"""Synthetic workload generators from the paper's evaluation (section 8).

* :class:`~repro.workloads.generator.KeyGenerator` -- sequential or random
  keys ("sequential keys ... simulate the time correlated keys, while
  random keys are randomly sampled from a uniform distribution").
* :class:`~repro.workloads.generator.IoTUpdateWorkload` -- the update-rate
  model of section 8.4: each groom cycle updates p% of the previous
  cycle's data, 0.1*p% of the last 50 cycles, and 0.01*p% of the last 100
  cycles.
* :mod:`repro.workloads.queries` -- sequential/random lookup batches and
  range-scan batches.

Everything is seeded and deterministic.
"""

from repro.workloads.generator import (
    IoTUpdateWorkload,
    KeyGenerator,
    KeyMapper,
    KeyMode,
)
from repro.workloads.mixed import MixWeights, MixedWorkload, OpKind, Operation
from repro.workloads.queries import QueryBatchGenerator

__all__ = [
    "IoTUpdateWorkload",
    "KeyGenerator",
    "KeyMapper",
    "KeyMode",
    "MixWeights",
    "MixedWorkload",
    "OpKind",
    "Operation",
    "QueryBatchGenerator",
]
