"""Query batch generators (paper section 8.3).

"We further consider two kinds of key distribution in index queries:
sequential and random.  As the name suggests, sequential and random
queries use sequentially and randomly generated keys in a batch."
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.core.definition import IndexDefinition
from repro.core.query import PointLookup, RangeScanQuery, MAX_QUERY_TS
from repro.workloads.generator import KeyMapper


class QueryBatchGenerator:
    """Builds lookup / scan batches over a known key population."""

    def __init__(
        self,
        mapper: KeyMapper,
        key_population: int,
        seed: int = 23,
    ) -> None:
        if key_population < 1:
            raise ValueError("key_population must be >= 1")
        self.mapper = mapper
        self.key_population = key_population
        self._rng = random.Random(seed)

    # -- lookup batches ----------------------------------------------------------------

    def sequential_batch(
        self, batch_size: int, query_ts: int = MAX_QUERY_TS
    ) -> List[PointLookup]:
        """A contiguous window of keys starting at a random position."""
        start = self._rng.randrange(max(1, self.key_population - batch_size + 1))
        return [
            self._lookup(start + i, query_ts)
            for i in range(min(batch_size, self.key_population))
        ]

    def random_batch(
        self, batch_size: int, query_ts: int = MAX_QUERY_TS
    ) -> List[PointLookup]:
        """Uniformly random keys from the population."""
        return [
            self._lookup(self._rng.randrange(self.key_population), query_ts)
            for _ in range(batch_size)
        ]

    def batch_from_keys(
        self, keys: Sequence[int], query_ts: int = MAX_QUERY_TS
    ) -> List[PointLookup]:
        return [self._lookup(k, query_ts) for k in keys]

    def _lookup(self, k: int, query_ts: int) -> PointLookup:
        eq, sort = self.mapper.key_columns(k)
        return PointLookup(eq, sort, query_ts)

    # -- scan batches ---------------------------------------------------------------------

    def sequential_scan(
        self, scan_range: int, query_ts: int = MAX_QUERY_TS
    ) -> RangeScanQuery:
        """A range starting right after the previous sequential position."""
        start = self._rng.randrange(max(1, self.key_population - scan_range + 1))
        return self._scan(start, scan_range, query_ts)

    def random_scan(
        self, scan_range: int, query_ts: int = MAX_QUERY_TS
    ) -> RangeScanQuery:
        start = self._rng.randrange(max(1, self.key_population))
        return self._scan(start, scan_range, query_ts)

    def _scan(self, start: int, scan_range: int, query_ts: int) -> RangeScanQuery:
        definition = self.mapper.definition
        if not definition.sort_columns:
            raise ValueError("range scans need at least one sort column")
        eq, sort_low = self.mapper.key_columns(start)
        # Scan over the first sort column; spread>1 maps a key window onto
        # one equality group, plain mapping scans within eq=start's group.
        low = sort_low[:1]
        high = (low[0] + scan_range - 1,)
        return RangeScanQuery(
            equality_values=eq,
            sort_lower=low,
            sort_upper=high,
            query_ts=query_ts,
        )


__all__ = ["QueryBatchGenerator"]
