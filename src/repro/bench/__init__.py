"""Experiment harness regenerating every figure of the paper's section 8.

:mod:`repro.bench.harness` provides the sweep/normalize/print machinery;
:mod:`repro.bench.experiments` implements one function per paper figure
(8 through 15) plus the design-choice ablations called out in DESIGN.md.

Absolute numbers are meaningless here (pure Python vs the paper's C++ on a
28-core Xeon) -- and the paper itself only publishes normalized numbers.
Every experiment therefore reports series normalized exactly the way the
corresponding figure is, and asserts the *shape* claims the paper makes
(who wins, what grows linearly, where behaviour is flat).
"""

from repro.bench.harness import ExperimentResult, Series, measure_wall_s
from repro.bench import experiments

__all__ = ["ExperimentResult", "Series", "experiments", "measure_wall_s"]
