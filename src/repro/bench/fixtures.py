"""Shared builders for benchmark experiments."""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Tuple

from repro.core.builder import RunBuilder
from repro.core.definition import (
    IndexDefinition,
    i1_definition,
    i2_definition,
    i3_definition,
)
from repro.core.entry import IndexEntry, RID, Zone
from repro.core.index import UmziConfig, UmziIndex
from repro.core.levels import LevelConfig
from repro.core.run import IndexRun
from repro.storage.hierarchy import StorageHierarchy
from repro.workloads.generator import KeyGenerator, KeyMapper, KeyMode

DEFINITIONS: List[Tuple[str, Callable[[], IndexDefinition]]] = [
    ("I1", i1_definition),
    ("I2", i2_definition),
    ("I3", i3_definition),
]


def entries_for_keys(
    definition: IndexDefinition,
    keys: List[int],
    mapper: Optional[KeyMapper] = None,
    ts_start: int = 1,
    zone: Zone = Zone.GROOMED,
    block_id: int = 0,
) -> List[IndexEntry]:
    """Index entries for abstract keys, beginTS following ingest order."""
    mapper = mapper if mapper is not None else KeyMapper(definition)
    entries = []
    for i, k in enumerate(keys):
        eq = mapper.equality_values(k)
        sort = mapper.sort_values(k)
        incl = mapper.include_values(k)
        entries.append(
            IndexEntry.create(
                definition, eq, sort, incl, ts_start + i, RID(zone, block_id, i)
            )
        )
    return entries


def build_single_run(
    definition: IndexDefinition,
    n: int,
    mapper: Optional[KeyMapper] = None,
    data_block_bytes: int = 32 * 1024,
) -> Tuple[IndexRun, StorageHierarchy]:
    """One run of ``n`` sequentially-keyed entries."""
    hierarchy = StorageHierarchy()
    builder = RunBuilder(definition, hierarchy, data_block_bytes)
    entries = entries_for_keys(definition, list(range(n)), mapper)
    run = builder.build("bench-run", entries, Zone.GROOMED, 0, 0, 0)
    return run, hierarchy


def build_index_with_runs(
    definition: IndexDefinition,
    num_runs: int,
    entries_per_run: int,
    key_mode: KeyMode = KeyMode.SEQUENTIAL,
    mapper: Optional[KeyMapper] = None,
    seed: int = 7,
    merge: bool = False,
) -> UmziIndex:
    """An index holding ``num_runs`` level-0 runs (paper section 8.3 setup:
    'an index contains 20 runs, where each index run has 100000 entries').

    Sequential mode gives each run a disjoint key range (time-correlated
    ingest); random mode samples every run's keys uniformly from the whole
    key space, so run synopses stop pruning.
    """
    total = num_runs * entries_per_run
    levels = LevelConfig(
        groomed_levels=4, post_groomed_levels=3,
        max_runs_per_level=max(num_runs + 1, 4), size_ratio=4,
    )
    index = UmziIndex(
        definition,
        config=UmziConfig(name=f"bench-{key_mode.value}", levels=levels),
    )
    mapper = mapper if mapper is not None else KeyMapper(definition)
    generator = KeyGenerator(key_mode, seed=seed, key_space=total)
    ts = 1
    for gid in range(num_runs):
        if key_mode is KeyMode.SEQUENTIAL:
            keys = list(range(gid * entries_per_run, (gid + 1) * entries_per_run))
        else:
            keys = generator.next_batch(entries_per_run)
        index.add_groomed_run(
            entries_for_keys(definition, keys, mapper, ts_start=ts, block_id=gid),
            gid, gid,
        )
        ts += entries_per_run
    if merge:
        index.run_maintenance()
    return index


__all__ = [
    "DEFINITIONS",
    "build_index_with_runs",
    "build_single_run",
    "entries_for_keys",
]
