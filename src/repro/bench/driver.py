"""Closed-loop Zipfian cluster driver (ISSUE 8).

A deterministic load generator for :class:`~repro.wildfire.cluster
.ShardedTable`: thousands of simulated clients issue a skewed
point/range/ingest mix against a keyspace of up to millions of devices,
and every number the driver reports -- throughput, p50/p99 latency,
hit/miss/error counts -- is computed on **simulated nanoseconds** from
the cluster's own ledgers.  There is no wall-clock measurement anywhere
in this module, so two runs with the same seed produce byte-identical
reports (the property the A14 benchmark asserts and CI diffs).

Skew follows the standard Zipfian generator of Gray et al. (SIGMOD'94),
the same construction YCSB uses: rank 0 is the hottest key, and with the
default ``theta=0.99`` a few thousand warm ranks absorb the bulk of a
million-key draw -- which is what makes a *closed-loop* driver (each
client waits for its answer before thinking for ``think_ns``) feel a
shard split: the hot slot's latency is every client's latency.

The driver is schema-opinionated on purpose: it drives the ``iot``
benchmark schema used across the suite (``device`` sharding key,
``msg`` sort key, one ``reading`` payload), with warm keys ingested by
:meth:`ClosedLoopDriver.warm` and verified on every hit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.qos.errors import PartialResultError, QosError
from repro.storage.retry import TransientIOError

# Fresh rows written by ingest ops start their ``msg`` sequence here so
# they can never collide with (or be queried as) warm keys.
INGEST_MSG_BASE = 1_000_000

_ZETA_CACHE: Dict[Tuple[int, float], float] = {}


def _zeta(n: int, theta: float) -> float:
    """Generalized harmonic number sum(1/i^theta), cached per (n, theta)."""
    key = (n, theta)
    cached = _ZETA_CACHE.get(key)
    if cached is None:
        cached = sum(1.0 / (i ** theta) for i in range(1, n + 1))
        _ZETA_CACHE[key] = cached
    return cached


class ZipfianGenerator:
    """Zipfian ranks over ``[0, n)`` (Gray et al., the YCSB construction).

    ``sample()`` returns a rank: 0 is the hottest item, and item
    popularity decays as ``1/rank^theta``.  Ranks map 1:1 to device ids,
    so "the hottest device" is simply device 0.
    """

    def __init__(self, n: int, theta: float = 0.99, seed: int = 0) -> None:
        if n < 1:
            raise ValueError("zipfian domain must be non-empty")
        if not 0.0 < theta < 1.0:
            raise ValueError("theta must be in (0, 1)")
        self.n = n
        self.theta = theta
        self._rng = random.Random(seed)
        zetan = _zeta(n, theta)
        zeta2 = _zeta(2, theta)
        self._zetan = zetan
        self._alpha = 1.0 / (1.0 - theta)
        self._eta = (1.0 - (2.0 / n) ** (1.0 - theta)) / (1.0 - zeta2 / zetan)

    def sample(self) -> int:
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(self.n * (self._eta * u - self._eta + 1.0) ** self._alpha)


def percentile_ns(values, pct: int) -> float:
    """Nearest-rank percentile (the suite's _p99 convention, generalized)."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    return float(ordered[(pct * (len(ordered) - 1)) // 100])


@dataclass(frozen=True)
class DriverReport:
    """One run's deterministic outcome (tuples, so ``==`` is replay-exact)."""

    ops: int
    points: int
    hits: int
    misses: int  # warm key answered None -- a correctness failure
    cold: int  # un-warmed key answered None -- expected
    wrong: int  # hit with the wrong payload
    ranges: int
    range_rows: int
    ingests: int
    ingested_rows: int
    shed: int
    errors: int
    partials: int
    sim_elapsed_ns: int
    latencies_ns: Tuple[int, ...]

    @property
    def qps(self) -> float:
        """Closed-loop throughput on the simulated clock."""
        if self.sim_elapsed_ns <= 0:
            return 0.0
        return self.ops / (self.sim_elapsed_ns / 1e9)

    def latency_ns(self, pct: int) -> float:
        return percentile_ns(self.latencies_ns, pct)

    def summary(self) -> Dict[str, float]:
        return {
            "ops": float(self.ops),
            "qps": self.qps,
            "p50_ns": self.latency_ns(50),
            "p99_ns": self.latency_ns(99),
            "hits": float(self.hits),
            "misses": float(self.misses),
            "cold": float(self.cold),
            "wrong": float(self.wrong),
            "range_rows": float(self.range_rows),
            "ingested_rows": float(self.ingested_rows),
            "shed": float(self.shed),
            "errors": float(self.errors),
            "partials": float(self.partials),
            "sim_elapsed_ns": float(self.sim_elapsed_ns),
        }


class ClosedLoopDriver:
    """Thousands of closed-loop clients over one :class:`ShardedTable`.

    Clients are simulated round-robin: operation ``i`` belongs to client
    ``i % clients``, and once per full client round the cluster's arrival
    clock advances by ``think_ns`` (every client thought once).  The op
    mix is drawn per-operation from a seeded RNG: ``point_fraction`` of
    point lookups, ``range_fraction`` of per-device range scans, and the
    remainder single-row ingests of brand-new keys.

    Only warmed keys are point-queried with an expected answer, so every
    miss on them is a real correctness failure (``misses``/``wrong``),
    never a grooming-lag artifact; freshly ingested keys are deliberately
    not queried back.
    """

    def __init__(
        self,
        table,
        clients: int = 1000,
        keyspace: int = 1_000_000,
        theta: float = 0.99,
        seed: int = 0,
        think_ns: int = 50_000,
        point_fraction: float = 0.85,
        range_fraction: float = 0.05,
        value_of=lambda device, msg: device * 31 + msg,
    ) -> None:
        if clients < 1:
            raise ValueError("need at least one client")
        self.table = table
        self.clients = clients
        self.think_ns = think_ns
        self._zipf = ZipfianGenerator(keyspace, theta=theta, seed=seed)
        self._rng = random.Random(seed + 1)
        self._point_cut = point_fraction
        self._range_cut = point_fraction + range_fraction
        self._value_of = value_of
        self._warm: Dict[int, int] = {}  # device -> msgs warmed (1..count)
        self._next_msg: Dict[int, int] = {}

    # -- workload setup -------------------------------------------------------------

    def warm(self, devices: int, msgs_per_device: int = 1, batch: int = 512) -> int:
        """Ingest the warm working set (ranks ``0..devices-1``), batched."""
        rows: List[Tuple[int, int, int]] = []
        for device in range(devices):
            self._warm[device] = msgs_per_device
            for msg in range(1, msgs_per_device + 1):
                rows.append((device, msg, self._value_of(device, msg)))
        for start in range(0, len(rows), batch):
            self.table.ingest(rows[start : start + batch])
        return len(rows)

    # -- the closed loop ------------------------------------------------------------

    def run(self, ops: int) -> DriverReport:
        """Drive ``ops`` operations; returns the deterministic report."""
        table = self.table
        points = hits = misses = cold = wrong = 0
        ranges = range_rows = ingests = ingested_rows = 0
        shed = errors = partials = 0
        latencies: List[int] = []
        start_ns = table.sim_now()
        for i in range(ops):
            if i % self.clients == 0:
                table.advance_clock(self.think_ns)
            device = self._zipf.sample()
            draw = self._rng.random()
            before = table.sim_now()
            try:
                if draw < self._point_cut:
                    points += 1
                    warmed = self._warm.get(device, 0)
                    msg = self._rng.randint(1, warmed) if warmed else 1
                    record = table.point_query((device,), (msg,))
                    if record is None:
                        if warmed:
                            misses += 1
                        else:
                            cold += 1
                    elif warmed and record.values[2] != self._value_of(
                        device, msg
                    ):
                        wrong += 1
                    else:
                        hits += 1
                elif draw < self._range_cut:
                    ranges += 1
                    entries = table.range_query((device,))
                    range_rows += len(entries)
                    if len(entries) < self._warm.get(device, 0):
                        wrong += 1
                else:
                    ingests += 1
                    msg = self._next_msg.get(device, INGEST_MSG_BASE)
                    self._next_msg[device] = msg + 1
                    table.ingest(
                        [(device, msg, self._value_of(device, msg))]
                    )
                    ingested_rows += 1
            except QosError as exc:
                if isinstance(exc, PartialResultError):
                    partials += 1
                else:
                    shed += 1
            except TransientIOError:
                errors += 1
            finally:
                # Per-op service time on the simulated clock, whatever the
                # op class or outcome: cache-hot reads are legitimately
                # free, the tail is cold fetches + log writes.
                latencies.append(table.sim_now() - before)
        return DriverReport(
            ops=ops,
            points=points,
            hits=hits,
            misses=misses,
            cold=cold,
            wrong=wrong,
            ranges=ranges,
            range_rows=range_rows,
            ingests=ingests,
            ingested_rows=ingested_rows,
            shed=shed,
            errors=errors,
            partials=partials,
            sim_elapsed_ns=table.sim_now() - start_ns,
            latencies_ns=tuple(latencies),
        )


__all__ = [
    "ClosedLoopDriver",
    "DriverReport",
    "INGEST_MSG_BASE",
    "ZipfianGenerator",
    "percentile_ns",
]
