"""End-to-end experiments: Figures 12-15 (paper section 8.4).

The paper's setup: ~100K random records ingested per second, groomer every
second, post-groomer every 20 seconds, continuous batches of 1000 random
lookups, 100-second runs, on a 28-core Xeon.  The scaled-down equivalents
here keep the cadence *ratios* (grooms per post-groom), the IoT update
model, and the concurrency structure, at laptop-Python volumes.

Measurement substitutions (documented in DESIGN.md):

* Figure 12 measures per-lookup *thread CPU time*: CPython's GIL serializes
  wall time across reader threads regardless of locking, so wall latency
  would measure the GIL, not Umzi.  Per-lookup CPU time is exactly what
  lock-freedom keeps flat -- a lock-based reader would burn extra CPU (or
  block) as readers multiply.
* Figure 14 reports deterministic *simulated* latency (the tier cost
  model): the SSD-vs-shared-storage gap is the figure's entire subject, and
  the in-process simulation makes that gap visible only through the cost
  model.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.harness import ExperimentResult, Series
from repro.core.definition import ColumnSpec
from repro.core.query import PointLookup
from repro.storage.hierarchy import StorageHierarchy
from repro.storage.ssd import SSDTier
from repro.wildfire.engine import ShardConfig, WildfireShard
from repro.wildfire.schema import IndexSpec, TableSchema
from repro.workloads.generator import IoTUpdateWorkload, KeyMapper
from repro.workloads.queries import QueryBatchGenerator

DEFAULT_READER_COUNTS = (1, 2, 4, 8)
DEFAULT_UPDATE_PERCENTS = (0, 20, 40, 60, 80, 100)
DEFAULT_PURGE_MODES = ("none", "half", "all")


def make_iot_shard(
    post_groom_every: int = 10,
    ssd_capacity: Optional[int] = None,
) -> WildfireShard:
    schema = TableSchema(
        name="e2e",
        columns=(ColumnSpec("device"), ColumnSpec("msg"), ColumnSpec("reading")),
        primary_key=("device", "msg"),
        sharding_key=("device",),
        partition_key=("msg",),
    )
    spec = IndexSpec(("device",), ("msg",), ("reading",))
    hierarchy = StorageHierarchy(ssd=SSDTier(capacity_bytes=ssd_capacity))
    return WildfireShard(
        schema, spec, hierarchy=hierarchy,
        config=ShardConfig(post_groom_every=post_groom_every),
    )


def _iot_rows(keys: Sequence[int], devices: int = 64) -> List[Tuple[int, int, int]]:
    """Map abstract workload keys onto (device, msg, reading) rows."""
    return [(k % devices, k // devices, k) for k in keys]


def _lookup_batch_for(
    shard: WildfireShard, keys: Sequence[int], devices: int = 64
) -> List[Tuple[Tuple[int, ...], Tuple[int, ...]]]:
    return [((k % devices, ), (k // devices, )) for k in keys]


def _seed_shard(
    shard: WildfireShard,
    workload: IoTUpdateWorkload,
    cycles: int,
) -> None:
    for _ in range(cycles):
        shard.ingest(_iot_rows(workload.next_cycle()))
        shard.tick()


# ---------------------------------------------------------------------------
# Figure 12 -- concurrent readers
# ---------------------------------------------------------------------------


def fig12_concurrent_readers(
    reader_counts: Sequence[int] = DEFAULT_READER_COUNTS,
    warmup_cycles: int = 30,
    records_per_cycle: int = 300,
    batches_per_reader: int = 12,
    batch_size: int = 100,
) -> ExperimentResult:
    """Per-lookup CPU time vs number of concurrent readers.

    Paper claim: "more concurrent readers have small impact on the query
    performance, which demonstrates the advantages of Umzi's lock-free
    design" -- here, per-lookup CPU cost stays flat as reader count grows
    while ingest + maintenance run concurrently.
    """
    series_by_count: List[Series] = []
    base: Optional[float] = None
    for readers in reader_counts:
        shard = make_iot_shard(post_groom_every=10)
        workload = IoTUpdateWorkload(records_per_cycle, update_percent=10, seed=5)
        _seed_shard(shard, workload, warmup_cycles)
        population = workload.keys_ingested
        qgen_seed = 41

        shard.start_daemons(groom_interval_s=0.01)
        samples: Dict[int, List[float]] = {i: [] for i in range(batches_per_reader)}
        lock = threading.Lock()
        errors: List[str] = []

        def reader(reader_id: int) -> None:
            import random as _random

            rng = _random.Random(qgen_seed + reader_id)
            for batch_no in range(batches_per_reader):
                keys = [rng.randrange(population) for _ in range(batch_size)]
                batch = _lookup_batch_for(shard, keys)
                start = time.thread_time()
                results = shard.index_batch_lookup(batch)
                cpu = time.thread_time() - start
                if all(r is None for r in results):
                    errors.append("reader found nothing at all")
                with lock:
                    samples[batch_no].append(cpu / batch_size)

        ingest_stop = threading.Event()

        def ingester() -> None:
            while not ingest_stop.is_set():
                shard.ingest(_iot_rows(workload.next_cycle()))
                time.sleep(0.01)

        ingest_thread = threading.Thread(target=ingester, daemon=True)
        ingest_thread.start()
        threads = [
            threading.Thread(target=reader, args=(i,)) for i in range(readers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        ingest_stop.set()
        ingest_thread.join()
        shard.stop_daemons()
        if errors:
            raise AssertionError(errors[0])

        line = Series(f"{readers} readers")
        for batch_no in range(batches_per_reader):
            values = samples[batch_no]
            if not values:
                continue
            mean = sum(values) / len(values)
            if base is None:
                base = mean
            line.add(batch_no, mean)
        series_by_count.append(line)
    return ExperimentResult(
        figure="Figure 12",
        title="Lookup cost with concurrent readers",
        x_label="batch number (time)",
        y_label="CPU time per lookup",
        series=series_by_count,
        notes="normalized to the first 1-reader sample; CPU time per lookup "
              "(see module docstring for the GIL substitution)",
    ).normalize_all(base if base else 1.0)


# ---------------------------------------------------------------------------
# Figure 13 -- update rates
# ---------------------------------------------------------------------------


def fig13_update_rates(
    update_percents: Sequence[int] = DEFAULT_UPDATE_PERCENTS,
    cycles: int = 40,
    records_per_cycle: int = 300,
    batch_size: int = 200,
    sample_every: int = 4,
) -> ExperimentResult:
    """Lookup latency over time for p% update workloads (deterministic).

    Paper claim: updates have limited impact on average query performance;
    latency creeps up slowly over time as the run chain grows.
    """
    series: List[Series] = []
    base: Optional[float] = None
    for p in update_percents:
        shard = make_iot_shard(post_groom_every=10)
        workload = IoTUpdateWorkload(records_per_cycle, update_percent=p, seed=5)
        line = Series(f"{p}%")
        import random as _random

        rng = _random.Random(43)
        for cycle in range(1, cycles + 1):
            shard.ingest(_iot_rows(workload.next_cycle()))
            shard.tick()
            if cycle % sample_every != 0:
                continue
            population = workload.keys_ingested
            keys = [rng.randrange(population) for _ in range(batch_size)]
            batch = _lookup_batch_for(shard, keys)
            start = time.perf_counter()
            shard.index_batch_lookup(batch)
            elapsed = (time.perf_counter() - start) / batch_size
            if base is None:
                base = elapsed
            line.add(cycle, elapsed)
        series.append(line)
    return ExperimentResult(
        figure="Figure 13",
        title="Lookup latency vs update percentage",
        x_label="groom cycle",
        y_label="time per lookup",
        series=series,
        notes="normalized to the first 0% sample",
    ).normalize_all(base if base else 1.0)


# ---------------------------------------------------------------------------
# Figure 14 -- purged runs
# ---------------------------------------------------------------------------


def fig14_purge_levels(
    purge_modes: Sequence[str] = DEFAULT_PURGE_MODES,
    cycles: int = 40,
    records_per_cycle: int = 300,
    batch_size: int = 100,
    sample_every: int = 4,
) -> ExperimentResult:
    """Lookup cost with none / half / all of the index runs purged.

    Paper claim: cached runs are far cheaper; purged runs spike when first
    accessed because data blocks stream back from shared storage block by
    block.  y is deterministic simulated latency (tier cost model).
    """
    series: List[Series] = []
    base: Optional[float] = None
    for mode in purge_modes:
        shard = make_iot_shard(post_groom_every=10)
        workload = IoTUpdateWorkload(records_per_cycle, update_percent=10, seed=5)
        _seed_shard(shard, workload, cycles)
        total_levels = shard.index.config.levels.total_levels
        if mode == "none":
            level = total_levels - 1
        elif mode == "half":
            # Keep the groomed zone (recent data) cached; purge the
            # post-groomed zone (old data) -- the paper purges old runs
            # first, so 'half' means the historical half.
            level = shard.index.config.levels.groomed_levels - 1
        elif mode == "all":
            level = -1
        else:
            raise ValueError(f"unknown purge mode {mode!r}")
        shard.index.cache.set_cache_level(level)

        import random as _random

        rng = _random.Random(47)
        population = workload.keys_ingested
        line = Series(mode)
        for sample in range(cycles // sample_every):
            keys = [rng.randrange(population) for _ in range(batch_size)]
            batch = _lookup_batch_for(shard, keys)
            # Every sample pays its own (deterministic) block reads: cached
            # runs cost SSD reads, purged runs cost shared-storage fetches.
            for run in shard.index.all_runs():
                run.drop_decode_cache()
            before = shard.hierarchy.stats.total_sim_ns
            shard.index_batch_lookup(batch)
            cost = (shard.hierarchy.stats.total_sim_ns - before) / batch_size
            if mode == "none" and base is None:
                base = cost
            line.add(sample, cost)
        series.append(line)
    return ExperimentResult(
        figure="Figure 14",
        title="Lookup cost vs purge level",
        x_label="sample number (time)",
        y_label="simulated time per lookup",
        series=series,
        notes="normalized to the first no-purge sample; simulated tier "
              "latency (deterministic)",
    ).normalize_all(base if base else 1.0)


# ---------------------------------------------------------------------------
# Figure 15 -- index evolve on/off
# ---------------------------------------------------------------------------


def fig15_evolve_impact(
    cycles: int = 60,
    records_per_cycle: int = 300,
    post_groom_every: int = 10,
    batch_size: int = 200,
    sample_every: int = 5,
) -> ExperimentResult:
    """Lookup latency with the post-groomer (and index evolution) on/off.

    Paper claim: evolve adds bounded overhead (cache misses after runs
    move) but also reduces the total number of runs, keeping queries
    healthy; disabling post-groom lets groomed runs accumulate.
    """
    series: List[Series] = []
    base: Optional[float] = None
    for mode in ("post-groom", "no post-groom"):
        shard = make_iot_shard(post_groom_every=post_groom_every)
        workload = IoTUpdateWorkload(records_per_cycle, update_percent=10, seed=5)
        import random as _random

        rng = _random.Random(53)
        line = Series(mode)
        for cycle in range(1, cycles + 1):
            shard.ingest(_iot_rows(workload.next_cycle()))
            if mode == "post-groom":
                shard.tick()
            else:
                # groom + merge only; no post-groom, no evolve.
                shard.groomer.groom()
                shard.maintenance.step()
            if cycle % sample_every != 0:
                continue
            population = workload.keys_ingested
            keys = [rng.randrange(population) for _ in range(batch_size)]
            batch = _lookup_batch_for(shard, keys)
            start = time.perf_counter()
            shard.index_batch_lookup(batch)
            elapsed = (time.perf_counter() - start) / batch_size
            if base is None:
                base = elapsed  # first post-groom sample
            line.add(cycle, elapsed)
        series.append(line)
    return ExperimentResult(
        figure="Figure 15",
        title="Impact of index evolve operations",
        x_label="groom cycle",
        y_label="time per lookup",
        series=series,
        notes="normalized to the first post-groom-enabled sample",
    ).normalize_all(base if base else 1.0)


__all__ = [
    "DEFAULT_PURGE_MODES",
    "DEFAULT_READER_COUNTS",
    "DEFAULT_UPDATE_PERCENTS",
    "fig12_concurrent_readers",
    "fig13_update_rates",
    "fig14_purge_levels",
    "fig15_evolve_impact",
    "make_iot_shard",
]
