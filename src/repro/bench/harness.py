"""Sweep, normalization, and reporting machinery for the experiments."""

from __future__ import annotations

import json
import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple


def measure_wall_s(fn: Callable[[], object], repeat: int = 3) -> float:
    """Median wall-clock seconds of ``fn`` over ``repeat`` invocations."""
    times = []
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return statistics.median(times)


@dataclass
class Series:
    """One line of a figure: label plus (x, y) points."""

    label: str
    points: List[Tuple[object, float]] = field(default_factory=list)

    def add(self, x: object, y: float) -> None:
        self.points.append((x, y))

    def ys(self) -> List[float]:
        return [y for _, y in self.points]

    def normalized(self, base: float) -> "Series":
        if base <= 0:
            raise ValueError(f"normalization base must be positive, got {base}")
        return Series(
            self.label, [(x, y / base) for x, y in self.points]
        )


@dataclass
class ExperimentResult:
    """A figure-shaped result: several series over a shared x-axis.

    ``metrics`` holds the experiment's headline scalars (ops/s, decode
    counts, wall seconds, ...) for the machine-readable ``BENCH_*.json``
    artifacts that track the perf trajectory across PRs.
    """

    figure: str
    title: str
    x_label: str
    y_label: str
    series: List[Series]
    notes: str = ""
    metrics: Dict[str, float] = field(default_factory=dict)

    def series_by_label(self, label: str) -> Series:
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(f"no series {label!r} in {self.figure}")

    def normalize_all(self, base: float) -> "ExperimentResult":
        return ExperimentResult(
            figure=self.figure,
            title=self.title,
            x_label=self.x_label,
            y_label=f"{self.y_label} (normalized)",
            series=[s.normalized(base) for s in self.series],
            notes=self.notes,
            metrics=dict(self.metrics),
        )

    # -- reporting -----------------------------------------------------------------

    def format_table(self) -> str:
        """A figure-shaped text table: one row per x, one column per series."""
        xs: List[object] = []
        for s in self.series:
            for x, _ in s.points:
                if x not in xs:
                    xs.append(x)
        lines = [
            f"== {self.figure}: {self.title} ==",
            f"   y = {self.y_label}",
        ]
        if self.notes:
            lines.append(f"   {self.notes}")
        header = f"{self.x_label:>16} | " + " | ".join(
            f"{s.label:>14}" for s in self.series
        )
        lines.append(header)
        lines.append("-" * len(header))
        lookup = {
            (s.label, x): y for s in self.series for x, y in s.points
        }
        for x in xs:
            cells = []
            for s in self.series:
                y = lookup.get((s.label, x))
                cells.append(f"{y:>14.4f}" if y is not None else " " * 14)
            lines.append(f"{str(x):>16} | " + " | ".join(cells))
        return "\n".join(lines)

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.format_table() + "\n")

    # -- machine-readable reporting ---------------------------------------------

    def to_json_dict(self) -> Dict[str, object]:
        """The ``BENCH_*.json`` payload: everything the table shows, plus
        the headline ``metrics`` scalars, in a diff-friendly shape."""
        return {
            "figure": self.figure,
            "title": self.title,
            "x_label": self.x_label,
            "y_label": self.y_label,
            "notes": self.notes,
            "series": [
                {"label": s.label, "points": [[x, y] for x, y in s.points]}
                for s in self.series
            ],
            "metrics": dict(self.metrics),
        }

    def save_json(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_json_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")


# ---------------------------------------------------------------------------
# shape assertions -- the reproduction's notion of "matching the paper"
# ---------------------------------------------------------------------------


def assert_monotone_increase(
    values: Sequence[float], slack: float = 1.10, label: str = ""
) -> None:
    """Each value may dip at most ``slack``-fold below the running max."""
    running = 0.0
    for value in values:
        assert value >= running / slack, (
            f"{label}: expected (noisily) increasing series, got {list(values)}"
        )
        running = max(running, value)


def assert_roughly_linear(
    xs: Sequence[float], ys: Sequence[float], tolerance: float = 4.0,
    label: str = "",
) -> None:
    """y grows within ``tolerance`` of proportionally to x (log-log slope
    sanity, endpoints only -- robust to interpreter noise)."""
    assert len(xs) == len(ys) and len(xs) >= 2
    x_ratio = xs[-1] / xs[0]
    y_ratio = ys[-1] / max(ys[0], 1e-12)
    assert x_ratio / tolerance <= y_ratio <= x_ratio * tolerance, (
        f"{label}: expected ~linear growth; x grew {x_ratio:.1f}x, "
        f"y grew {y_ratio:.1f}x"
    )


def assert_flat_within(
    values: Sequence[float], factor: float, label: str = ""
) -> None:
    """max/min stays under ``factor`` -- the paper's 'limited impact'."""
    low, high = min(values), max(values)
    assert high <= low * factor, (
        f"{label}: expected flat within {factor}x, got spread "
        f"{high / max(low, 1e-12):.2f}x ({list(values)})"
    )


def assert_dominates(
    slower: Sequence[float], faster: Sequence[float], min_ratio: float = 1.0,
    label: str = "",
) -> None:
    """Pointwise: ``slower`` >= ``faster`` * min_ratio (who-wins claims)."""
    assert len(slower) == len(faster)
    for s, f in zip(slower, faster):
        assert s >= f * min_ratio, (
            f"{label}: expected first series slower by >= {min_ratio}x "
            f"everywhere; got {s:.4g} vs {f:.4g}"
        )


__all__ = [
    "ExperimentResult",
    "Series",
    "assert_dominates",
    "assert_flat_within",
    "assert_monotone_increase",
    "assert_roughly_linear",
    "measure_wall_s",
]
