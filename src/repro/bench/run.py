"""Command-line experiment runner.

Regenerates every paper figure (and optionally the ablations) without
pytest, writing the normalized tables to a results directory:

    python -m repro.bench.run --out results/ --quick
    python -m repro.bench.run --figures 8 9 14 --ablations

``--quick`` shrinks the sweeps (~1 minute total); the default scales match
the benchmark suite.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Callable, Dict, List

from repro.bench import ablations, endtoend, experiments
from repro.bench.harness import ExperimentResult


def _flatten(result) -> List[ExperimentResult]:
    if isinstance(result, ExperimentResult):
        return [result]
    return list(result)


def _figure_runners(quick: bool) -> Dict[str, Callable[[], List[ExperimentResult]]]:
    scale = 0.2 if quick else 1.0

    def sizes(values):
        return tuple(max(200, int(v * scale)) for v in values)

    return {
        "8": lambda: _flatten(
            experiments.fig08_build(sizes=sizes((1_000, 5_000, 20_000)), repeat=1)  # plot-only
        ),
        "9": lambda: _flatten(
            experiments.fig09_single_run(
                sizes=sizes((1_000, 5_000, 20_000)),
                batch_size=200 if quick else 500, repeat=1,  # plot-only
            )
        ),
        "10": lambda: _flatten(
            experiments.fig10_sequential_ingest(
                num_runs=10 if quick else 20,
                entries_per_run=1_000 if quick else 3_000,
                repeat=1,  # plot-only
            )
        ),
        "11": lambda: _flatten(
            experiments.fig11_random_ingest(
                num_runs=10 if quick else 20,
                entries_per_run=1_000 if quick else 3_000,
                repeat=1,  # plot-only
            )
        ),
        "12": lambda: _flatten(
            endtoend.fig12_concurrent_readers(
                reader_counts=(1, 2) if quick else (1, 2, 4),
                warmup_cycles=10 if quick else 30,
                records_per_cycle=150 if quick else 300,
                batches_per_reader=5 if quick else 12,
                batch_size=50,
            )
        ),
        "13": lambda: _flatten(
            endtoend.fig13_update_rates(
                update_percents=(0, 100) if quick else (0, 20, 40, 60, 80, 100),
                cycles=20 if quick else 40,
                records_per_cycle=150 if quick else 300,
            )
        ),
        "14": lambda: _flatten(
            endtoend.fig14_purge_levels(
                cycles=25 if quick else 35,
                records_per_cycle=150 if quick else 300,
            )
        ),
        "15": lambda: _flatten(
            endtoend.fig15_evolve_impact(
                cycles=30 if quick else 60,
                records_per_cycle=150 if quick else 300,
            )
        ),
    }


def _ablation_runners(quick: bool) -> Dict[str, Callable[[], List[ExperimentResult]]]:
    return {
        "A1": lambda: _flatten(
            ablations.ablation_reconcile_strategies(
                num_runs=6 if quick else 10,
                entries_per_run=1_000 if quick else 5_000, repeat=1,  # plot-only
            )
        ),
        "A2": lambda: _flatten(
            ablations.ablation_offset_array(
                run_sizes=(1_000, 10_000) if quick else (1_000, 10_000, 50_000),
                repeat=1,  # plot-only
            )
        ),
        "A3": lambda: _flatten(
            ablations.ablation_merge_policy(
                runs_to_ingest=8 if quick else 16,
                entries_per_run=1_000 if quick else 2_000,
            )
        ),
        "A4": lambda: _flatten(
            ablations.ablation_unified_vs_divided(
                num_keys=4_000 if quick else 20_000, repeat=1,  # plot-only
            )
        ),
        "A5": lambda: _flatten(
            ablations.ablation_evolve_vs_rebuild(
                num_keys=4_000 if quick else 10_000
            )
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the Umzi paper's evaluation figures."
    )
    parser.add_argument(
        "--figures", nargs="*", default=None,
        help="figure numbers to run (default: all of 8..15)",
    )
    parser.add_argument(
        "--ablations", action="store_true", help="also run ablations A1-A5"
    )
    parser.add_argument("--out", default="benchmarks/results")
    parser.add_argument(
        "--quick", action="store_true", help="small sweeps (~1 minute total)"
    )
    args = parser.parse_args(argv)

    runners = _figure_runners(args.quick)
    wanted = args.figures if args.figures else sorted(runners, key=int)
    jobs: List = []
    for figure in wanted:
        if figure not in runners:
            parser.error(f"unknown figure {figure!r}; choose from {sorted(runners)}")
        jobs.append((f"Figure {figure}", runners[figure]))
    if args.ablations:
        for name, runner in _ablation_runners(args.quick).items():
            jobs.append((name, runner))

    os.makedirs(args.out, exist_ok=True)
    for label, runner in jobs:
        start = time.perf_counter()
        print(f"[{label}] running ...", flush=True)
        for result in runner():
            print(result.format_table())
            print()
            slug = result.figure.lower().replace(" ", "_")
            result.save(os.path.join(args.out, f"{slug}.txt"))
            result.save_json(os.path.join(args.out, f"BENCH_{slug}.json"))
        print(f"[{label}] done in {time.perf_counter() - start:.1f}s\n")
    print(f"tables and BENCH_*.json written to {args.out}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
