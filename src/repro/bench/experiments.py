"""Microbenchmark experiments: Figures 8, 9, 10, 11 of the paper.

Scales are reduced from the paper's 1K-100M entries to laptop-Python
ranges; the *shapes* under test are scale-free (linearity of build time,
flatness of synopsis-pruned lookups, linear growth of unpruned ones).
Every function returns an :class:`ExperimentResult` whose series carry the
same normalization as the corresponding figure.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from repro.bench.fixtures import (
    DEFINITIONS,
    build_index_with_runs,
    build_single_run,
    entries_for_keys,
)
from repro.bench.harness import ExperimentResult, Series, measure_wall_s
from repro.core.builder import RunBuilder
from repro.core.entry import Zone
from repro.core.query import ReconcileStrategy
from repro.storage.hierarchy import StorageHierarchy
from repro.workloads.generator import KeyMapper, KeyMode
from repro.workloads.queries import QueryBatchGenerator

DEFAULT_BUILD_SIZES = (1_000, 5_000, 20_000, 50_000)
DEFAULT_RUN_SIZES = (1_000, 5_000, 20_000, 50_000)
DEFAULT_BATCH_SIZES = (1, 10, 100, 1_000)
DEFAULT_RUN_COUNTS = (1, 5, 10, 20)
DEFAULT_SCAN_RANGES = (1, 10, 100, 1_000, 10_000)


# ---------------------------------------------------------------------------
# Figure 8 -- index building performance
# ---------------------------------------------------------------------------


def fig08_build(
    sizes: Sequence[int] = DEFAULT_BUILD_SIZES, repeat: int = 3
) -> ExperimentResult:
    """Run-build cost vs entry count for I1/I2/I3, normalized to (I1, min).

    Paper claims: near-linear scaling; I3 fastest (one fewer key column);
    column-count impact small next to sort cost.

    The figure's y-axis is the *simulated* I/O cost of the build (total
    tier nanoseconds charged by the latency models) -- a deterministic
    quantity, so the shape assertions downstream never flake on busy
    hosts.  Wall-clock time is still measured (``repeat`` medians) but
    only reported in ``metrics`` as plot-only context.
    """
    series: List[Series] = []
    base: Optional[float] = None
    wall_total = 0.0
    for label, make_def in DEFINITIONS:
        definition = make_def()
        mapper = KeyMapper(definition)
        line = Series(label)
        for n in sizes:
            entries = entries_for_keys(definition, list(range(n)), mapper)

            def build() -> int:
                hierarchy = StorageHierarchy()
                RunBuilder(definition, hierarchy).build(
                    "b", entries, Zone.GROOMED, 0, 0, 0
                )
                return hierarchy.stats.total_sim_ns

            wall_total += measure_wall_s(build, repeat)
            sim_ns = float(build())
            if base is None:
                base = sim_ns  # (I1, smallest size)
            line.add(n, sim_ns)
        series.append(line)
    result = ExperimentResult(
        figure="Figure 8",
        title="Index building performance",
        x_label="entries per run",
        y_label="build cost (simulated I/O ns)",
        series=series,
        notes="normalized to I1 at the smallest run size",
        metrics={"build_wall_s_total": wall_total},
    )
    return result.normalize_all(base if base else 1.0)


# ---------------------------------------------------------------------------
# Figure 9 -- single-run query performance
# ---------------------------------------------------------------------------


def fig09_single_run(
    sizes: Sequence[int] = DEFAULT_RUN_SIZES,
    batch_size: int = 500,
    repeat: int = 3,
) -> List[ExperimentResult]:
    """Batched lookups against one run, sequential (9a) and random (9b).

    Paper claims: mild growth with run size (offset array + binary search
    bound the work); I2 slower than I1/I3 (two equality columns make the
    hash offset array less selective per column).

    The y-axis is the batch's *decode-probe cost* (full entry decodes
    plus zero-decode sort-key probes from the ``DecodeStats`` ledger) --
    the deterministic counter behind the "binary search bounds the work"
    claim, so the sublinear-shape assertion downstream never flakes on
    busy hosts.  Wall time is still measured (``repeat`` medians) but
    only reported in ``metrics`` as plot-only context.
    """
    results = []
    base: Optional[float] = None
    for query_kind in ("sequential", "random"):
        series: List[Series] = []
        wall_total = 0.0
        for label, make_def in DEFINITIONS:
            definition = make_def()
            mapper = KeyMapper(definition)
            line = Series(label)
            for n in sizes:
                run, hierarchy = build_single_run(definition, n, mapper)
                from repro.core.query import QueryExecutor

                executor = QueryExecutor(definition, lambda run=run: [run])
                qgen = QueryBatchGenerator(mapper, key_population=n, seed=13)
                make_batch = (
                    qgen.sequential_batch
                    if query_kind == "sequential"
                    else qgen.random_batch
                )
                batch = make_batch(min(batch_size, n))

                wall_total += measure_wall_s(
                    lambda: executor.batch_lookup(batch), repeat
                )
                # Cold decode caches, then one counted batch: probes and
                # decodes are deterministic functions of (run, batch).
                run.drop_decode_cache()
                decode = hierarchy.stats.decode
                before = decode.entry_decodes + decode.raw_key_probes
                executor.batch_lookup(batch)
                cost = float(
                    decode.entry_decodes + decode.raw_key_probes - before
                )
                if base is None:
                    base = cost  # (I1, smallest, sequential)
                line.add(n, cost)
            series.append(line)
        results.append(
            ExperimentResult(
                figure=f"Figure 9{'a' if query_kind == 'sequential' else 'b'}",
                title=f"Single-run lookups, {query_kind} query batch",
                x_label="entries in run",
                y_label="batch decode-probe cost",
                series=series,
                notes="normalized to (I1, smallest run, sequential)",
                metrics={"lookup_wall_s_total": wall_total},
            ).normalize_all(base if base else 1.0)
        )
    return results


# ---------------------------------------------------------------------------
# Figures 10 and 11 -- multi-run query performance
# ---------------------------------------------------------------------------


def _cold_sim_ns(index, op) -> float:
    """Simulated I/O ns charged by ``op`` with cold run decode caches.

    Cold caches per measurement: every measured op pays its own block
    fetches (warm caches would bill all I/O to whichever series runs
    first), and the latency models make the total deterministic.
    """
    for run in index.all_runs():
        run.drop_decode_cache()
    before = index.hierarchy.stats.total_sim_ns
    op()
    return float(index.hierarchy.stats.total_sim_ns - before)


def _cold_probe_cost(index, op) -> float:
    """Decode-probe count (entry decodes + raw sort-key probes) of ``op``."""
    for run in index.all_runs():
        run.drop_decode_cache()
    decode = index.hierarchy.stats.decode
    before = decode.entry_decodes + decode.raw_key_probes
    op()
    return float(decode.entry_decodes + decode.raw_key_probes - before)


def _multi_run_batch_sweep(
    key_mode: KeyMode,
    figure: str,
    batch_sizes: Sequence[int],
    num_runs: int,
    entries_per_run: int,
    repeat: int,
) -> ExperimentResult:
    definition = DEFINITIONS[0][1]()  # I1 is the paper's default
    mapper = KeyMapper(definition)
    index = build_index_with_runs(
        definition, num_runs, entries_per_run, key_mode, mapper
    )
    population = num_runs * entries_per_run
    series = []
    base: Optional[float] = None
    wall_total = 0.0
    for query_kind in ("sequential", "random"):
        line = Series(f"{query_kind} query")
        for batch_size in batch_sizes:
            qgen = QueryBatchGenerator(mapper, population, seed=29)
            make_batch = (
                qgen.sequential_batch
                if query_kind == "sequential"
                else qgen.random_batch
            )
            batch = make_batch(batch_size)

            def op(batch=batch):
                for run in index.all_runs():
                    run.drop_decode_cache()
                index.batch_lookup(batch)

            wall_total += measure_wall_s(op, repeat)
            per_key = _cold_sim_ns(
                index, lambda batch=batch: index.batch_lookup(batch)
            ) / batch_size
            if base is None:
                base = per_key  # sequential, batch size 1
            line.add(batch_size, per_key)
        series.append(line)
    return ExperimentResult(
        figure=figure,
        title=f"Per-key lookup cost vs batch size ({key_mode.value} ingest)",
        x_label="lookup batch size",
        y_label="per-key cost (simulated I/O ns)",
        series=series,
        notes="normalized to the sequential query at batch size 1",
        metrics={"lookup_wall_s_total": wall_total},
    ).normalize_all(base if base else 1.0)


def _multi_run_runcount_sweep(
    key_mode: KeyMode,
    figure: str,
    run_counts: Sequence[int],
    entries_per_run: int,
    batch_size: int,
    repeat: int,
) -> ExperimentResult:
    definition = DEFINITIONS[0][1]()
    mapper = KeyMapper(definition)
    series = []
    base: Optional[float] = None
    wall_total = 0.0
    for query_kind in ("sequential", "random"):
        line = Series(f"{query_kind} query")
        for num_runs in run_counts:
            index = build_index_with_runs(
                definition, num_runs, entries_per_run, key_mode, mapper
            )
            population = num_runs * entries_per_run
            qgen = QueryBatchGenerator(mapper, population, seed=31)
            make_batch = (
                qgen.sequential_batch
                if query_kind == "sequential"
                else qgen.random_batch
            )
            batch = make_batch(batch_size)

            def op(index=index, batch=batch):
                for run in index.all_runs():
                    run.drop_decode_cache()
                index.batch_lookup(batch)

            wall_total += measure_wall_s(op, repeat)
            cost = _cold_sim_ns(
                index, lambda index=index, batch=batch: index.batch_lookup(batch)
            )
            if base is None:
                base = cost  # sequential at one run
            line.add(num_runs, cost)
        series.append(line)
    return ExperimentResult(
        figure=figure,
        title=f"Lookup cost vs number of runs ({key_mode.value} ingest)",
        x_label="# index runs",
        y_label="batch lookup cost (simulated I/O ns)",
        series=series,
        notes="normalized to the sequential query against one run",
        metrics={"lookup_wall_s_total": wall_total},
    ).normalize_all(base if base else 1.0)


def _multi_run_scan_sweep(
    key_mode: KeyMode,
    figure: str,
    scan_ranges: Sequence[int],
    num_runs: int,
    entries_per_run: int,
    repeat: int,
) -> ExperimentResult:
    definition = DEFINITIONS[0][1]()
    total = num_runs * entries_per_run
    # spread = whole population: one device, sort column spans all keys, so
    # scan ranges up to max(scan_ranges) have matching keys.
    mapper = KeyMapper(definition, spread=total)
    index = build_index_with_runs(
        definition, num_runs, entries_per_run, key_mode, mapper
    )
    series = []
    base: Optional[float] = None
    wall_total = 0.0
    for query_kind in ("sequential", "random"):
        line = Series(f"{query_kind} query")
        for scan_range in scan_ranges:
            qgen = QueryBatchGenerator(mapper, total, seed=37)
            make_scan = (
                qgen.sequential_scan
                if query_kind == "sequential"
                else qgen.random_scan
            )
            scan = make_scan(scan_range)

            def op(scan=scan):
                for run in index.all_runs():
                    run.drop_decode_cache()
                index.range_scan(scan, ReconcileStrategy.PRIORITY_QUEUE)

            wall_total += measure_wall_s(op, repeat)
            # Scan linearity is about entries examined, not blocks
            # fetched (per-run fixed block costs dominate small ranges),
            # so the y-axis is the decode-probe counter.
            cost = _cold_probe_cost(
                index,
                lambda scan=scan: index.range_scan(
                    scan, ReconcileStrategy.PRIORITY_QUEUE
                ),
            )
            if base is None:
                base = cost  # sequential at range 1
            line.add(scan_range, cost)
        series.append(line)
    return ExperimentResult(
        figure=figure,
        title=f"Range-scan cost vs range ({key_mode.value} ingest, priority queue)",
        x_label="scan range size",
        y_label="scan decode-probe cost",
        series=series,
        notes="normalized to the sequential query at range 1",
        metrics={"lookup_wall_s_total": wall_total},
    ).normalize_all(base if base else 1.0)


def fig10_sequential_ingest(
    batch_sizes: Sequence[int] = DEFAULT_BATCH_SIZES,
    run_counts: Sequence[int] = DEFAULT_RUN_COUNTS,
    scan_ranges: Sequence[int] = DEFAULT_SCAN_RANGES,
    num_runs: int = 20,
    entries_per_run: int = 5_000,
    repeat: int = 3,
) -> List[ExperimentResult]:
    """Figure 10: multi-run queries over sequentially ingested keys.

    Paper claims: (a) sequential batches beat random ones (synopsis prunes
    runs) and batching amortizes block fetches; (b) run count barely moves
    sequential queries but grows random ones ~linearly; (c) scan time grows
    linearly with range, sequential ~ random.
    """
    return [
        _multi_run_batch_sweep(
            KeyMode.SEQUENTIAL, "Figure 10a", batch_sizes, num_runs,
            entries_per_run, repeat,
        ),
        _multi_run_runcount_sweep(
            KeyMode.SEQUENTIAL, "Figure 10b", run_counts, entries_per_run,
            500, repeat,
        ),
        _multi_run_scan_sweep(
            KeyMode.SEQUENTIAL, "Figure 10c", scan_ranges, num_runs,
            entries_per_run, repeat,
        ),
    ]


def fig11_random_ingest(
    batch_sizes: Sequence[int] = DEFAULT_BATCH_SIZES,
    run_counts: Sequence[int] = DEFAULT_RUN_COUNTS,
    scan_ranges: Sequence[int] = DEFAULT_SCAN_RANGES,
    num_runs: int = 20,
    entries_per_run: int = 5_000,
    repeat: int = 3,
) -> List[ExperimentResult]:
    """Figure 11: same sweeps over randomly ingested keys.

    Paper claims: random ingest defeats the synopsis, so sequential queries
    lose their advantage and behave like random ones.
    """
    return [
        _multi_run_batch_sweep(
            KeyMode.RANDOM, "Figure 11a", batch_sizes, num_runs,
            entries_per_run, repeat,
        ),
        _multi_run_runcount_sweep(
            KeyMode.RANDOM, "Figure 11b", run_counts, entries_per_run,
            500, repeat,
        ),
        _multi_run_scan_sweep(
            KeyMode.RANDOM, "Figure 11c", scan_ranges, num_runs,
            entries_per_run, repeat,
        ),
    ]


__all__ = [
    "DEFAULT_BATCH_SIZES",
    "DEFAULT_BUILD_SIZES",
    "DEFAULT_RUN_COUNTS",
    "DEFAULT_RUN_SIZES",
    "DEFAULT_SCAN_RANGES",
    "fig08_build",
    "fig09_single_run",
    "fig10_sequential_ingest",
    "fig11_random_ingest",
]
