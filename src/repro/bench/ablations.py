"""Design-choice ablations beyond the paper's figures (DESIGN.md section 3).

* set vs priority-queue reconciliation across scan ranges (section 7.1.2
  describes both; the paper does not benchmark them against each other);
* offset array on/off (section 4.2 motivates it; quantified here);
* merge-policy K/T sweep: write amplification vs query cost (section 5.3's
  "easily trade-off write amplification and query performance");
* Umzi vs the divided-view and fixed-RID baselines.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from repro.baselines.lsm import ClassicLSMIndex
from repro.baselines.separate import SeparateZoneIndexes
from repro.bench.fixtures import build_index_with_runs, entries_for_keys
from repro.bench.harness import ExperimentResult, Series, measure_wall_s
from repro.core.definition import i1_definition
from repro.core.entry import RID, RID_BYTES, Zone, begin_ts_of_sort_key
from repro.core.index import UmziConfig, UmziIndex
from repro.core.levels import LevelConfig
from repro.core.query import PointLookup, ReconcileStrategy
from repro.storage.hierarchy import StorageHierarchy
from repro.workloads.generator import KeyMapper, KeyMode
from repro.workloads.queries import QueryBatchGenerator


def ablation_reconcile_strategies(
    scan_ranges: Sequence[int] = (10, 100, 1_000, 10_000),
    num_runs: int = 10,
    entries_per_run: int = 5_000,
    repeat: int = 3,
) -> ExperimentResult:
    """Set vs priority-queue reconciliation across scan ranges.

    The figure plots wall time (the paper's presentation), but the
    *claims* are asserted on deterministic quantities immune to host and
    interpreter noise (the A2 treatment, ISSUE 5): both strategies must
    return identical results, and both must issue exactly the same raw
    sort-key probes (``DecodeStats.raw_key_probes``) -- the run-search
    work is strategy-independent; the strategies differ only in how the
    per-run streams are reconciled (materialized dict vs streaming heap
    merge).  Per-range probe counts and a result-equality flag land in
    ``metrics``; the probe series rides alongside the wall-time series.
    """
    definition = i1_definition()
    total = num_runs * entries_per_run
    mapper = KeyMapper(definition, spread=total)
    index = build_index_with_runs(
        definition, num_runs, entries_per_run, KeyMode.RANDOM, mapper
    )
    decode = index.hierarchy.stats.decode
    series: List[Series] = []
    probe_series: List[Series] = []
    metrics = {}
    fingerprints: dict = {}
    base: Optional[float] = None
    for strategy in (ReconcileStrategy.SET, ReconcileStrategy.PRIORITY_QUEUE):
        line = Series(strategy.value)
        probes_line = Series(f"{strategy.value} (probes)")
        for scan_range in scan_ranges:
            qgen = QueryBatchGenerator(mapper, total, seed=61)
            scan = qgen.sequential_scan(scan_range)
            before = decode.snapshot()
            results = index.range_scan(scan, strategy)
            probes = decode.diff(before).raw_key_probes
            probes_line.add(scan_range, float(probes))
            metrics[f"raw_key_probes_{strategy.value}_range{scan_range}"] = (
                float(probes)
            )
            fingerprint = tuple(
                (e.rid, e.begin_ts, e.sort_values) for e in results
            )
            other = fingerprints.setdefault(scan_range, fingerprint)
            if f"results_identical_range{scan_range}" not in metrics:
                metrics[f"results_identical_range{scan_range}"] = 1.0
            if fingerprint != other:
                metrics[f"results_identical_range{scan_range}"] = 0.0
            elapsed = measure_wall_s(
                lambda: index.range_scan(scan, strategy), repeat
            )
            if base is None:
                base = elapsed
            line.add(scan_range, elapsed)
        series.append(line)
        probe_series.append(probes_line)
    result = ExperimentResult(
        figure="Ablation A1",
        title="Set vs priority-queue reconciliation",
        x_label="scan range size",
        y_label="scan time",
        series=series,
        notes="normalized to set approach at the smallest range; "
              "probe counts (simulated, deterministic) in metrics",
    ).normalize_all(base if base else 1.0)
    result.series.extend(probe_series)
    result.metrics.update(metrics)
    return result


def ablation_offset_array(
    run_sizes: Sequence[int] = (1_000, 10_000, 50_000),
    batch_size: int = 500,
    repeat: int = 3,
) -> ExperimentResult:
    """Lookup cost with and without the hash offset array.

    The figure plots wall time (the paper's presentation), but the *claim*
    is asserted on the simulated probe counters: the offset array narrows
    binary search, so it must strictly reduce raw sort-key probes
    (``DecodeStats.raw_key_probes``) -- a deterministic quantity immune to
    interpreter and host noise, unlike wall-clock ratios.  The headline
    probe counts for the largest run land in ``metrics``.
    """
    from repro.bench.fixtures import build_single_run
    from repro.core.query import QueryExecutor

    definition = i1_definition()
    mapper = KeyMapper(definition)
    series: List[Series] = []
    probe_series: List[Series] = []
    metrics = {}
    base: Optional[float] = None
    for enabled in (True, False):
        label = "offset array" if enabled else "binary search only"
        line = Series(label)
        probes_line = Series(f"{label} (probes)")
        for n in run_sizes:
            run, hierarchy = build_single_run(definition, n, mapper)
            executor = QueryExecutor(
                definition, lambda run=run: [run], use_offset_array=enabled
            )
            qgen = QueryBatchGenerator(mapper, n, seed=67)
            batch = qgen.random_batch(batch_size)
            decode = hierarchy.stats.decode
            before = decode.snapshot()
            executor.batch_lookup(batch)
            probes = decode.diff(before).raw_key_probes
            probes_line.add(n, float(probes))
            elapsed = measure_wall_s(lambda: executor.batch_lookup(batch), repeat)
            if base is None:
                base = elapsed
            line.add(n, elapsed)
        series.append(line)
        probe_series.append(probes_line)
        key = "with_offset_array" if enabled else "without_offset_array"
        metrics[f"raw_key_probes_{key}"] = probes_line.ys()[-1]
    result = ExperimentResult(
        figure="Ablation A2",
        title="Offset array benefit",
        x_label="entries in run",
        y_label="batch lookup time",
        series=series,
        notes="normalized to offset array at the smallest run; "
              "probe counts (simulated, deterministic) in metrics",
    ).normalize_all(base if base else 1.0)
    result.series.extend(probe_series)
    result.metrics.update(metrics)
    return result


def ablation_merge_policy(
    k_values: Sequence[int] = (1, 2, 4, 8),
    size_ratio: int = 4,
    runs_to_ingest: int = 16,
    entries_per_run: int = 2_000,
    batch_size: int = 300,
) -> ExperimentResult:
    """K sweep: shared-storage write amplification vs lookup cost.

    Larger K defers merging (less write amplification, more runs to
    search); K=1 is leveling-like (max merging, fewest runs).
    """
    definition = i1_definition()
    mapper = KeyMapper(definition)
    wa_series = Series("write amplification (bytes ratio)")
    query_series = Series("lookup time (normalized)")
    runs_series = Series("final run count")
    base_query: Optional[float] = None
    for k in k_values:
        levels = LevelConfig(
            groomed_levels=4, post_groomed_levels=2,
            max_runs_per_level=k, size_ratio=size_ratio,
        )
        index = UmziIndex(
            definition, config=UmziConfig(name=f"abl-k{k}", levels=levels)
        )
        ts = 1
        for gid in range(runs_to_ingest):
            keys = list(range(gid * entries_per_run, (gid + 1) * entries_per_run))
            index.add_groomed_run(
                entries_for_keys(definition, keys, mapper, ts_start=ts,
                                 block_id=gid),
                gid, gid,
            )
            index.run_maintenance()
            ts += entries_per_run
        ingested_bytes = sum(
            run.size_bytes for run in index.all_runs()
        )
        wa = index.hierarchy.shared.write_amplification_bytes / max(
            ingested_bytes, 1
        )
        population = runs_to_ingest * entries_per_run
        qgen = QueryBatchGenerator(mapper, population, seed=71)
        batch = qgen.random_batch(batch_size)
        elapsed = measure_wall_s(lambda: index.batch_lookup(batch), 3)
        if base_query is None:
            base_query = elapsed
        wa_series.add(k, wa)
        query_series.add(k, elapsed / base_query)
        runs_series.add(k, index.stats().total_runs)
    return ExperimentResult(
        figure="Ablation A3",
        title="Merge policy K sweep: write amplification vs query cost",
        x_label="K (max runs per level)",
        y_label="see series labels",
        series=[wa_series, query_series, runs_series],
        notes=f"T={size_ratio}; write amplification = shared bytes written / "
              "live index bytes",
    )


def ablation_unified_vs_divided(
    num_keys: int = 20_000,
    batch_size: int = 500,
    repeat: int = 3,
) -> ExperimentResult:
    """Unified view vs separate per-zone indexes, same in-memory substrate.

    Half the keys have evolved to the post-groomed zone, half are still
    groomed -- the steady state a real HTAP shard lives in.  Both sides use
    the sorted-array substrate so the measurement isolates the *structural*
    cost of the divided view: every lookup must probe both indexes and
    reconcile client-side (the anomalies it additionally risks are
    demonstrated in tests/baselines/test_separate.py).
    """
    from repro.baselines.btree import SortedArrayIndex

    definition = i1_definition()
    mapper = KeyMapper(definition)
    half = num_keys // 2

    old_pg = entries_for_keys(
        definition, list(range(half)), mapper, ts_start=1,
        zone=Zone.POST_GROOMED, block_id=100,
    )
    new_groomed = entries_for_keys(
        definition, list(range(half, num_keys)), mapper, ts_start=half + 1,
        block_id=1,
    )

    unified = SortedArrayIndex(definition)
    unified.insert_many(old_pg)
    unified.insert_many(new_groomed)

    divided = SeparateZoneIndexes(definition)
    divided.add_groomed(new_groomed)
    divided.evolve([], old_pg)

    qgen = QueryBatchGenerator(mapper, num_keys, seed=73)
    batch = qgen.random_batch(batch_size)
    probe_keys = [
        entries_for_keys(
            definition, [lookup.sort_values[0] if lookup.sort_values else 0],
            mapper,
        )[0].key_bytes(definition)
        for lookup in batch
    ]

    def unified_batch() -> None:
        for key, lookup in zip(probe_keys, batch):
            unified.lookup(key, lookup.query_ts)

    def divided_batch() -> None:
        for key, lookup in zip(probe_keys, batch):
            divided.lookup(key, lookup.query_ts)

    unified_time = measure_wall_s(unified_batch, repeat)
    divided_time = measure_wall_s(divided_batch, repeat)
    series = [
        Series("unified view", [("batch", 1.0)]),
        Series("divided view", [("batch", divided_time / unified_time)]),
    ]
    return ExperimentResult(
        figure="Ablation A4",
        title="Unified index vs separate per-zone indexes",
        x_label="workload",
        y_label="batch lookup time (normalized to unified)",
        series=series,
        notes=f"{num_keys} keys, half evolved; batch of {batch_size} random "
              "lookups; identical in-memory substrate on both sides",
    )


def ablation_evolve_vs_rebuild(
    num_keys: int = 10_000,
    evolve_fraction: float = 0.25,
) -> ExperimentResult:
    """Umzi's incremental evolve vs the classic LSM full rebuild when RIDs
    change for a fraction of the data."""
    definition = i1_definition()
    mapper = KeyMapper(definition)
    moved = int(num_keys * evolve_fraction)

    # Umzi side: two groomed runs; evolve only the older one.
    levels = LevelConfig(groomed_levels=3, post_groomed_levels=2,
                         max_runs_per_level=8, size_ratio=4)
    umzi = UmziIndex(definition, config=UmziConfig(name="abl-ev", levels=levels))
    umzi.add_groomed_run(
        entries_for_keys(definition, list(range(moved)), mapper, ts_start=1),
        0, 0,
    )
    umzi.add_groomed_run(
        entries_for_keys(definition, list(range(moved, num_keys)), mapper,
                         ts_start=moved + 1, block_id=1),
        1, 1,
    )
    pg_entries = entries_for_keys(
        definition, list(range(moved)), mapper, ts_start=1,
        zone=Zone.POST_GROOMED, block_id=100,
    )
    start = time.perf_counter()
    umzi.evolve(1, pg_entries, 0, 0)
    evolve_time = time.perf_counter() - start

    classic = ClassicLSMIndex(definition, memtable_limit=4_096)
    classic.insert_many(
        entries_for_keys(definition, list(range(num_keys)), mapper, ts_start=1)
    )
    classic.flush()

    def remap_raw(sort_key, blob):
        # The 'older' data moved zones; both beginTS and the old RID are
        # raw slices (sort-key suffix / blob suffix) -- no entry decode.
        if begin_ts_of_sort_key(sort_key) <= moved:
            old_rid, _ = RID.from_bytes(blob, len(blob) - RID_BYTES)
            return RID(Zone.POST_GROOMED, 100, old_rid.offset)
        return None

    start = time.perf_counter()
    classic.rebuild_with_rids(remap_raw=remap_raw)
    rebuild_time = time.perf_counter() - start

    series = [
        Series("umzi evolve", [(f"{evolve_fraction:.0%} moved", 1.0)]),
        Series(
            "classic LSM rebuild",
            [(f"{evolve_fraction:.0%} moved", rebuild_time / max(evolve_time, 1e-9))],
        ),
    ]
    return ExperimentResult(
        figure="Ablation A5",
        title="Incremental evolve vs full rebuild on RID change",
        x_label="fraction of data migrated",
        y_label="time (normalized to Umzi evolve)",
        series=series,
        notes=f"{num_keys} keys; the classic index must rewrite everything",
    )


__all__ = [
    "ablation_evolve_vs_rebuild",
    "ablation_merge_policy",
    "ablation_offset_array",
    "ablation_reconcile_strategies",
    "ablation_unified_vs_divided",
]
