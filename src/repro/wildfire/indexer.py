"""The indexer daemon (paper sections 3, 5.4).

"The indexer keeps track of the indexed post-groom sequence number, i.e.,
IndexedPSN, and keeps polling the maximum PSN.  If IndexedPSN is smaller
than the maximum PSN, the indexer process performs an index evolve
operation for IndexedPSN+1, which guarantees the index evolves in a
correct order."

The daemon is deliberately decoupled from the post-groomer: it reads only
published PSN metadata and the post-groomed blocks themselves -- the
minimum-coordination property the paper emphasizes for loosely-coupled
distributed processes.

By default evolves run on the zero-decode streaming path: the daemon
derives one ``beginTS -> new RID`` map from the post-groomed blocks and
each index re-points its own groomed entry blobs by raw RID splices --
no :class:`IndexEntry` is rebuilt per index per record.  The legacy
rebuild-entries-per-index path remains available (``streaming_evolve=
False``) as the ablation baseline.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.entry import RID, Zone
from repro.core.evolve import EvolveResult
from repro.faults.crash import crash_point
from repro.storage.metrics import ReadIntent
from repro.wildfire.blockstore import BlockCatalog
from repro.wildfire.indexes import ShardIndexes
from repro.wildfire.postgroomer import PostGroomer
from repro.wildfire.schema import TableSchema


@dataclass(frozen=True)
class IndexerStepResult:
    """One applied PSN (an evolve per index) plus groomed-block cleanup."""

    evolve: EvolveResult  # the primary index's evolve
    deleted_groomed_blocks: List[int]
    secondary_evolves: Tuple[EvolveResult, ...] = ()


class IndexerDaemon:
    """Applies pending index evolve operations in PSN order."""

    def __init__(
        self,
        schema: TableSchema,
        catalog: BlockCatalog,
        indexes: ShardIndexes,
        post_groomer: PostGroomer,
        groomed_block_grace_psns: int = 1,
        streaming_evolve: bool = True,
    ) -> None:
        self.schema = schema
        self.catalog = catalog
        self.indexes = indexes
        self.index = indexes.primary.index  # the primary index
        self.post_groomer = post_groomer
        # Zero-decode evolve (RID splices over raw groomed blobs) vs the
        # legacy per-index entry rebuild; see the module docstring.
        self.streaming_evolve = streaming_evolve
        # Groomed blocks of PSN p are deleted only once PSN p+grace has
        # evolved, so queries that raced an evolve can still resolve
        # groomed RIDs ("eventually deleted", section 5.4).
        self.groomed_block_grace_psns = groomed_block_grace_psns
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.evolves_applied = 0
        # PSNs that had to fall back from the streaming splice path to the
        # legacy entry rebuild because beginTS values were not unique (see
        # step(): a collapsed beginTS -> RID map would mis-point entries).
        self.streaming_fallbacks = 0
        # Backpressure gate (ISSUE 7): consulted by the threaded loop
        # before each step; False idles the daemon for one poll interval.
        self._gate = None

    def set_gate(self, gate) -> None:
        """Install (or clear, with ``None``) the backpressure gate."""
        self._gate = gate

    # -- polling ------------------------------------------------------------------

    def pending_psns(self) -> int:
        return max(0, self.post_groomer.max_psn - self.indexes.min_indexed_psn())

    def step(self) -> Optional[IndexerStepResult]:
        """Apply the next pending PSN: one evolve per attached index."""
        with self._lock:
            next_psn = self.indexes.min_indexed_psn() + 1
            if next_psn > self.post_groomer.max_psn:
                return None
            crash_point("indexer.pre_evolve")
            op = self.post_groomer.get_op(next_psn)

            new_rid_by_ts: Dict[int, RID] = {}
            blocks = []
            use_streaming = self.streaming_evolve
            if use_streaming:
                # One beginTS -> post-groomed RID map serves every index:
                # evolve never rebuilds an entry, it splices RIDs into
                # each index's own groomed blobs.  The map published in
                # the PSN record spares even the block fetches; older op
                # records without one fall back to the blocks' batched
                # hand-off (a maintenance read: the blocks are consumed
                # once, not query traffic).
                if op.rid_by_begin_ts:
                    new_rid_by_ts = dict(op.rid_by_begin_ts)
                else:
                    for block_id in op.post_groomed_block_ids:
                        block = self.catalog.get_block(
                            Zone.POST_GROOMED, block_id,
                            intent=ReadIntent.MAINTENANCE,
                        )
                        new_rid_by_ts.update(block.rid_by_begin_ts())
                # Streaming evolve keys its RID map by beginTS, which is
                # only sound when beginTS values uniquely identify record
                # versions (the groomer's `cycle | order` composition
                # guarantees that; an alternative ingest front-end might
                # not).  Duplicates collapse in the map -- the key count
                # falls short of the migrated record count -- and splicing
                # from a collapsed map would silently point several index
                # entries at one record.  Detect that and fall back to the
                # legacy per-index entry rebuild for this PSN.
                if len(new_rid_by_ts) < op.record_count:
                    use_streaming = False
                    self.streaming_fallbacks += 1
            if not use_streaming:
                blocks = [
                    self.catalog.get_block(
                        Zone.POST_GROOMED, block_id,
                        intent=ReadIntent.MAINTENANCE,
                    )
                    for block_id in op.post_groomed_block_ids
                ]
            primary_result: Optional[EvolveResult] = None
            secondary_results: List[EvolveResult] = []
            for shard_index in self.indexes.all():
                if shard_index.index.indexed_psn >= next_psn:
                    continue  # already evolved (e.g. resumed after crash)
                if use_streaming:
                    result = shard_index.index.evolve_streaming(
                        op.psn, new_rid_by_ts.get,
                        op.min_groomed_id, op.max_groomed_id,
                    )
                else:
                    entries = []
                    for block in blocks:
                        for rid, record in block.iter_indexable():
                            eq, sort, incl = shard_index.extract(record.values)
                            entries.append(
                                shard_index.index.make_entry(
                                    eq, sort, incl, record.begin_ts, rid
                                )
                            )
                    result = shard_index.index.evolve(
                        op.psn, entries, op.min_groomed_id, op.max_groomed_id
                    )
                if shard_index.name == "primary":
                    primary_result = result
                else:
                    secondary_results.append(result)
            if primary_result is None:
                # Primary was already at this PSN (crash replay): synthesize
                # a no-op record so callers still get a coherent result.
                from repro.core.evolve import EvolveResult as _ER

                primary_result = _ER(
                    psn=next_psn, new_run_id="", new_run_entries=0,
                    watermark_before=self.index.watermark.value,
                    watermark_after=self.index.watermark.value,
                    collected_run_ids=(),
                )

            # Deferred physical cleanup of deprecated groomed blocks.
            grace_psn = op.psn - self.groomed_block_grace_psns
            deleted: List[int] = []
            if grace_psn >= 1:
                bound = self.post_groomer.get_op(grace_psn).max_groomed_id
                deleted = self.catalog.delete_deprecated_up_to(bound)

            self.evolves_applied += 1
            return IndexerStepResult(
                evolve=primary_result,
                deleted_groomed_blocks=deleted,
                secondary_evolves=tuple(secondary_results),
            )

    def drain(self, max_steps: int = 64) -> List[IndexerStepResult]:
        """Apply every pending evolve (deterministic mode)."""
        results: List[IndexerStepResult] = []
        for _ in range(max_steps):
            result = self.step()
            if result is None:
                break
            results.append(result)
        return results

    # -- threaded mode --------------------------------------------------------------

    def start(self, poll_interval_s: float = 0.01) -> None:
        if self._thread is not None:
            raise RuntimeError("indexer daemon already running")
        self._stop.clear()

        def loop() -> None:
            while not self._stop.is_set():
                gate = self._gate
                if gate is not None and not gate():
                    time.sleep(poll_interval_s)
                    continue
                if self.step() is None:
                    time.sleep(poll_interval_s)

        self._thread = threading.Thread(target=loop, name="umzi-indexer", daemon=True)
        self._thread.start()

    def stop(self, timeout_s: float = 5.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout_s)
            self._thread = None


__all__ = ["IndexerDaemon", "IndexerStepResult"]
