"""Timestamp generation (paper sections 2.1-2.2).

"The beginTS set by the groomer is composed of two parts.  The higher
order part is based on the groomer's timestamp, while the lower order part
is the transaction commit time in the shard replica.  Thus, the commit
time of transactions in Wildfire is effectively postponed to the groom
time."

The simulation uses a logical hybrid clock: the groom cycle number fills
the high-order bits and the per-replica commit sequence the low-order
bits, giving globally monotonic, deterministic ``beginTS`` values --
exactly the monotonicity the index relies on, without wall-clock noise.
"""

from __future__ import annotations

import threading

COMMIT_BITS = 24
_COMMIT_MASK = (1 << COMMIT_BITS) - 1


def compose_begin_ts(groom_cycle: int, commit_seq: int) -> int:
    """Hybrid ``beginTS``: groom cycle (high bits) | commit sequence (low)."""
    if groom_cycle < 0 or commit_seq < 0:
        raise ValueError("clock components must be non-negative")
    return ((groom_cycle + 1) << COMMIT_BITS) | (commit_seq & _COMMIT_MASK)


def decompose_begin_ts(begin_ts: int) -> "tuple[int, int]":
    """Inverse of :func:`compose_begin_ts` (debugging / tests)."""
    return (begin_ts >> COMMIT_BITS) - 1, begin_ts & _COMMIT_MASK


class HybridClock:
    """Thread-safe source of commit sequences and groom cycles."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._commit_seq = 0
        self._groom_cycle = 0

    def next_commit_seq(self) -> int:
        """Tentative commit time assigned when a transaction commits."""
        with self._lock:
            self._commit_seq += 1
            return self._commit_seq

    def next_groom_cycle(self) -> int:
        """Advance to (and return) the next groom cycle number."""
        with self._lock:
            self._groom_cycle += 1
            return self._groom_cycle

    @property
    def groom_cycle(self) -> int:
        with self._lock:
            return self._groom_cycle

    def state(self) -> "tuple[int, int]":
        """Atomic ``(groom_cycle, commit_seq)`` snapshot."""
        with self._lock:
            return (self._groom_cycle, self._commit_seq)

    def ensure_at_least(self, groom_cycle: int, commit_seq: int) -> None:
        """Fast-forward so future timestamps sort after another clock's.

        Online shard split uses this to hand a source shard's clock state
        to its successors: once a successor's clock is at least as far
        along as the (quiesced) source's, every ``beginTS`` it will ever
        assign compares strictly newer than anything the source groomed,
        which is what makes the migration window's newest-wins double
        reads correct.  Forward-only, so it composes with concurrent
        local advancement.
        """
        with self._lock:
            self._groom_cycle = max(self._groom_cycle, groom_cycle)
            self._commit_seq = max(self._commit_seq, commit_seq)

    def now(self) -> int:
        """A timestamp at least as new as anything already groomed.

        Queries default to this: the freshest quorum-readable snapshot
        (everything up to the current groom cycle is visible).
        """
        with self._lock:
            return compose_begin_ts(self._groom_cycle, _COMMIT_MASK)


__all__ = ["COMMIT_BITS", "HybridClock", "compose_begin_ts", "decompose_begin_ts"]
