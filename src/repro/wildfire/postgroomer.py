"""The post-groomer (paper section 2.1).

Every post-groom operation takes the groomed blocks produced since the last
one and:

1. collects, through the *post-groomed portion* of the index, the RIDs of
   already post-groomed records that the new records replace;
2. sets ``prevRID`` on the new records and ``endTS`` on the replaced ones
   (version chains for snapshot isolation and time travel);
3. re-organizes records by the analytics-friendly partition key into
   larger post-groomed blocks on shared storage;
4. publishes the operation's metadata under a new post-groom sequence
   number (PSN) and advances MaxPSN -- the indexer daemon polls this and
   evolves the index asynchronously (section 5.4);
5. marks the consumed groomed blocks deprecated.

The post-groomer never touches the index itself; the indexer does.  That
split (two loosely-coupled processes, coordination through PSN metadata
only) is exactly the paper's Figure 5.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.encoding import KeyValue
from repro.core.entry import RID, Zone
from repro.core.index import UmziIndex
from repro.faults.crash import crash_point
from repro.storage.metrics import ReadIntent
from repro.wildfire.blockstore import BlockCatalog
from repro.wildfire.record import Record
from repro.wildfire.schema import IndexSpec, TableSchema


@dataclass(frozen=True)
class PostGroomOp:
    """Published metadata of one post-groom operation (the PSN record).

    ``rid_by_begin_ts`` maps each migrated version's ``beginTS`` to its
    new post-groomed RID.  The post-groomer computes every new RID anyway
    while stitching version chains, so publishing the map costs nothing
    extra -- and it lets the indexer's streaming evolve splice RIDs into
    raw groomed entry blobs without fetching a single post-groomed block.
    """

    psn: int
    min_groomed_id: int
    max_groomed_id: int
    post_groomed_block_ids: Tuple[int, ...]
    record_count: int
    rid_by_begin_ts: Mapping[int, RID] = field(default_factory=dict)


class PostGroomer:
    """Periodic groomed-zone -> post-groomed-zone migration."""

    def __init__(
        self,
        schema: TableSchema,
        catalog: BlockCatalog,
        index: UmziIndex,
        index_spec: IndexSpec,
        partition_buckets: int = 4,
    ) -> None:
        if partition_buckets < 1:
            raise ValueError("partition_buckets must be >= 1")
        self.schema = schema
        self.catalog = catalog
        self.index = index
        self._extract = index_spec.extractor(schema)
        self.partition_buckets = partition_buckets
        self._lock = threading.Lock()
        self._ops: Dict[int, PostGroomOp] = {}
        self._max_psn = 0
        self._last_post_groomed_gid = -1
        self._partition_positions = (
            schema.positions(schema.partition_key) if schema.partition_key else ()
        )

    # -- published metadata (polled by the indexer) -----------------------------------

    @property
    def max_psn(self) -> int:
        """MaxPSN -- the newest published post-groom sequence number."""
        with self._lock:
            return self._max_psn

    def get_op(self, psn: int) -> PostGroomOp:
        with self._lock:
            if psn not in self._ops:
                raise KeyError(f"no post-groom operation published for PSN {psn}")
            return self._ops[psn]

    @property
    def last_post_groomed_gid(self) -> int:
        with self._lock:
            return self._last_post_groomed_gid

    # -- the operation ------------------------------------------------------------------

    def post_groom(self) -> Optional[PostGroomOp]:
        """Process all groomed blocks created since the previous post-groom."""
        with self._lock:
            first_gid = self._last_post_groomed_gid + 1
            last_gid = self.catalog.max_groomed_id
            if last_gid < first_gid:
                return None

            records = self._collect_groomed_records(first_gid, last_gid)
            block_ids, rid_by_begin_ts = self._repartition_and_write(records)

            psn = self._max_psn + 1
            op = PostGroomOp(
                psn=psn,
                min_groomed_id=first_gid,
                max_groomed_id=last_gid,
                post_groomed_block_ids=tuple(block_ids),
                record_count=len(records),
                rid_by_begin_ts=rid_by_begin_ts,
            )
            crash_point("postgroom.pre_publish")
            self._ops[psn] = op
            self._last_post_groomed_gid = last_gid
            self.catalog.deprecate_groomed(range(first_gid, last_gid + 1))
            self._max_psn = psn  # the atomic MaxPSN publication
            return op

    # -- internals --------------------------------------------------------------------------

    def _collect_groomed_records(
        self, first_gid: int, last_gid: int
    ) -> List[Record]:
        """Scan the newly groomed blocks in beginTS (= block, offset) order.

        A maintenance scan: each groomed block is consumed once and then
        deprecated, so the reads must not displace query-hot blocks from
        the SSD cache.
        """
        records: List[Record] = []
        for gid in range(first_gid, last_gid + 1):
            block = self.catalog.get_block(
                Zone.GROOMED, gid, intent=ReadIntent.MAINTENANCE
            )
            records.extend(block.records)
        return records

    def _repartition_and_write(
        self, records: List[Record]
    ) -> Tuple[List[int], Dict[int, RID]]:
        """Partition, resolve version chains, and write post-groomed blocks.

        Block ids are *reserved* before writing so every record's eventual
        RID is known up front; that lets intra-batch ``prevRID`` chains (a
        key updated more than once since the last post-groom) be stitched
        into the immutable records.  Previous versions outside the batch
        are found through the post-groomed portion of the index.  Returns
        the written block ids plus the ``beginTS -> new RID`` map published
        for the indexer's streaming evolve.
        """
        # Partition into buckets; records stay in beginTS order per bucket.
        buckets: Dict[int, List[Record]] = {}
        placement: List[Tuple[int, int]] = []  # batch order -> (bucket, offset)
        for record in records:
            bucket = self._bucket_of(record)
            slot = buckets.setdefault(bucket, [])
            placement.append((bucket, len(slot)))
            slot.append(record)

        sorted_buckets = sorted(buckets)
        first_id = self.catalog.reserve_post_groomed_ids(len(sorted_buckets))
        block_id_of = {
            bucket: first_id + i for i, bucket in enumerate(sorted_buckets)
        }

        # Resolve version chains in global beginTS order (= batch order).
        last_rid: Dict[Tuple[KeyValue, ...], RID] = {}
        rid_by_begin_ts: Dict[int, RID] = {}
        for record, (bucket, offset) in zip(records, placement):
            key = self.schema.primary_key_of(record.values)
            prev_rid = last_rid.get(key)
            if prev_rid is None:
                eq, sort, _ = self._extract(record.values)
                hit = self.index.post_groomed_lookup(
                    eq, sort, query_ts=record.begin_ts - 1
                )
                if hit is not None:
                    prev_rid = hit.rid
            if prev_rid is not None:
                self.catalog.set_end_ts(prev_rid, record.begin_ts)
            new_rid = RID(Zone.POST_GROOMED, block_id_of[bucket], offset)
            buckets[bucket][offset] = record.with_prev_rid(prev_rid)
            last_rid[key] = new_rid
            rid_by_begin_ts[record.begin_ts] = new_rid

        block_ids: List[int] = []
        for bucket in sorted_buckets:
            block = self.catalog.store_post_groomed(
                buckets[bucket], block_id=block_id_of[bucket]
            )
            block_ids.append(block.block_id)
        return block_ids, rid_by_begin_ts

    def _bucket_of(self, record: Record) -> int:
        if not self._partition_positions:
            return 0
        value = tuple(record.values[i] for i in self._partition_positions)
        # Deterministic partition bucketing (Python's hash is salted).
        from repro.core.encoding import encode_composite, fnv1a64

        return fnv1a64(encode_composite(value)) % self.partition_buckets


__all__ = ["PostGroomOp", "PostGroomer"]
