"""Records with Wildfire's hidden columns (paper section 2.1).

Every record carries ``beginTS`` (when this version was ingested -- set
tentatively at commit, reset by the groomer), ``endTS`` (when a newer
version of the same key replaced it -- set by the post-groomer; ``None``
while current), and ``prevRID`` (RID of the previous version -- set by the
post-groomer for time travel chains).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.core.encoding import KeyValue
from repro.core.entry import RID


@dataclass(frozen=True)
class Record:
    """One immutable record version."""

    values: Tuple[KeyValue, ...]
    begin_ts: int
    end_ts: Optional[int] = None
    prev_rid: Optional[RID] = None

    def with_begin_ts(self, begin_ts: int) -> "Record":
        return replace(self, begin_ts=begin_ts)

    def with_prev_rid(self, prev_rid: Optional[RID]) -> "Record":
        return replace(self, prev_rid=prev_rid)

    def with_end_ts(self, end_ts: int) -> "Record":
        return replace(self, end_ts=end_ts)

    def visible_at(self, query_ts: int) -> bool:
        """Snapshot-isolation visibility: begun, and not yet ended."""
        if self.begin_ts > query_ts:
            return False
        return self.end_ts is None or self.end_ts > query_ts


__all__ = ["Record"]
