"""Online shard split: state machine and zero-decode data movement (ISSUE 8).

The cluster-facing entry point is
:meth:`repro.wildfire.cluster.ShardedTable.split_shard`; this module owns
the pieces below it:

* :class:`SplitState` -- the in-memory phase machine a split advances
  through.  Phases are ordered so that a crash at any of the four named
  crash points (``split.pre_copy`` / ``mid_copy`` / ``pre_publish`` /
  ``post_publish``) recovers deterministically: a crash before anything
  is published rolls back to fully-old routing; a crash any time after
  the write cutover rolls *forward* to fully-new routing.  Because the
  routing map itself is an immutable object swapped atomically, no crash
  can leave a torn map.
* :func:`copy_post_groomed_blocks` -- verbatim record-block transfer
  (same ids, same namespaces, same bytes) so the RIDs baked into entry
  blobs stay valid on the successors.
* :class:`ShardCopyStream` -- the zero-decode copy, as a *resumable,
  budgeted* stream (ISSUE 10): every index's post-groomed runs (primary
  first, then each secondary) are streamed as raw ``(sort_key, blob)``
  pairs through the same K-way blob merge the evolve path uses,
  bucketed per destination shard, and built into one post-groomed run
  per destination per index via ``RunBuilder.build_from_blobs`` -- no
  :class:`~repro.core.entry.IndexEntry` is ever materialized.  The
  stream is pulled in ``step(budget)`` slices so a split/merge pump can
  interleave the copy with live traffic; pulling everything in one call
  reproduces the original synchronous copy byte for byte.
* :func:`partition_runs` -- the run-to-completion split copy over a
  :class:`ShardCopyStream`: per-index partition passes route every pair
  by hashing the *record's sharding key* straight out of the sort key.
  Secondaries always carry the full primary key (and therefore the
  sharding key, a schema-enforced subset of it) as an appended sort-key
  suffix, so a per-index :class:`ShardingKeySlicer` recovers exactly
  the values the PR 9 fetch-back path would read from the record --
  without fetching the record.  Ghost entries route correctly too: the
  primary key of a row never changes, whatever its secondary columns do.

Both helpers are idempotent (already-copied blocks are skipped; a
destination that already holds its copied run for an index is not
rebuilt), which is what makes the roll-forward recovery replays safe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.entry import Zone
from repro.core.merge import merge_entry_blob_streams
from repro.core.run import Synopsis
from repro.faults.crash import crash_point
from repro.storage.metrics import ReadIntent
from repro.wildfire.engine import WildfireShard
from repro.wildfire.shardmap import (
    ShardingKeySlicer,
    ShardMapError,
    successor_side,
)


class SplitError(RuntimeError):
    """A split could not be started or resumed."""


class SplitAborted(SplitError):
    """A split backed out cleanly before its write cutover.

    Raised when maintenance backpressure or an open circuit breaker says
    the cluster cannot afford the copy right now.  Nothing has been
    published: routing, data, and clocks are exactly as they were.
    """


class SplitUnsupported(SplitAborted):
    """The shard's shape rules out an online split.

    Since ISSUE 10 shards carrying secondary indexes split fine (every
    secondary carries the primary key -- and with it the sharding key --
    as a sort-key suffix, so per-index partition passes can route its
    entries zero-decode).  What remains unsupported is an index whose
    key columns do not contain the sharding key at all, which can only
    happen for primary indexes built with ``require_primary_index=False``
    -- there is no byte range in such an index's sort keys from which to
    recover the routing hash.  Carries ``source_id`` and the offending
    ``index_names`` so callers (and tests) can react without parsing
    the message.  Nothing has been published when this raises.
    """

    def __init__(self, source_id: int, index_names: Sequence[str]) -> None:
        self.source_id = source_id
        self.index_names = tuple(index_names)
        super().__init__(
            f"online split of shard {source_id} needs the sharding key "
            "inside every index's key columns; offending: "
            f"{', '.join(self.index_names)}"
        )


# Phase order.  Everything from "migrating" on recovers by rolling
# forward; "pre_copy" is the only phase that rolls back.
PHASES = ("pre_copy", "migrating", "copied", "published", "done")


@dataclass
class SplitState:
    """One in-flight (or crashed) split's progress."""

    source_id: int
    slot: int
    left_id: int = -1
    right_id: int = -1
    phase: str = "pre_copy"
    migrating_epoch: int = -1
    final_epoch: int = -1
    copied_blocks: int = 0
    copied_entries: int = 0
    quiesce_grooms: int = 0

    def summary(self) -> dict:
        return {
            "source": self.source_id,
            "successors": (self.left_id, self.right_id),
            "phase": self.phase,
            "migrating_epoch": self.migrating_epoch,
            "final_epoch": self.final_epoch,
            "copied_blocks": self.copied_blocks,
            "copied_entries": self.copied_entries,
            "quiesce_grooms": self.quiesce_grooms,
        }


# Gap left between the two successors' post-groomed block id allocators
# at split time.  The left successor stays dense at the source's
# watermark; the right one starts this far above it.  Blocks written
# after the split therefore never collide by id between the two sides,
# which is what lets :func:`repro.wildfire.merge.adopt_all_blocks` copy
# both sides' blocks verbatim into one catalog.  A shard would need to
# post-groom over a million record blocks between a split and the next
# split of the same slot (impossible: the slot must be merged back to a
# single route first) for the stride to be crossed.
BLOCK_ID_STRIDE = 1 << 20


def copy_post_groomed_blocks(
    source: WildfireShard, successors: Tuple[WildfireShard, WildfireShard]
) -> int:
    """Transfer the source's post-groomed record blocks to both successors.

    Both successors receive *every* block: record blocks are addressed by
    RID from entry blobs, and each successor's entry subset may reference
    any block.  The second successor's block allocator is strided above
    the adopted watermark (see :data:`BLOCK_ID_STRIDE`) so post-split
    writes on the two sides can never mint the same block id.
    Idempotent; returns blocks copied this call.
    """
    block_ids = source.catalog.live_post_groomed_ids()
    overlay = source.catalog.export_end_ts_overlay()
    copied = 0
    for successor in successors:
        copied += len(
            successor.catalog.adopt_post_groomed(source.catalog, block_ids, overlay)
        )
    successors[1].catalog.ensure_post_groomed_floor(
        source.catalog.max_post_groomed_id + 1 + BLOCK_ID_STRIDE
    )
    return copied


def _dest_has_copy(destination: WildfireShard, index_name: str) -> bool:
    shard_index = destination.indexes.get(index_name)
    return bool(shard_index.index.run_lists[Zone.POST_GROOMED].snapshot())


def index_slicers(
    shard: WildfireShard, source_id: int
) -> Dict[str, ShardingKeySlicer]:
    """One zero-decode sharding-key slicer per index, primary included.

    Secondaries can never fail here: ``with_primary_key_suffix`` puts
    every primary-key column into their sort columns and the schema
    enforces ``sharding_key ⊆ primary_key``.  An index built without
    the sharding key among its key columns (only possible for a primary
    defined with ``require_primary_index=False``-style shapes) raises
    :class:`SplitUnsupported` naming every offending index.
    """
    sharding = shard.schema.sharding_key
    slicers: Dict[str, ShardingKeySlicer] = {}
    offending: List[str] = []
    for shard_index in shard.indexes.all():
        try:
            slicers[shard_index.name] = ShardingKeySlicer(
                shard_index.index.definition, sharding
            )
        except ShardMapError:
            offending.append(shard_index.name)
    if offending:
        raise SplitUnsupported(source_id, offending)
    return slicers


class ShardCopyStream:
    """Resumable, budgeted copy of quiesced sources into destinations.

    One instance drives a full migration copy: for each index name (the
    primary first, then every secondary) it streams all sources'
    post-groomed runs as raw ``(sort_key, blob)`` pairs, buckets each
    pair with ``bucket_of(index_name, sort_key)``, and -- when the pass
    is exhausted -- builds at most one post-groomed run per destination
    with a union synopsis of the pass's source runs, rebuilt at the
    destination's current ``version_seq``.

    ``step(budget)`` pulls up to ``budget`` pairs (``None`` = all of
    them), so a split/merge pump can interleave copy slices with live
    traffic; the pair order, bucket contents, and built runs are
    identical whatever the step sizes, which keeps pumped migrations
    byte-identical to synchronous ones.

    Source snapshots are pinned per pass and the sources are quiesced
    and frozen, so the stream sees an immutable view.  Crash behaviour:
    ``crash_site`` fires immediately before the build for destination
    ordinal ``crash_ordinal`` of the *primary* pass (for a split that is
    ``split.mid_copy`` between the two successor builds).  A crash
    anywhere in the stream is recovered by rebuilding the whole stream:
    nothing is published until a destination's run is built and pushed,
    and already-built destinations are skipped on replay.
    """

    def __init__(
        self,
        sources: Sequence[WildfireShard],
        destinations: Sequence[WildfireShard],
        bucket_of: Callable[[str, bytes], int],
        crash_site: Optional[str] = None,
        crash_ordinal: int = -1,
    ) -> None:
        self._sources = tuple(sources)
        self._destinations = tuple(destinations)
        self._bucket_of = bucket_of
        self._crash_site = crash_site
        self._crash_ordinal = crash_ordinal
        # Every shard of one table has the same index names; the primary
        # comes first so the historical crash-point ordering survives.
        self._index_names = [
            shard_index.name for shard_index in self._sources[0].indexes.all()
        ]
        self._pass_no = 0
        self._iterator = None
        self._pins: List = []
        self._pass_runs: List = []
        self._buckets: List[List[Tuple[bytes, bytes]]] = []
        self.copied_entries = 0

    @property
    def done(self) -> bool:
        return self._pass_no >= len(self._index_names) and self._iterator is None

    def _begin_pass(self) -> None:
        name = self._index_names[self._pass_no]
        runs: List = []
        for source in self._sources:
            index = source.indexes.get(name).index
            self._pins.append(index.pin_snapshot())
            runs.extend(index.run_lists[Zone.POST_GROOMED].snapshot())
        definition = self._sources[0].indexes.get(name).index.definition
        self._pass_runs = runs
        self._buckets = [[] for _ in self._destinations]
        if runs:
            self._iterator = merge_entry_blob_streams(
                definition, runs, intent=ReadIntent.MAINTENANCE
            )
        else:
            self._iterator = iter(())

    def _finish_pass(self) -> None:
        name = self._index_names[self._pass_no]
        is_primary_pass = self._pass_no == 0
        synopsis = (
            Synopsis.union([run.header.synopsis for run in self._pass_runs])
            if self._pass_runs
            else None
        )
        for ordinal, destination in enumerate(self._destinations):
            if (
                is_primary_pass
                and self._crash_site is not None
                and ordinal == self._crash_ordinal
            ):
                crash_point(self._crash_site)
            pairs = self._buckets[ordinal]
            if not pairs or _dest_has_copy(destination, name):
                continue
            index = destination.indexes.get(name).index
            run = index.builder.build_from_blobs(
                run_id=index.allocator.allocate(Zone.POST_GROOMED),
                blob_pairs=pairs,
                synopsis=synopsis,
                zone=Zone.POST_GROOMED,
                level=index.config.levels.first_post_groomed_level,
                min_groomed_id=-1,
                max_groomed_id=-1,
                persisted=True,
                write_through_ssd=True,
            )
            index.run_lists[Zone.POST_GROOMED].push_front(run)
            self.copied_entries += len(pairs)
        self._release_pins()
        self._pass_runs = []
        self._buckets = []
        self._iterator = None
        self._pass_no += 1

    def _release_pins(self) -> None:
        pins, self._pins = self._pins, []
        for pin in pins:
            pin.release()

    def step(self, budget: Optional[int] = None) -> int:
        """Advance the copy by up to ``budget`` pairs; returns pairs pulled."""
        pulled = 0
        while self._pass_no < len(self._index_names):
            if self._iterator is None:
                self._begin_pass()
            name = self._index_names[self._pass_no]
            for sort_key, blob in self._iterator:
                self._buckets[self._bucket_of(name, sort_key)].append(
                    (sort_key, blob)
                )
                pulled += 1
                if budget is not None and pulled >= budget:
                    return pulled
            self._finish_pass()
        return pulled

    def run_all(self) -> int:
        """Drain the whole stream synchronously; returns entries copied."""
        self.step(budget=None)
        return self.copied_entries

    def abort(self) -> None:
        """Drop pins without building anything (crash/teardown path)."""
        self._release_pins()
        self._iterator = None
        self._pass_no = len(self._index_names)


def split_copy_stream(
    source: WildfireShard,
    left: WildfireShard,
    right: WildfireShard,
    slicers: Dict[str, ShardingKeySlicer],
) -> ShardCopyStream:
    """A :class:`ShardCopyStream` partitioning one source between two
    successors by the record's sharding-key hash bit (per-index passes).
    """

    def bucket_of(index_name: str, sort_key: bytes) -> int:
        return successor_side(slicers[index_name].hash_of_sort_key(sort_key))

    return ShardCopyStream(
        sources=(source,),
        destinations=(left, right),
        bucket_of=bucket_of,
        crash_site="split.mid_copy",
        crash_ordinal=1,
    )


def partition_runs(
    source: WildfireShard,
    left: WildfireShard,
    right: WildfireShard,
    slicers: Dict[str, ShardingKeySlicer],
) -> int:
    """Run a full split copy synchronously (the non-pumped path).

    The source must be quiesced (post-groomed zones only).  Streams each
    index's newest-first run stack through the zero-decode blob merge
    (identical sort keys dedup to the newest copy, exactly as
    evolve/merge do), partitions each raw pair by the sharding-key hash
    bit, and builds at most one post-groomed run per successor per index
    with a union synopsis.  The ``split.mid_copy`` crash point sits
    between the two primary-index builds.  Idempotent per successor per
    index, so crash replays never duplicate entries.  Returns the number
    of entries copied this call.
    """
    return split_copy_stream(source, left, right, slicers).run_all()


__all__ = [
    "BLOCK_ID_STRIDE",
    "PHASES",
    "ShardCopyStream",
    "SplitAborted",
    "SplitError",
    "SplitState",
    "SplitUnsupported",
    "copy_post_groomed_blocks",
    "index_slicers",
    "partition_runs",
    "split_copy_stream",
    "successor_side",
]
