"""Online shard split: state machine and zero-decode data movement (ISSUE 8).

The cluster-facing entry point is
:meth:`repro.wildfire.cluster.ShardedTable.split_shard`; this module owns
the pieces below it:

* :class:`SplitState` -- the in-memory phase machine a split advances
  through.  Phases are ordered so that a crash at any of the four named
  crash points (``split.pre_copy`` / ``mid_copy`` / ``pre_publish`` /
  ``post_publish``) recovers deterministically: a crash before anything
  is published rolls back to fully-old routing; a crash any time after
  the write cutover rolls *forward* to fully-new routing.  Because the
  routing map itself is an immutable object swapped atomically, no crash
  can leave a torn map.
* :func:`copy_post_groomed_blocks` -- verbatim record-block transfer
  (same ids, same namespaces, same bytes) so the RIDs baked into entry
  blobs stay valid on the successors.
* :func:`partition_runs` -- the zero-decode copy: the source's
  post-groomed runs are streamed as raw ``(sort_key, blob)`` pairs
  through the same K-way blob merge the evolve path uses, partitioned
  between the two successors by hashing the sharding-key slices straight
  out of each sort key, and built into one post-groomed run per
  successor via ``RunBuilder.build_from_blobs`` -- no
  :class:`~repro.core.entry.IndexEntry` is ever materialized.

Both helpers are idempotent (already-copied blocks are skipped; a
successor that already holds its copied run is not rebuilt), which is
what makes the roll-forward recovery replays safe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.entry import Zone
from repro.core.merge import merge_entry_blob_streams
from repro.core.run import Synopsis
from repro.faults.crash import crash_point
from repro.storage.metrics import ReadIntent
from repro.wildfire.engine import WildfireShard
from repro.wildfire.shardmap import ShardingKeySlicer, successor_side


class SplitError(RuntimeError):
    """A split could not be started or resumed."""


class SplitAborted(SplitError):
    """A split backed out cleanly before its write cutover.

    Raised when maintenance backpressure or an open circuit breaker says
    the cluster cannot afford the copy right now.  Nothing has been
    published: routing, data, and clocks are exactly as they were.
    """


class SplitUnsupported(SplitAborted):
    """The shard's shape rules out an online split (ISSUE 9).

    Today that means secondary indexes: the zero-decode partitioner
    moves the primary index only, so a shard carrying secondaries must
    drop them first.  Carries ``source_id`` and the offending
    ``index_names`` so callers (and tests) can react without parsing
    the message.  Nothing has been published when this raises.
    """

    def __init__(self, source_id: int, index_names: Sequence[str]) -> None:
        self.source_id = source_id
        self.index_names = tuple(index_names)
        super().__init__(
            f"online split of shard {source_id} moves the primary index "
            "only; drop secondary indexes first: "
            f"{', '.join(self.index_names)}"
        )


# Phase order.  Everything from "migrating" on recovers by rolling
# forward; "pre_copy" is the only phase that rolls back.
PHASES = ("pre_copy", "migrating", "copied", "published", "done")


@dataclass
class SplitState:
    """One in-flight (or crashed) split's progress."""

    source_id: int
    slot: int
    left_id: int = -1
    right_id: int = -1
    phase: str = "pre_copy"
    migrating_epoch: int = -1
    final_epoch: int = -1
    copied_blocks: int = 0
    copied_entries: int = 0
    quiesce_grooms: int = 0

    def summary(self) -> dict:
        return {
            "source": self.source_id,
            "successors": (self.left_id, self.right_id),
            "phase": self.phase,
            "migrating_epoch": self.migrating_epoch,
            "final_epoch": self.final_epoch,
            "copied_blocks": self.copied_blocks,
            "copied_entries": self.copied_entries,
            "quiesce_grooms": self.quiesce_grooms,
        }


def copy_post_groomed_blocks(
    source: WildfireShard, successors: Tuple[WildfireShard, WildfireShard]
) -> int:
    """Transfer the source's post-groomed record blocks to both successors.

    Both successors receive *every* block: record blocks are addressed by
    RID from entry blobs, and each successor's entry subset may reference
    any block.  Idempotent; returns blocks copied this call.
    """
    block_ids = source.catalog.live_post_groomed_ids()
    overlay = source.catalog.export_end_ts_overlay()
    copied = 0
    for successor in successors:
        copied += len(
            successor.catalog.adopt_post_groomed(source.catalog, block_ids, overlay)
        )
    return copied


def _successor_has_copy(successor: WildfireShard) -> bool:
    return bool(successor.index.run_lists[Zone.POST_GROOMED].snapshot())


def partition_runs(
    source: WildfireShard,
    left: WildfireShard,
    right: WildfireShard,
    slicer: ShardingKeySlicer,
) -> int:
    """Stream the source's visible entries into per-successor runs.

    The source must be quiesced (post-groomed zone only).  Streams the
    newest-first run stack through the zero-decode blob merge (identical
    sort keys dedup to the newest copy, exactly as evolve/merge do),
    partitions each raw pair by the sharding-key hash bit, and builds at
    most one post-groomed run per successor with a union synopsis.  The
    ``split.mid_copy`` crash point sits between the two builds.
    Idempotent per successor: a successor that already published its
    copied run is skipped, so crash replays never duplicate entries.
    Returns the number of entries copied this call.
    """
    pin = source.index.pin_snapshot()
    try:
        runs = source.index.run_lists[Zone.POST_GROOMED].snapshot()
        definition = source.index.definition
        buckets: Tuple[List[Tuple[bytes, bytes]], ...] = ([], [])
        if runs:
            for sort_key, blob in merge_entry_blob_streams(
                definition, runs, intent=ReadIntent.MAINTENANCE
            ):
                side = successor_side(slicer.hash_of_sort_key(sort_key))
                buckets[side].append((sort_key, blob))
        synopsis = (
            Synopsis.union([run.header.synopsis for run in runs]) if runs else None
        )
        copied = 0
        for side, successor in enumerate((left, right)):
            if side == 1:
                crash_point("split.mid_copy")
            pairs = buckets[side]
            if not pairs or _successor_has_copy(successor):
                continue
            run = successor.index.builder.build_from_blobs(
                run_id=successor.index.allocator.allocate(Zone.POST_GROOMED),
                blob_pairs=pairs,
                synopsis=synopsis,
                zone=Zone.POST_GROOMED,
                level=successor.index.config.levels.first_post_groomed_level,
                min_groomed_id=-1,
                max_groomed_id=-1,
                persisted=True,
                write_through_ssd=True,
            )
            successor.index.run_lists[Zone.POST_GROOMED].push_front(run)
            copied += len(pairs)
        return copied
    finally:
        pin.release()


__all__ = [
    "PHASES",
    "SplitAborted",
    "SplitError",
    "SplitState",
    "SplitUnsupported",
    "copy_post_groomed_blocks",
    "partition_runs",
    "successor_side",
]
