"""Primary + secondary index management for one shard.

The paper's future work (section 10): "we plan to extend Umzi to build and
maintain secondary indexes in HTAP systems."  This module implements that
extension: a shard owns one *primary* Umzi index (key columns = the
table's primary key) and any number of *secondary* Umzi indexes (key
columns over arbitrary table columns).

All indexes share the shard's lifecycle: every groom builds one run per
index over the new groomed block, and every post-groom is followed by one
evolve per index.  Secondary indexes are multi-version exactly like the
primary -- a secondary entry carries the version's ``beginTS`` and RID, so
snapshot reads and time travel work through them too.  Secondary keys are
not unique: a secondary lookup is a range scan over the secondary key
returning every matching (primary) row's newest visible version.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.encoding import KeyValue
from repro.core.index import UmziConfig, UmziIndex
from repro.storage.hierarchy import StorageHierarchy
from repro.wildfire.schema import IndexSpec, SchemaError, TableSchema

PRIMARY_INDEX_NAME = "primary"


@dataclass
class ShardIndex:
    """One named index attached to a shard."""

    name: str
    spec: IndexSpec
    index: UmziIndex
    extract: Callable


class ShardIndexes:
    """The set of indexes a shard maintains in lockstep."""

    def __init__(
        self,
        schema: TableSchema,
        primary_spec: IndexSpec,
        hierarchy: StorageHierarchy,
        umzi_config: UmziConfig,
        secondary_specs: Optional[Dict[str, IndexSpec]] = None,
        require_primary: bool = True,
    ) -> None:
        self.schema = schema
        if require_primary:
            primary_spec.validate_primary(schema)
        self.primary = self._attach(
            PRIMARY_INDEX_NAME, primary_spec, hierarchy, umzi_config
        )
        self.secondaries: Dict[str, ShardIndex] = {}
        for name, spec in (secondary_specs or {}).items():
            self.add_secondary(name, spec, hierarchy, umzi_config)

    def _attach(
        self,
        name: str,
        spec: IndexSpec,
        hierarchy: StorageHierarchy,
        umzi_config: UmziConfig,
    ) -> ShardIndex:
        config = replace(
            umzi_config, name=f"{self.schema.name}-{name}"
        )
        index = UmziIndex(spec.build_definition(self.schema), hierarchy, config)
        return ShardIndex(
            name=name, spec=spec, index=index,
            extract=spec.extractor(self.schema),
        )

    def add_secondary(
        self,
        name: str,
        spec: IndexSpec,
        hierarchy: StorageHierarchy,
        umzi_config: UmziConfig,
    ) -> ShardIndex:
        """Register a secondary index (before any data is ingested).

        Building secondary indexes over pre-existing data would require a
        backfill scan, which the engine does not implement; registration is
        therefore restricted to empty shards (enforced by the caller).
        """
        if name == PRIMARY_INDEX_NAME or name in self.secondaries:
            raise SchemaError(f"index name {name!r} already in use")
        # Suffix the primary key so every (secondary key, primary key) pair
        # is unique -- reconciliation must collapse versions, not distinct
        # records that happen to share a secondary value.
        spec = spec.with_primary_key_suffix(self.schema)
        attached = self._attach(name, spec, hierarchy, umzi_config)
        self.secondaries[name] = attached
        return attached

    # -- iteration ---------------------------------------------------------------

    def all(self) -> List[ShardIndex]:
        return [self.primary] + list(self.secondaries.values())

    def get(self, name: str) -> ShardIndex:
        if name == PRIMARY_INDEX_NAME:
            return self.primary
        if name in self.secondaries:
            return self.secondaries[name]
        raise KeyError(f"no index named {name!r}")

    def names(self) -> List[str]:
        return [si.name for si in self.all()]

    # -- lifecycle fan-out ---------------------------------------------------------

    def build_groomed_runs(self, block) -> Dict[str, str]:
        """One index run per index over one newly groomed block.

        Uses the block's batched ``(rid, record)`` hand-off; each entry is
        then serialized exactly once by the run builder's encode-once path.
        """
        run_ids: Dict[str, str] = {}
        for shard_index in self.all():
            make_entry = shard_index.index.make_entry
            extract = shard_index.extract
            entries = [
                make_entry(*extract(record.values), record.begin_ts, rid)
                for rid, record in block.iter_indexable()
            ]
            run = shard_index.index.add_groomed_run(
                entries,
                min_groomed_id=block.block_id,
                max_groomed_id=block.block_id,
            )
            run_ids[shard_index.name] = run.run_id
        return run_ids

    def min_indexed_psn(self) -> int:
        """The slowest index's progress gates groomed-block deletion."""
        return min(si.index.indexed_psn for si in self.all())

    def run_maintenance(self) -> int:
        merges = 0
        for shard_index in self.all():
            merges += len(shard_index.index.run_maintenance())
        return merges


__all__ = ["PRIMARY_INDEX_NAME", "ShardIndex", "ShardIndexes"]
