"""Primary + secondary index management for one shard.

The paper's future work (section 10): "we plan to extend Umzi to build and
maintain secondary indexes in HTAP systems."  This module implements that
extension: a shard owns one *primary* Umzi index (key columns = the
table's primary key) and any number of *secondary* Umzi indexes (key
columns over arbitrary table columns).

All indexes share the shard's lifecycle: every groom builds one run per
index over the new groomed block, and every post-groom is followed by one
evolve per index.  Secondary indexes are multi-version exactly like the
primary -- a secondary entry carries the version's ``beginTS`` and RID, so
snapshot reads and time travel work through them too.  Secondary keys are
not unique: a secondary lookup is a range scan over the secondary key
returning every matching (primary) row's newest visible version.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.encoding import KeyValue
from repro.core.index import UmziConfig, UmziIndex
from repro.storage.hierarchy import StorageHierarchy
from repro.wildfire.schema import IndexSpec, SchemaError, TableSchema

PRIMARY_INDEX_NAME = "primary"


@dataclass
class ShardIndex:
    """One named index attached to a shard."""

    name: str
    spec: IndexSpec
    index: UmziIndex
    extract: Callable
    # Entries whose secondary *key* columns were superseded by a newer
    # version of the same row (ISSUE 10).  Such an entry stays visible
    # forever under its old key -- secondary entries carry no endTS and
    # reconciliation only collapses versions sharing the full entry key --
    # so only a record re-check can filter it.  Any nonzero count
    # disqualifies this index from index-only plans.  Always 0 for the
    # primary (a primary-key change is a different row, not a version).
    ghost_entries: int = 0


class ShardIndexes:
    """The set of indexes a shard maintains in lockstep."""

    def __init__(
        self,
        schema: TableSchema,
        primary_spec: IndexSpec,
        hierarchy: StorageHierarchy,
        umzi_config: UmziConfig,
        secondary_specs: Optional[Dict[str, IndexSpec]] = None,
        require_primary: bool = True,
    ) -> None:
        self.schema = schema
        if require_primary:
            primary_spec.validate_primary(schema)
        self.primary = self._attach(
            PRIMARY_INDEX_NAME, primary_spec, hierarchy, umzi_config
        )
        self.secondaries: Dict[str, ShardIndex] = {}
        column_names = [spec.name for spec in schema.columns]
        self._pk_positions = tuple(
            column_names.index(name) for name in schema.primary_key
        )
        # Ghost tracking (ISSUE 10): per secondary, the last groomed
        # secondary-key tuple of every primary key.  ``None`` marks a key
        # whose last value is unknown (merge of diverged successors) and
        # compares unequal to everything, so the next update of that row
        # is conservatively counted as a ghost.
        self._key_positions: Dict[str, Tuple[int, ...]] = {}
        self._key_memo: Dict[str, Dict[Tuple, Optional[Tuple]]] = {}
        for name, spec in (secondary_specs or {}).items():
            self.add_secondary(name, spec, hierarchy, umzi_config)

    def _attach(
        self,
        name: str,
        spec: IndexSpec,
        hierarchy: StorageHierarchy,
        umzi_config: UmziConfig,
    ) -> ShardIndex:
        config = replace(
            umzi_config, name=f"{self.schema.name}-{name}"
        )
        index = UmziIndex(spec.build_definition(self.schema), hierarchy, config)
        return ShardIndex(
            name=name, spec=spec, index=index,
            extract=spec.extractor(self.schema),
        )

    def add_secondary(
        self,
        name: str,
        spec: IndexSpec,
        hierarchy: StorageHierarchy,
        umzi_config: UmziConfig,
    ) -> ShardIndex:
        """Register a secondary index (before any data is ingested).

        Building secondary indexes over pre-existing data would require a
        backfill scan, which the engine does not implement; registration is
        therefore restricted to empty shards (enforced by the caller).
        """
        if name == PRIMARY_INDEX_NAME or name in self.secondaries:
            raise SchemaError(f"index name {name!r} already in use")
        # Suffix the primary key so every (secondary key, primary key) pair
        # is unique -- reconciliation must collapse versions, not distinct
        # records that happen to share a secondary value.
        spec = spec.with_primary_key_suffix(self.schema)
        attached = self._attach(name, spec, hierarchy, umzi_config)
        self.secondaries[name] = attached
        column_names = [cspec.name for cspec in self.schema.columns]
        self._key_positions[name] = tuple(
            column_names.index(column)
            for column in spec.equality_columns + spec.sort_columns
        )
        self._key_memo[name] = {}
        return attached

    # -- iteration ---------------------------------------------------------------

    def all(self) -> List[ShardIndex]:
        return [self.primary] + list(self.secondaries.values())

    def get(self, name: str) -> ShardIndex:
        if name == PRIMARY_INDEX_NAME:
            return self.primary
        if name in self.secondaries:
            return self.secondaries[name]
        raise KeyError(f"no index named {name!r}")

    def names(self) -> List[str]:
        return [si.name for si in self.all()]

    # -- lifecycle fan-out ---------------------------------------------------------

    def build_groomed_runs(self, block) -> Dict[str, str]:
        """One index run per index over one newly groomed block.

        Uses the block's batched ``(rid, record)`` hand-off; each entry is
        then serialized exactly once by the run builder's encode-once path.
        """
        run_ids: Dict[str, str] = {}
        # Count ghosts *before* publishing the runs that contain them: a
        # planner racing this groom may cache a synopsis at the new
        # version sequence, and it must already see the ghost count that
        # disqualifies index-only for the new entries.
        if self.secondaries:
            self._track_ghosts(block)
        for shard_index in self.all():
            make_entry = shard_index.index.make_entry
            extract = shard_index.extract
            entries = [
                make_entry(*extract(record.values), record.begin_ts, rid)
                for rid, record in block.iter_indexable()
            ]
            run = shard_index.index.add_groomed_run(
                entries,
                min_groomed_id=block.block_id,
                max_groomed_id=block.block_id,
            )
            run_ids[shard_index.name] = run.run_id
        return run_ids

    def _track_ghosts(self, block) -> None:
        """Count secondary entries ghosted by this block's versions.

        A new version whose secondary-key columns differ from the row's
        previous version leaves the previous entry visible forever under
        its old key; the comparison is a pure tuple equality over the
        already-decoded record values (zero extra decodes, nothing when a
        shard has no secondaries).
        """
        pk_positions = self._pk_positions
        for _, record in block.iter_indexable():
            values = record.values
            pk = tuple(values[pos] for pos in pk_positions)
            for name, shard_index in self.secondaries.items():
                memo = self._key_memo[name]
                key = tuple(
                    values[pos] for pos in self._key_positions[name]
                )
                previous = memo.get(pk, key)
                if previous != key:
                    shard_index.ghost_entries += 1
                memo[pk] = key

    def pending_ghosts(self) -> Dict[str, int]:
        """Per-index ghost counts (tools, tests)."""
        return {si.name: si.ghost_entries for si in self.all()}

    def adopt_ghost_state(self, sources: Sequence["ShardIndexes"]) -> None:
        """Inherit ghost tracking from shards whose entries were copied in.

        Called at split (one source per successor) and merge (both
        successors into the fused target).  Counts add up -- an
        over-count on a split successor that physically received only
        half the ghosts merely keeps index-only disabled, never serves a
        stale answer.  Memo entries that disagree across sources (the
        row was rewritten on one side during the split window) collapse
        to ``None``, which compares unequal to any future key and so
        counts the next update as a ghost -- conservative, never wrong.
        """
        for name, shard_index in self.secondaries.items():
            memo = self._key_memo[name]
            for source in sources:
                shard_index.ghost_entries += source.secondaries[
                    name
                ].ghost_entries
                for pk, key in source._key_memo.get(name, {}).items():
                    if pk in memo and memo[pk] != key:
                        memo[pk] = None
                    else:
                        memo[pk] = key

    def min_indexed_psn(self) -> int:
        """The slowest index's progress gates groomed-block deletion."""
        return min(si.index.indexed_psn for si in self.all())

    def run_maintenance(self) -> int:
        merges = 0
        for shard_index in self.all():
            merges += len(shard_index.index.run_maintenance())
        return merges


__all__ = ["PRIMARY_INDEX_NAME", "ShardIndex", "ShardIndexes"]
