"""Routing epochs for online shard split (ISSUE 8).

A :class:`ShardMap` is an immutable routing table: hash slot -> the
shard(s) serving that slot.  The slot count is fixed at table creation
(``fnv1a64(sharding key) % num_slots`` never changes, so no key ever
re-hashes); what a split changes is the *route* of one slot:

* ``single``    -- one shard owns the slot (the pre-split state);
* ``migrating`` -- the split's write cutover has happened: writes go to
  the two successors (chosen by a mixed bit of the routing hash, see
  :func:`successor_side`), reads *double-read*
  the responsible successor plus the old primary and keep the newest
  version per key (raw ``beginTS`` comparison);
* ``split``     -- the copy is published: successors serve alone, the
  old primary is retired;
* ``merging``   -- the *reverse* migration (ISSUE 10): a merge's write
  cutover has happened.  ``primary`` is the new fused target shard that
  owns all fresh writes; ``left``/``right`` are the two old successors
  that still hold the authoritative pre-merge data, so reads
  double-read the target plus the responsible old successor until the
  interleaved copy is published back to ``single``.

Maps are published versionset-style through a :class:`ShardMapRegistry`:
every query pins the current map for its whole lifetime (exactly one
Ref and one Unref on the cluster ledger's
:class:`~repro.storage.metrics.EpochStats` -- 2 refcount operations per
query, same invariant as the run-lifecycle versionset), and a publish is
a single atomic reference swap of an immutable object, so routing can
never be observed torn: an in-flight query answers entirely from the
pre-split or entirely from the post-split view.

The module also houses the zero-decode sharding-key slicer: during a
split, streamed ``(sort_key, blob)`` pairs are partitioned between the
two successors by hashing the sharding columns' encoded slices straight
out of the sort key -- no :class:`~repro.core.entry.IndexEntry` is ever
decoded on the copy path.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.core.definition import ColumnType, IndexDefinition
from repro.core.encoding import fnv1a64
from repro.storage.metrics import EpochStats

_MASK64 = (1 << 64) - 1


def successor_side(key_hash: int) -> int:
    """0 for the left successor, 1 for the right.

    Slot selection uses the hash modulo the slot count (the low bits),
    so the successor decision must come from a bit that is independent of
    those *and* well distributed.  No raw bit of the routing hash is safe
    to use directly: FNV-1a diffuses upward poorly on short inputs, to
    the point that bits 24..33 are constant across all small integer
    keys, which would send every key of a slot to the same successor.  A
    64-bit finalizer (Murmur3's ``fmix64``) avalanches every input bit
    before the top bit is taken.
    """
    h = key_hash & _MASK64
    h ^= h >> 33
    h = (h * 0xFF51AFD7ED558CCD) & _MASK64
    h ^= h >> 33
    h = (h * 0xC4CEB9FE1A85EC53) & _MASK64
    h ^= h >> 33
    return h >> 63

_HASH_COLUMN_BYTES = 8
_FIXED_WIDTH_TYPES = (ColumnType.INT64, ColumnType.FLOAT64)


class ShardMapError(RuntimeError):
    """Structural misuse of a shard map or its registry."""


@dataclass(frozen=True)
class SlotRoute:
    """Where one hash slot's keys live.

    ``primary`` is the owning shard (the old primary during a split, the
    new fused target during a merge); ``left``/``right`` are the split
    successors (``-1`` while single).
    """

    state: str  # "single" | "migrating" | "split" | "merging"
    primary: int
    left: int = -1
    right: int = -1

    def __post_init__(self) -> None:
        if self.state not in ("single", "migrating", "split", "merging"):
            raise ShardMapError(f"unknown slot state {self.state!r}")
        if self.state != "single" and (self.left < 0 or self.right < 0):
            raise ShardMapError(f"{self.state} route needs both successors")

    def successor_of(self, key_hash: int) -> int:
        return self.right if successor_side(key_hash) else self.left

    def write_shard(self, key_hash: int) -> int:
        """Where a new row for ``key_hash`` must be ingested."""
        if self.state in ("single", "merging"):
            # A merge's cutover points all fresh writes at the fused
            # target (the route's primary) from the merging epoch on.
            return self.primary
        # Write cutover happens at the migrating publish: successors own
        # all new writes from the first post-cutover epoch on.
        return self.successor_of(key_hash)

    def read_shards(self, key_hash: int) -> Tuple[int, ...]:
        """Shards a point query must consult, fresh-writes holder first.

        During a migration window (split *or* merge) the shard owning
        fresh writes (successor while splitting, fused target while
        merging) *and* the shard holding the authoritative pre-cutover
        data are both read; the caller keeps the newest version per key
        by raw ``beginTS``.
        """
        if self.state == "single":
            return (self.primary,)
        if self.state == "migrating":
            return (self.successor_of(key_hash), self.primary)
        if self.state == "merging":
            return (self.primary, self.successor_of(key_hash))
        return (self.successor_of(key_hash),)

    def scatter_shards(self) -> Tuple[int, ...]:
        """Every shard that may hold any of this slot's keys."""
        if self.state == "single":
            return (self.primary,)
        if self.state == "migrating":
            return (self.left, self.right, self.primary)
        if self.state == "merging":
            return (self.primary, self.left, self.right)
        return (self.left, self.right)


@dataclass(frozen=True)
class ShardMap:
    """One immutable routing epoch."""

    epoch: int
    slots: Tuple[SlotRoute, ...]

    @property
    def num_slots(self) -> int:
        return len(self.slots)

    def slot_of(self, key_hash: int) -> int:
        return key_hash % len(self.slots)

    def route_of(self, key_hash: int) -> SlotRoute:
        return self.slots[key_hash % len(self.slots)]

    def write_shard(self, key_hash: int) -> int:
        return self.route_of(key_hash).write_shard(key_hash)

    def read_shards(self, key_hash: int) -> Tuple[int, ...]:
        return self.route_of(key_hash).read_shards(key_hash)

    def scatter_shards(self) -> Tuple[int, ...]:
        """Union of every slot's possible holders, first-seen order."""
        seen: Dict[int, None] = {}
        for route in self.slots:
            for shard_id in route.scatter_shards():
                seen.setdefault(shard_id, None)
        return tuple(seen)

    def needs_merge(self) -> bool:
        """True while any slot double-reads (scatter results may contain
        the same key from two shards and must dedup by beginTS)."""
        return any(
            route.state in ("migrating", "merging") for route in self.slots
        )

    def with_slot(self, slot: int, route: SlotRoute, epoch: int) -> "ShardMap":
        slots = list(self.slots)
        slots[slot] = route
        return ShardMap(epoch=epoch, slots=tuple(slots))

    @staticmethod
    def initial(num_shards: int) -> "ShardMap":
        return ShardMap(
            epoch=0,
            slots=tuple(SlotRoute("single", i) for i in range(num_shards)),
        )


class MapPin:
    """One query's hold on a routing epoch (idempotent release)."""

    __slots__ = ("map", "_release")

    def __init__(self, shard_map: ShardMap, release) -> None:
        self.map = shard_map
        self._release = release

    @property
    def epoch(self) -> int:
        return self.map.epoch

    def release(self) -> None:
        release, self._release = self._release, None
        if release is not None:
            release()

    def __enter__(self) -> "MapPin":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


class ShardMapRegistry:
    """Versionset-style publication of immutable shard maps.

    Mirrors :class:`~repro.core.epoch.RunLifecycle`'s versionset mode at
    the routing layer: the current map is a single reference, queries
    refcount whole epochs (one Ref + one Unref each, charged to the
    supplied :class:`~repro.storage.metrics.EpochStats`), and a
    superseded epoch is reclaimed when its last pin exits.  ``drain``
    lets the split controller wait until no in-flight query can still be
    answering from a pre-publish view.
    """

    def __init__(
        self, initial: ShardMap, stats: Optional[EpochStats] = None
    ) -> None:
        self._stats = stats if stats is not None else EpochStats()
        self._cond = threading.Condition()
        self._current = initial
        self._refs: Dict[int, int] = {initial.epoch: 0}
        self._stats.versions_published += 1

    @property
    def current(self) -> ShardMap:
        with self._cond:
            return self._current

    @property
    def epoch(self) -> int:
        with self._cond:
            return self._current.epoch

    def refs(self, epoch: int) -> int:
        with self._cond:
            return self._refs.get(epoch, 0)

    def pin(self) -> MapPin:
        with self._cond:
            shard_map = self._current
            self._refs[shard_map.epoch] += 1
            self._stats.pins_entered += 1
            self._stats.version_refs += 1
        return MapPin(shard_map, lambda: self._unpin(shard_map.epoch))

    def _unpin(self, epoch: int) -> None:
        with self._cond:
            self._refs[epoch] -= 1
            self._stats.pins_exited += 1
            self._stats.version_unrefs += 1
            if self._refs[epoch] == 0 and epoch != self._current.epoch:
                del self._refs[epoch]
                self._stats.versions_reclaimed += 1
            self._cond.notify_all()

    def publish(self, new_map: ShardMap) -> ShardMap:
        """Atomically swap in a newer epoch; returns the superseded map."""
        with self._cond:
            old = self._current
            if new_map.epoch <= old.epoch:
                raise ShardMapError(
                    f"epoch must advance: {new_map.epoch} <= {old.epoch}"
                )
            self._current = new_map
            self._refs.setdefault(new_map.epoch, 0)
            self._stats.versions_published += 1
            if self._refs.get(old.epoch, 0) == 0:
                self._refs.pop(old.epoch, None)
                self._stats.versions_reclaimed += 1
            self._cond.notify_all()
            return old

    def drain(self, epoch: int, timeout_s: float = 30.0) -> None:
        """Block until no pin on ``epoch`` remains (publish barrier)."""
        deadline = time.monotonic() + timeout_s
        with self._cond:
            while self._refs.get(epoch, 0) > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ShardMapError(
                        f"epoch {epoch} failed to drain within {timeout_s}s "
                        f"({self._refs.get(epoch, 0)} pins)"
                    )
                self._cond.wait(timeout=remaining)


class ShardingKeySlicer:
    """Hash the sharding key straight off a raw sort key (zero-decode).

    The sort key is ``[hash column (8B)] + encoded key columns +
    ~beginTS``; each key column's encoding is self-delimiting (fixed 8
    bytes for INT64/FLOAT64, escaped-and-terminated for STRING/BYTES), so
    the sharding columns' encoded slices can be located and concatenated
    without decoding a single value.  The concatenation equals
    ``encode_composite(sharding values)`` byte for byte, so
    ``fnv1a64`` of it is exactly the routing hash the ingest path uses.
    """

    def __init__(
        self,
        definition: IndexDefinition,
        sharding_columns: Sequence[str],
    ) -> None:
        self._definition = definition
        key_names = [spec.name for spec in definition.key_columns]
        positions = []
        for name in sharding_columns:
            if name not in key_names:
                raise ShardMapError(
                    f"sharding column {name!r} is not an index key column; "
                    "online split requires the sharding key to be part of "
                    f"the index key {key_names}"
                )
            positions.append(key_names.index(name))
        self._positions = tuple(positions)

    def hash_of_sort_key(self, sort_key: bytes) -> int:
        slices = self._column_slices(sort_key)
        payload = b"".join(
            sort_key[slices[p][0] : slices[p][1]] for p in self._positions
        )
        return fnv1a64(payload)

    def _column_slices(self, sort_key: bytes) -> Tuple[Tuple[int, int], ...]:
        offset = _HASH_COLUMN_BYTES if self._definition.has_hash_column else 0
        slices = []
        for spec in self._definition.key_columns:
            start = offset
            if spec.ctype in _FIXED_WIDTH_TYPES:
                offset += 8
            else:
                # STRING/BYTES: 0x00 is escaped as 0x00 0xFF; the value
                # ends at the unescaped 0x00 0x00 terminator.
                i = offset
                while True:
                    i = sort_key.index(0, i)
                    if sort_key[i + 1] == 0xFF:
                        i += 2
                        continue
                    offset = i + 2
                    break
            slices.append((start, offset))
        return tuple(slices)


__all__ = [
    "MapPin",
    "ShardMap",
    "ShardMapError",
    "ShardMapRegistry",
    "ShardingKeySlicer",
    "SlotRoute",
    "successor_side",
]
