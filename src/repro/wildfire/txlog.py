"""The live zone: transaction side-logs and the committed log (section 2.1).

A transaction appends uncommitted changes to a private side-log; on commit
the side-log is stamped with a tentative commit time and appended to the
committed transaction log.  The committed log "is kept in memory for fast
access, and also persisted on the local SSDs" -- the simulation keeps the
records in memory and charges SSD write latency for the persisted copy.

The groomer drains the committed log in time order.  The live zone is not
indexed (section 3: it stays small because grooming is frequent).
"""

from __future__ import annotations

import struct
import threading
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.encoding import KeyValue
from repro.storage.block import Block, BlockId
from repro.storage.hierarchy import StorageHierarchy


@dataclass
class CommittedTransaction:
    """One committed transaction's upserts, in write order."""

    commit_seq: int
    replica_id: int
    rows: List[Tuple[KeyValue, ...]]


class SideLog:
    """A transaction-local log of uncommitted upserts."""

    def __init__(self) -> None:
        self._rows: List[Tuple[KeyValue, ...]] = []

    def append(self, row: Tuple[KeyValue, ...]) -> None:
        self._rows.append(row)

    def rows(self) -> List[Tuple[KeyValue, ...]]:
        return list(self._rows)

    def __len__(self) -> int:
        return len(self._rows)


class CommittedLog:
    """The shard's committed, replicated transaction log.

    ``drain()`` hands everything committed so far to the groomer and resets
    the live zone (the paper's groom "bounds the growth of the committed
    log").
    """

    def __init__(
        self,
        hierarchy: Optional[StorageHierarchy] = None,
        namespace: str = "live-log",
    ) -> None:
        self._lock = threading.Lock()
        self._transactions: List[CommittedTransaction] = []
        self._hierarchy = hierarchy
        self._namespace = namespace
        self._persist_ordinal = 0

    def append(self, transaction: CommittedTransaction) -> None:
        with self._lock:
            self._transactions.append(transaction)
        self._persist(transaction)

    def _persist(self, transaction: CommittedTransaction) -> None:
        """Charge the SSD cost of persisting the committed log segment."""
        if self._hierarchy is None:
            return
        # Only the byte volume matters for accounting; a compact length
        # estimate (rows x rough row size) avoids full serialization cost.
        approx = 16 + sum(16 + 8 * len(row) for row in transaction.rows)
        with self._lock:
            ordinal = self._persist_ordinal
            self._persist_ordinal += 1
        self._hierarchy.ssd.write(
            Block(BlockId(self._namespace, ordinal), b"\x00" * approx)
        )

    def drain(self) -> List[CommittedTransaction]:
        """Remove and return all committed transactions, in commit order."""
        with self._lock:
            drained = self._transactions
            self._transactions = []
        drained.sort(key=lambda tx: tx.commit_seq)
        if self._hierarchy is not None:
            # Groomed data supersedes the persisted log segments.
            self._hierarchy.ssd.delete_namespace(self._namespace)
        return drained

    def requeue(self, transactions: Iterable[CommittedTransaction]) -> None:
        """Put drained transactions back at the head of the live zone.

        Abort safety for the groomer (ISSUE 7): ``drain()`` consumes the
        log *before* the groomed block is written, so a groom that aborts
        mid-flight (storage brownout, breaker fast-fail) must hand the
        rows back or they would only survive via crash recovery.  The
        requeued transactions keep their original commit sequence, so a
        later drain re-sorts them into the identical commit order.
        """
        restored = list(transactions)
        if not restored:
            return
        with self._lock:
            self._transactions = restored + self._transactions
        if self._hierarchy is not None:
            # Re-charge the persisted copy the aborted drain deleted.
            for transaction in restored:
                self._persist(transaction)

    def pending_rows(self) -> int:
        with self._lock:
            return sum(len(tx.rows) for tx in self._transactions)

    def peek(self) -> List[CommittedTransaction]:
        """Read the live zone without draining (live-zone queries)."""
        with self._lock:
            return list(self._transactions)

    def __len__(self) -> int:
        with self._lock:
            return len(self._transactions)


__all__ = ["CommittedLog", "CommittedTransaction", "SideLog"]
