"""Automatic split/merge policy over the online reorganizers (ISSUE 10).

The cluster can now reorganize in both directions --
:meth:`~repro.wildfire.cluster.ShardedTable.split_shard` fans a hot
shard out, :meth:`~repro.wildfire.cluster.ShardedTable.merge_shards`
fuses two cold successors back -- but something has to decide *when*.
:class:`RebalancePolicy` is that something: a deliberately small
controller that watches zero-decode signals (per-shard primary-synopsis
entry counts and the admission controller's queue backlog) and drives
at most one reorganization per evaluation.

Stability borrows :class:`~repro.qos.scheduler.DaemonScheduler`'s
hysteresis shape rather than its thresholds: a condition must hold for
a *streak* of consecutive evaluations before the policy acts
(``split_after`` / ``merge_after``), the streak resets the moment the
condition lapses, and every action starts a global *cooldown* during
which the policy only observes.  Split and merge thresholds are kept
far apart (high water vs low water), so a slot cannot oscillate: a
shard must both drain to a fraction of the split trigger *and* stay
that cold for ``merge_after`` evaluations before it is fused back.

The policy never forces work through backpressure: a
:class:`~repro.wildfire.split.SplitAborted` /
:class:`~repro.wildfire.merge.MergeAborted` (the qos gate refusing the
copy) is recorded, counted, and retried only after the condition
re-accumulates a full streak.  ``step()`` is synchronous and
single-threaded by design -- benches and tests drive it interleaved
with query work; ``start()`` wraps it in the same daemon-thread idiom
the shard maintenance loops use.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.wildfire.merge import MergeAborted
from repro.wildfire.split import SplitAborted


@dataclass(frozen=True)
class RebalanceConfig:
    """Thresholds and hysteresis for the automatic policy.

    ``split_entry_high_water`` is the per-shard primary entry count that
    marks a shard hot; ``backlog_high_water_ns`` marks the *cluster*
    overloaded, in which case the largest single-slot shard is the split
    candidate even below its entry high water.  ``merge_entry_low_water``
    is the *combined* entry count under which a split slot's two
    successors count as cold.  ``split_after`` / ``merge_after`` are the
    consecutive-evaluation streaks required before acting, and
    ``cooldown_evaluations`` is the post-action observation-only period.
    """

    split_entry_high_water: int = 10_000
    backlog_high_water_ns: int = 2_000_000
    merge_entry_low_water: int = 2_000
    split_after: int = 3
    merge_after: int = 5
    cooldown_evaluations: int = 4


@dataclass
class RebalanceStats:
    evaluations: int = 0
    splits: int = 0
    merges: int = 0
    aborted_splits: int = 0
    aborted_merges: int = 0
    cooldown_skips: int = 0

    def snapshot(self) -> Dict[str, int]:
        return dict(vars(self))


@dataclass
class _Decision:
    """One acted-on (or refused) reorganization, for the audit trail."""

    evaluation: int
    action: str  # "split" | "merge" | "split_aborted" | "merge_aborted"
    shards: Tuple[int, ...]
    reason: str
    epoch_after: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "evaluation": self.evaluation,
            "action": self.action,
            "shards": list(self.shards),
            "reason": self.reason,
            "epoch_after": self.epoch_after,
        }


@dataclass
class RebalancePolicy:
    """Drives at most one split or merge per :meth:`step`."""

    table: object
    config: RebalanceConfig = field(default_factory=RebalanceConfig)

    def __post_init__(self) -> None:
        self.stats = RebalanceStats()
        self.decisions: List[_Decision] = []
        self._split_streaks: Dict[int, int] = {}
        self._merge_streaks: Dict[Tuple[int, int], int] = {}
        self._cooldown = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- signals (all zero-decode) --------------------------------------------

    def entry_count(self, shard_id: int) -> int:
        """The shard's primary-index entry count, straight off the
        synopsis cache (run headers only, no blocks, no decodes)."""
        shard = self.table.shards[shard_id]
        return shard.synopses.synopsis("primary").entry_count

    def backlog_ns(self) -> int:
        admission = self.table.admission
        return admission.backlog_ns() if admission is not None else 0

    def _observe(self) -> Dict[str, object]:
        """Current hot/cold candidates, without acting."""
        slots = self.table.maps.current.slots
        singles = [
            route.primary for route in slots if route.state == "single"
        ]
        splits = [
            (route.left, route.right)
            for route in slots
            if route.state == "split"
        ]
        overloaded = self.backlog_ns() >= self.config.backlog_high_water_ns
        hot = {
            shard_id
            for shard_id in singles
            if self.entry_count(shard_id) >= self.config.split_entry_high_water
        }
        if overloaded and singles and not hot:
            # Queue pressure with no shard over its high water: fan out
            # the largest single-slot shard to spread the load.
            hot = {max(singles, key=self.entry_count)}
        cold = {
            pair
            for pair in splits
            if self.entry_count(pair[0]) + self.entry_count(pair[1])
            <= self.config.merge_entry_low_water
        }
        return {"hot": hot, "cold": cold, "overloaded": overloaded}

    # -- the evaluation loop --------------------------------------------------

    def step(self) -> Optional[Dict[str, object]]:
        """One evaluation: update streaks, maybe act.  Returns the
        decision dict when a reorganization was attempted, else None."""
        self.stats.evaluations += 1
        observed = self._observe()

        # Streaks advance (or reset) every evaluation, cooldown or not:
        # sustained pressure during a cooldown still counts as sustained.
        for shard_id in list(self._split_streaks):
            if shard_id not in observed["hot"]:
                del self._split_streaks[shard_id]
        for shard_id in observed["hot"]:
            self._split_streaks[shard_id] = (
                self._split_streaks.get(shard_id, 0) + 1
            )
        for pair in list(self._merge_streaks):
            if pair not in observed["cold"]:
                del self._merge_streaks[pair]
        for pair in observed["cold"]:
            self._merge_streaks[pair] = self._merge_streaks.get(pair, 0) + 1

        if self._cooldown > 0:
            self._cooldown -= 1
            self.stats.cooldown_skips += 1
            return None

        due_splits = sorted(
            shard_id
            for shard_id, streak in self._split_streaks.items()
            if streak >= self.config.split_after
        )
        if due_splits:
            return self._act_split(due_splits[0], observed)
        due_merges = sorted(
            pair
            for pair, streak in self._merge_streaks.items()
            if streak >= self.config.merge_after
        )
        if due_merges:
            return self._act_merge(due_merges[0])
        return None

    def _record(self, action, shards, reason) -> Dict[str, object]:
        decision = _Decision(
            evaluation=self.stats.evaluations,
            action=action,
            shards=tuple(shards),
            reason=reason,
            epoch_after=self.table.routing_epoch(),
        )
        self.decisions.append(decision)
        return decision.as_dict()

    def _act_split(self, shard_id, observed) -> Dict[str, object]:
        reason = (
            "admission backlog"
            if observed["overloaded"]
            and self.entry_count(shard_id) < self.config.split_entry_high_water
            else "entry high water"
        )
        self._split_streaks.pop(shard_id, None)
        try:
            self.table.split_shard(shard_id)
        except SplitAborted as exc:
            self.stats.aborted_splits += 1
            return self._record(
                "split_aborted", (shard_id,), f"{reason}: {exc}"
            )
        self.stats.splits += 1
        self._cooldown = self.config.cooldown_evaluations
        return self._record("split", (shard_id,), reason)

    def _act_merge(self, pair) -> Dict[str, object]:
        self._merge_streaks.pop(pair, None)
        try:
            self.table.merge_shards(*pair)
        except MergeAborted as exc:
            self.stats.aborted_merges += 1
            return self._record(
                "merge_aborted", pair, f"sustained coldness: {exc}"
            )
        self.stats.merges += 1
        self._cooldown = self.config.cooldown_evaluations
        return self._record("merge", pair, "sustained coldness")

    # -- daemon wrapper -------------------------------------------------------

    def start(self, interval_s: float = 0.05) -> None:
        """Run :meth:`step` on a daemon thread until :meth:`stop`."""
        if self._thread is not None:
            return
        self._stop.clear()

        def loop() -> None:
            while not self._stop.wait(interval_s):
                self.step()

        self._thread = threading.Thread(
            target=loop, name="rebalance-policy", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=10.0)
        self._thread = None

    def summary(self) -> Dict[str, object]:
        return {
            "stats": self.stats.snapshot(),
            "cooldown": self._cooldown,
            "split_streaks": dict(self._split_streaks),
            "merge_streaks": {
                f"{left}+{right}": streak
                for (left, right), streak in self._merge_streaks.items()
            },
            "decisions": [d.as_dict() for d in self.decisions],
        }


__all__ = [
    "RebalanceConfig",
    "RebalancePolicy",
    "RebalanceStats",
]
