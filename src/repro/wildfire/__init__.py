"""Single-shard simulation of the Wildfire HTAP engine (paper section 2).

Wildfire itself is IBM product-adjacent C++ and unavailable; this package
rebuilds the parts Umzi's behaviour depends on, faithfully:

* the **live zone**: transaction side-logs and the committed log;
* the **groomer**: merges committed transactions in time order, assigns
  monotonic hybrid ``beginTS`` values, emits columnar groomed blocks and
  builds index runs;
* the **post-groomer**: resolves ``prevRID`` / ``endTS`` through the index,
  repartitions data by the partition key into larger post-groomed blocks
  and publishes post-groom sequence numbers (PSNs);
* the **indexer daemon**: polls MaxPSN and applies index evolve operations
  in PSN order;
* **snapshot-isolation reads** by query timestamp, including time travel.

Everything runs against the simulated storage hierarchy, and the whole
lifecycle can be driven deterministically (``WildfireShard.run_cycles``)
or with real background threads (``WildfireShard.start_daemons``).
"""

from repro.wildfire.schema import IndexSpec, TableSchema
from repro.wildfire.record import Record
from repro.wildfire.clock import HybridClock
from repro.wildfire.engine import ShardConfig, WildfireShard

__all__ = [
    "HybridClock",
    "IndexSpec",
    "Record",
    "ShardConfig",
    "TableSchema",
    "WildfireShard",
]
