"""Upsert transactions (paper section 2.1).

"All inserts, updates, and deletes in Wildfire are treated as upserts based
on the user-defined primary key" with last-writer-wins semantics for
concurrent updates.  A transaction stages rows in its side-log and, at
commit, stamps them with a tentative commit sequence and appends to the
committed log.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.core.encoding import KeyValue
from repro.wildfire.clock import HybridClock
from repro.wildfire.schema import TableSchema
from repro.wildfire.txlog import CommittedLog, CommittedTransaction, SideLog


class TransactionError(RuntimeError):
    """Commit/abort misuse (double commit, use after close)."""


class Transaction:
    """A single-shard upsert transaction."""

    def __init__(
        self,
        schema: TableSchema,
        clock: HybridClock,
        committed_log: CommittedLog,
        replica_id: int = 0,
    ) -> None:
        self.schema = schema
        self._clock = clock
        self._committed_log = committed_log
        self._replica_id = replica_id
        self._side_log = SideLog()
        self._closed = False

    def upsert(self, values: Sequence[KeyValue]) -> None:
        """Stage one row (insert or update -- distinguished only by key)."""
        self._ensure_open()
        self._side_log.append(self.schema.validate_row(values))

    def upsert_many(self, rows: Sequence[Sequence[KeyValue]]) -> None:
        for row in rows:
            self.upsert(row)

    def commit(self) -> Optional[int]:
        """Append the side-log to the committed log.

        Returns the tentative commit sequence (the low-order component of
        the eventual ``beginTS``), or ``None`` for an empty transaction.
        """
        self._ensure_open()
        self._closed = True
        rows = self._side_log.rows()
        if not rows:
            return None
        commit_seq = self._clock.next_commit_seq()
        self._committed_log.append(
            CommittedTransaction(
                commit_seq=commit_seq, replica_id=self._replica_id, rows=rows
            )
        )
        return commit_seq

    def abort(self) -> None:
        """Discard the side-log; uncommitted changes were never visible."""
        self._ensure_open()
        self._closed = True
        self._side_log = SideLog()

    @property
    def pending(self) -> int:
        return len(self._side_log)

    def _ensure_open(self) -> None:
        if self._closed:
            raise TransactionError("transaction already committed or aborted")


__all__ = ["Transaction", "TransactionError"]
