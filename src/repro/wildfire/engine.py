"""The shard facade: one table shard with the full Wildfire lifecycle.

Ties together the committed log, groomer, post-groomer, indexer daemon and
the Umzi index over one storage hierarchy, and exposes:

* ingestion (auto-commit upserts or explicit transactions);
* the lifecycle drivers -- deterministic (:meth:`WildfireShard.tick`,
  :meth:`run_cycles`) and threaded (:meth:`start_daemons`), matching the
  paper's cadence of "groomer runs every second, post-groomer every 20
  seconds" as a cycle ratio;
* snapshot-isolation reads: point lookups, range scans, batched lookups,
  and time travel via explicit query timestamps, each resolving RIDs to
  records through the block catalog.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.encoding import KeyValue
from repro.core.entry import IndexEntry, Zone
from repro.core.index import UmziConfig, UmziIndex
from repro.core.maintenance import MaintenanceService
from repro.core.query import MAX_QUERY_TS, PointLookup, RangeScanQuery
from repro.planner import (
    AccessPlan,
    PlanError,
    Query,
    SynopsisCatalog,
    plan_baseline,
    plan_hinted,
    plan_smart,
)
from repro.planner.plan import entry_value
from repro.storage.hierarchy import StorageHierarchy
from repro.storage.retry import TransientIOError
from repro.wildfire.blockstore import BlockCatalog
from repro.wildfire.clock import HybridClock
from repro.wildfire.groomer import GroomResult, Groomer
from repro.wildfire.indexer import IndexerDaemon, IndexerStepResult
from repro.wildfire.indexes import PRIMARY_INDEX_NAME, ShardIndexes
from repro.wildfire.postgroomer import PostGroomer, PostGroomOp
from repro.wildfire.record import Record
from repro.wildfire.schema import IndexSpec, SchemaError, TableSchema
from repro.wildfire.transaction import Transaction
from repro.wildfire.txlog import CommittedLog


@dataclass(frozen=True)
class ShardConfig:
    """Lifecycle cadence and component tunables for one shard.

    Most fields mirror a knob of the paper's deployment (groom/post-groom
    cadence, partition buckets); the ablation-style flags are
    ``streaming_evolve`` (zero-decode evolve vs legacy rebuild),
    ``maintenance_read_mode`` (maintenance-aware cache admission vs the
    legacy promote-everything read path) and ``run_lifecycle``
    (version-set query pins vs the per-run epoch ledger vs the
    unprotected legacy reclamation).
    """

    post_groom_every: int = 20  # groom cycles per post-groom (paper: 1s vs 20s)
    partition_buckets: int = 4
    umzi: UmziConfig = field(default_factory=UmziConfig)
    require_primary_index: bool = True
    groomed_block_grace_psns: int = 1
    # Zero-decode evolve (raw RID splices over groomed entry blobs) vs the
    # legacy per-index entry rebuild; see wildfire.indexer.
    streaming_evolve: bool = True
    # Maintenance-aware cache admission for the whole shard: "intent"
    # (default) makes MAINTENANCE-intent reads -- evolve streams, merges,
    # post-groomer scans, recovery validation -- bypass SSD-cache promotion
    # so background churn never evicts query-hot blocks; "legacy" restores
    # the promote-everything behaviour as an ablation baseline.  Applied
    # only when the shard constructs its own hierarchy; an externally
    # supplied hierarchy keeps its owner's policy.  See
    # storage.metrics.ReadIntent and benchmarks/bench_cache_maintenance.py.
    maintenance_read_mode: str = "intent"
    # Run lifecycle for every index of the shard: "versionset" (default)
    # refcounts immutable run-list versions LevelDB/RocksDB-style (one
    # Ref/Unref per query, O(1) in run count) and defers physical
    # reclamation of evolved/merged-away runs until no live version
    # contains them -- what makes `start_daemons` safe for concurrent
    # readers; "epoch" is the per-run-refcount ablation (same safety,
    # O(runs) pin cost) and "legacy" the unprotected pre-lifecycle
    # ablation (see repro.core.epoch and
    # benchmarks/bench_concurrent_throughput.py).  Overrides the nested
    # `umzi.run_lifecycle` so one flag governs primary and secondaries.
    run_lifecycle: str = "versionset"
    # Secondary indexes (name -> spec), maintained in lockstep with the
    # primary through every groom and evolve (paper section 10 future work).
    secondary_indexes: Optional[Dict[str, "IndexSpec"]] = None
    # Access-path planner for typed queries (ISSUE 9): "smart" (default)
    # costs every candidate path -- primary point/scan, secondary prefix
    # scan + RID fetch-back, index-only covering answers -- from run-header
    # statistics; "baseline" always runs the primary and always fetches
    # records (pre-planner behaviour, kept as the ablation arm of
    # benchmarks/bench_access_path.py).  The legacy wrapper methods are
    # unaffected: they ride hinted plans under either setting.
    planner: str = "smart"


class WildfireShard:
    """A single table shard of the simulated Wildfire engine."""

    def __init__(
        self,
        schema: TableSchema,
        index_spec: IndexSpec,
        hierarchy: Optional[StorageHierarchy] = None,
        config: Optional[ShardConfig] = None,
    ) -> None:
        self.schema = schema
        self.index_spec = index_spec
        self.config = config if config is not None else ShardConfig()
        if self.config.require_primary_index:
            index_spec.validate_primary(schema)
        self._owns_hierarchy = hierarchy is None
        self.hierarchy = hierarchy if hierarchy is not None else StorageHierarchy()

        self.clock = HybridClock()
        self.committed_log = CommittedLog(
            self.hierarchy, namespace=f"{schema.name}-live-log"
        )
        self.catalog = BlockCatalog(schema, self.hierarchy)
        # One lifecycle flag governs every index of the shard (primary and
        # secondaries evolve in lockstep, so their reclamation discipline
        # must match too).  Refuse a conflicting nested setting rather than
        # silently stamping over it.
        if self.config.umzi.run_lifecycle not in (
            "versionset", self.config.run_lifecycle
        ):
            raise ValueError(
                "ShardConfig.run_lifecycle="
                f"{self.config.run_lifecycle!r} conflicts with "
                f"umzi.run_lifecycle={self.config.umzi.run_lifecycle!r}; "
                "set the shard-level flag (it governs every index of the "
                "shard)"
            )
        umzi_config = replace(
            self.config.umzi, run_lifecycle=self.config.run_lifecycle
        )
        self.indexes = ShardIndexes(
            schema,
            index_spec,
            self.hierarchy,
            umzi_config,
            secondary_specs=self.config.secondary_indexes,
            require_primary=self.config.require_primary_index,
        )
        self.index = self.indexes.primary.index  # the primary Umzi index
        # One hierarchy serves every index of the shard, so cache-admission
        # policy is decided once, by whoever owns the hierarchy: the shard
        # applies its flag only to a hierarchy it constructed itself; an
        # externally supplied one keeps its owner's policy (the same rule
        # UmziIndex follows).
        if self._owns_hierarchy:
            self.hierarchy.set_maintenance_read_mode(
                self.config.maintenance_read_mode
            )
        self.groomer = Groomer(
            schema, self.clock, self.committed_log, self.catalog, self.indexes
        )
        self.post_groomer = PostGroomer(
            schema,
            self.catalog,
            self.index,
            index_spec,
            partition_buckets=self.config.partition_buckets,
        )
        self.indexer = IndexerDaemon(
            schema,
            self.catalog,
            self.indexes,
            self.post_groomer,
            groomed_block_grace_psns=self.config.groomed_block_grace_psns,
            streaming_evolve=self.config.streaming_evolve,
        )
        self.maintenance = MaintenanceService(self.index.merger, self.index.cache)
        self._secondary_maintenance = [
            MaintenanceService(si.index.merger, si.index.cache)
            for si in self.indexes.secondaries.values()
        ]
        self._extract = index_spec.extractor(schema)
        # Access-path planning (ISSUE 9): the per-index statistics cache
        # (version-seq refreshed, zero-decode) and the primary-key ->
        # primary-index positional maps the fetch-back path uses to turn
        # a pk tuple recovered from a secondary entry into a primary
        # point lookup.
        if self.config.planner not in ("baseline", "smart"):
            raise ValueError(
                f"ShardConfig.planner must be 'baseline' or 'smart'; "
                f"got {self.config.planner!r}"
            )
        self.synopses = SynopsisCatalog(self.indexes)
        try:
            primary_spec = self.indexes.primary.spec
            self._pk_to_primary_eq: Optional[Tuple[int, ...]] = tuple(
                schema.primary_key.index(c)
                for c in primary_spec.equality_columns
            )
            self._pk_to_primary_sort: Optional[Tuple[int, ...]] = tuple(
                schema.primary_key.index(c)
                for c in primary_spec.sort_columns
            )
        except ValueError:
            # Non-primary-key "primary" index (require_primary_index=False
            # shards): typed fetch-back plans are unavailable.
            self._pk_to_primary_eq = None
            self._pk_to_primary_sort = None
        self._daemon_threads: List[threading.Thread] = []
        self._daemons_stop = threading.Event()
        self._cycle = 0
        # Maintenance backpressure (ISSUE 7): when a DaemonScheduler is
        # attached, every maintenance cycle -- deterministic tick or
        # threaded daemon -- first asks its gate; throttled cycles do no
        # maintenance work at all.
        self._scheduler = None
        # Degraded-read mode (ISSUE 7): a long-lived SnapshotPin over the
        # primary index, opened while the shared tier's breaker is open so
        # queries answer from local tiers + a pinned versionset snapshot.
        self._degraded_pin = None
        self._degraded_lock = threading.Lock()

    # ------------------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------------------

    def begin(self, replica_id: int = 0) -> Transaction:
        return Transaction(self.schema, self.clock, self.committed_log, replica_id)

    def ingest(self, rows: Sequence[Sequence[KeyValue]], replica_id: int = 0) -> int:
        """Auto-commit upsert of a batch of rows; returns the commit seq."""
        transaction = self.begin(replica_id)
        transaction.upsert_many(rows)
        commit_seq = transaction.commit()
        return commit_seq if commit_seq is not None else 0

    # ------------------------------------------------------------------------------
    # lifecycle -- deterministic driver
    # ------------------------------------------------------------------------------

    def attach_scheduler(self, scheduler) -> None:
        """Install a maintenance-backpressure gate (or ``None`` to clear).

        ``scheduler`` is any object with an ``allow_maintenance() -> bool``
        method (see :class:`repro.qos.scheduler.DaemonScheduler`); it is
        consulted once per maintenance cycle in both the deterministic
        :meth:`tick` driver and the threaded :meth:`start_daemons` loops.
        """
        self._scheduler = scheduler
        gate = scheduler.allow_maintenance if scheduler is not None else None
        self.maintenance.set_gate(gate)
        for service in self._secondary_maintenance:
            service.set_gate(gate)
        self.indexer.set_gate(gate)

    def tick(self) -> Dict[str, object]:
        """One simulation cycle: groom, maybe post-groom, evolve, merge.

        With a scheduler attached (:meth:`attach_scheduler`), a throttled
        cycle skips *all* maintenance work -- groom included -- and
        reports ``{"throttled": True}``; ingestion keeps accumulating in
        the committed log until the scheduler releases.
        """
        self._cycle += 1
        report: Dict[str, object] = {"cycle": self._cycle}
        if self._scheduler is not None and not self._scheduler.allow_maintenance():
            report["throttled"] = True
            return report
        try:
            groom = self.groomer.groom()
            report["groom"] = groom
            if self._cycle % self.config.post_groom_every == 0:
                report["post_groom"] = self.post_groomer.post_groom()
            evolved = self.indexer.drain()
            if evolved:
                report["evolved"] = evolved
            merges = self.maintenance.step()
            for service in self._secondary_maintenance:
                service.step()
            if merges:
                report["merges"] = merges
        except TransientIOError as exc:
            # Under qos supervision an aborted maintenance cycle must not
            # take the serving loop down: the groomer has requeued its
            # rows, runs are immutable (a half-written one is simply
            # never published), and the scheduler will throttle the next
            # cycles until the storm passes.  Without a scheduler the
            # legacy contract holds: the error propagates.
            if self._scheduler is None:
                raise
            report["maintenance_error"] = type(exc).__name__
        return report

    def run_cycles(self, cycles: int, ingest_fn=None) -> List[Dict[str, object]]:
        """Drive ``cycles`` ticks; ``ingest_fn(cycle)`` feeds rows first."""
        reports = []
        for _ in range(cycles):
            if ingest_fn is not None:
                rows = ingest_fn(self._cycle + 1)
                if rows:
                    self.ingest(rows)
            reports.append(self.tick())
        return reports

    @property
    def cycle(self) -> int:
        return self._cycle

    # ------------------------------------------------------------------------------
    # lifecycle -- threaded daemons (end-to-end experiments)
    # ------------------------------------------------------------------------------

    def start_daemons(
        self,
        groom_interval_s: float = 0.05,
        post_groom_enabled: bool = True,
    ) -> None:
        """Run groomer/post-groomer/indexer/maintenance as real threads.

        ``groom_interval_s`` is the scaled-down "every second"; the
        post-groomer fires every ``config.post_groom_every`` grooms, as in
        the paper's 1s/20s cadence.  ``post_groom_enabled=False`` is the
        Figure 15 ablation (no post-groom, hence no index evolution).

        **Query safety.**  With the default ``run_lifecycle="versionset"``
        (or the ``"epoch"`` ablation) it is safe to issue point/range/
        batch queries from any number of threads while the daemons run:
        each query pins an immutable run-list version -- a single
        Ref/Unref in versionset mode -- and runs retired by concurrent
        evolves/merges are only physically reclaimed once no live version
        contains them.  Under ``run_lifecycle="legacy"`` (the unprotected
        ablation) a query can race a reclamation and observe missing
        blocks.
        """
        if self._daemon_threads:
            raise RuntimeError("daemons already running")
        self._daemons_stop.clear()

        def groom_loop() -> None:
            grooms = 0
            while not self._daemons_stop.is_set():
                if (
                    self._scheduler is not None
                    and not self._scheduler.allow_maintenance()
                ):
                    time.sleep(groom_interval_s)
                    continue
                try:
                    result = self.groomer.groom()
                except TransientIOError:
                    # Rows were requeued; keep the daemon alive and let
                    # the scheduler throttle until the storm passes.
                    if self._scheduler is None:
                        raise
                    time.sleep(groom_interval_s)
                    continue
                if result is not None:
                    grooms += 1
                    if post_groom_enabled and grooms % self.config.post_groom_every == 0:
                        self.post_groomer.post_groom()
                time.sleep(groom_interval_s)

        thread = threading.Thread(target=groom_loop, name="wildfire-groomer", daemon=True)
        thread.start()
        self._daemon_threads.append(thread)
        if post_groom_enabled:
            self.indexer.start()
        self.maintenance.start()
        for service in self._secondary_maintenance:
            service.start()

    def stop_daemons(self) -> None:
        self._daemons_stop.set()
        for thread in self._daemon_threads:
            thread.join(timeout=5.0)
        self._daemon_threads = []
        self.indexer.stop()
        if self.maintenance.running:
            self.maintenance.stop()
        for service in self._secondary_maintenance:
            if service.running:
                service.stop()

    # ------------------------------------------------------------------------------
    # lifecycle -- quiesce (shard split support, ISSUE 8)
    # ------------------------------------------------------------------------------

    def quiesce(self, max_rounds: int = 256) -> Dict[str, int]:
        """Drain every zone down into the post-groomed zone.

        Grooms until the committed log is empty, post-grooms everything
        groomed so far, and drains the indexer until every published PSN
        has evolved.  Afterwards the index's visible version consists of
        post-groomed runs only (the groomed watermark covers every
        groomed block), which is the state an online split streams out:
        one zone, zero-decode, fully assigned ``beginTS``.
        """
        grooms = 0
        for _ in range(max_rounds):
            if self.committed_log.pending_rows() == 0:
                break
            if self.groomer.groom() is not None:
                grooms += 1
        else:
            raise RuntimeError("quiesce: committed log did not drain")
        self.post_groomer.post_groom()
        for _ in range(max_rounds):
            if self.index.indexed_psn >= self.post_groomer.max_psn:
                break
            self.indexer.drain()
        else:
            raise RuntimeError("quiesce: indexer did not catch up")
        return {
            "grooms": grooms,
            "max_psn": self.post_groomer.max_psn,
            "indexed_psn": self.index.indexed_psn,
        }

    # ------------------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------------------

    def current_snapshot_ts(self) -> int:
        """Freshest groomed-visible snapshot timestamp."""
        return self.clock.now()

    # -- legacy wrappers: thin Query constructors over hinted plans (ISSUE 9).
    # Each builds a typed Query pinning index + mode + raw sort bounds and
    # executes the resulting pass-through plan, so every call site routes
    # through the planner without a single behavioural change: same index
    # calls, same arity/validation errors, same counters.

    def _hinted_query(
        self,
        index_name: str,
        mode: str,
        equality_values: Sequence[KeyValue] = (),
        sort_values: Optional[Sequence[KeyValue]] = None,
        sort_lower: Optional[Sequence[KeyValue]] = None,
        sort_upper: Optional[Sequence[KeyValue]] = None,
        query_ts: Optional[int] = None,
        batch_keys=None,
        fetch_records: bool = True,
    ) -> Query:
        spec = self.indexes.get(index_name).spec
        values = tuple(equality_values)
        names = spec.equality_columns
        if len(names) != len(values):
            # Preserve the arity mismatch verbatim: the error must surface
            # from UmziIndex.lookup/scan at execution, exactly as before.
            names = tuple(f"arg{i}" for i in range(len(values)))
        if mode == "point":
            sort_lower = tuple(sort_values) if sort_values is not None else ()
            sort_upper = None
        return Query(
            equalities=tuple(zip(names, values)),
            query_ts=query_ts,
            index_hint=index_name,
            mode=mode,
            sort_lower=tuple(sort_lower) if sort_lower is not None else None,
            sort_upper=tuple(sort_upper) if sort_upper is not None else None,
            batch_keys=batch_keys,
            fetch_records=fetch_records,
        )

    def _execute_hinted(self, plan: AccessPlan, query: Query):
        """Run a wrapper plan with the legacy return conventions."""
        ts = (
            query.query_ts if query.query_ts is not None
            else self.current_snapshot_ts()
        )
        index = self.indexes.get(plan.index_name).index
        if plan.mode == "point":
            return index.lookup(plan.equality_values, plan.sort_values, ts)
        if plan.mode == "batch":
            lookups = [
                PointLookup(eq, sort, ts) for eq, sort in plan.batch_keys
            ]
            return index.batch_lookup(lookups)
        entries = index.scan(
            plan.equality_values, plan.sort_lower, plan.sort_upper, ts
        )
        if not plan.fetch_records:
            return entries
        return [self.catalog.fetch_record(entry.rid) for entry in entries]

    def index_lookup(
        self,
        equality_values: Sequence[KeyValue] = (),
        sort_values: Sequence[KeyValue] = (),
        query_ts: Optional[int] = None,
    ) -> Optional[IndexEntry]:
        """Pure index point lookup (what the paper's experiments time)."""
        query = self._hinted_query(
            PRIMARY_INDEX_NAME,
            "point",
            equality_values=equality_values,
            sort_values=sort_values,
            query_ts=query_ts,
        )
        return self._execute_hinted(
            plan_hinted(query, self.schema, self.indexes), query
        )

    def index_batch_lookup(
        self,
        keys: Sequence[Tuple[Tuple[KeyValue, ...], Tuple[KeyValue, ...]]],
        query_ts: Optional[int] = None,
    ) -> List[Optional[IndexEntry]]:
        query = self._hinted_query(
            PRIMARY_INDEX_NAME,
            "batch",
            query_ts=query_ts,
            batch_keys=tuple(
                (tuple(eq), tuple(sort)) for eq, sort in keys
            ),
        )
        return self._execute_hinted(
            plan_hinted(query, self.schema, self.indexes), query
        )

    def point_query(
        self,
        equality_values: Sequence[KeyValue] = (),
        sort_values: Sequence[KeyValue] = (),
        query_ts: Optional[int] = None,
        freshness: str = "groomed",
    ) -> Optional[Record]:
        """Index lookup + record fetch through the block catalog.

        ``freshness`` selects the snapshot class (paper section 3: "a query
        may need to access data in the live zone, groomed zone, and/or the
        post-groomed zone"):

        * ``"groomed"`` (default) -- everything groomed so far, i.e. the
          quorum-readable snapshot the index covers;
        * ``"live"`` -- additionally scan the (small, unindexed) live zone
          for committed-but-not-yet-groomed writes; the newest committed
          write for the key wins.  Live-zone versions have no ``beginTS``
          yet (the groomer assigns it), so explicit ``query_ts`` time
          travel only applies to the indexed zones.
        """
        if freshness not in ("groomed", "live"):
            raise ValueError(f"unknown freshness level {freshness!r}")
        if freshness == "live" and query_ts is None:
            live_hit = self._live_zone_lookup(equality_values, sort_values)
            if live_hit is not None:
                return live_hit
        entry = self.index_lookup(equality_values, sort_values, query_ts)
        if entry is None:
            return None
        return self.catalog.fetch_record(entry.rid)

    def _live_zone_lookup(
        self,
        equality_values: Sequence[KeyValue],
        sort_values: Sequence[KeyValue],
    ) -> Optional[Record]:
        """Scan the committed log for the newest write of one key.

        The live zone is deliberately unindexed (section 3: grooming is
        frequent, the zone stays small), so this is a linear scan in commit
        order; the last match is the newest committed version.
        """
        target = tuple(equality_values) + tuple(sort_values)
        newest: Optional[Tuple[int, Tuple[KeyValue, ...]]] = None
        for transaction in self.committed_log.peek():
            for row in transaction.rows:
                eq, sort, _ = self._extract(row)
                if eq + sort == target:
                    candidate = (transaction.commit_seq, row)
                    if newest is None or candidate[0] >= newest[0]:
                        newest = candidate
        if newest is None:
            return None
        # beginTS is assigned at groom time; expose the tentative commit
        # sequence so callers can still order live versions.
        return Record(values=newest[1], begin_ts=newest[0])

    def range_query(
        self,
        equality_values: Sequence[KeyValue] = (),
        sort_lower: Optional[Sequence[KeyValue]] = None,
        sort_upper: Optional[Sequence[KeyValue]] = None,
        query_ts: Optional[int] = None,
        fetch_records: bool = False,
    ) -> List:
        query = self._hinted_query(
            PRIMARY_INDEX_NAME,
            "scan",
            equality_values=equality_values,
            sort_lower=sort_lower,
            sort_upper=sort_upper,
            query_ts=query_ts,
            fetch_records=fetch_records,
        )
        return self._execute_hinted(
            plan_hinted(query, self.schema, self.indexes), query
        )

    # -- secondary index queries -------------------------------------------------

    def secondary_scan(
        self,
        index_name: str,
        equality_values: Sequence[KeyValue] = (),
        sort_lower: Optional[Sequence[KeyValue]] = None,
        sort_upper: Optional[Sequence[KeyValue]] = None,
        query_ts: Optional[int] = None,
        fetch_records: bool = False,
    ) -> List:
        """Scan a secondary index; secondary keys are not unique, so this
        returns every matching row's newest visible version."""
        query = self._hinted_query(
            index_name,
            "scan",
            equality_values=equality_values,
            sort_lower=sort_lower,
            sort_upper=sort_upper,
            query_ts=query_ts,
            fetch_records=fetch_records,
        )
        return self._execute_hinted(
            plan_hinted(query, self.schema, self.indexes), query
        )

    def secondary_lookup(
        self,
        index_name: str,
        equality_values: Sequence[KeyValue] = (),
        sort_prefix: Sequence[KeyValue] = (),
        query_ts: Optional[int] = None,
    ) -> List[IndexEntry]:
        """All rows matching one secondary value (a prefix scan: the
        secondary key is internally suffixed with the primary key)."""
        return self.secondary_scan(
            index_name,
            equality_values,
            sort_lower=tuple(sort_prefix) or None,
            sort_upper=tuple(sort_prefix) or None,
            query_ts=query_ts,
        )

    # -- typed queries through the access-path planner (ISSUE 9) -----------------

    def plan_query(self, query: Query) -> AccessPlan:
        """Compile a typed query without executing it (``explain`` tests).

        Wrapper-style queries (``mode`` set) pass through verbatim;
        otherwise ``ShardConfig.planner`` selects the cost-based planner
        (default) or the always-primary baseline.  A bare ``index_hint``
        restricts the smart planner's candidates to that index.
        """
        if query.mode is not None:
            return plan_hinted(query, self.schema, self.indexes)
        if self.config.planner == "baseline":
            return plan_baseline(query, self.schema, self.indexes)
        return plan_smart(query, self.schema, self.indexes, self.synopses)

    def explain(self, query: Query) -> Dict[str, object]:
        """The chosen plan's ``explain()`` dict (no execution)."""
        return self.plan_query(query).explain()

    def query(self, query: Query) -> List[Tuple[KeyValue, ...]]:
        """Execute a typed query; returns projected rows, deterministically
        sorted by (row values, primary key).

        The planner picks the access path: primary point/scan, a
        secondary prefix scan whose hits are resolved against the
        primary by RID (batched point lookups, every predicate
        re-checked on the fetched record), or an index-only answer read
        entirely from a covering index's entries.  Identical rows for
        identical queries under either planner -- the ablation the A15
        bench byte-compares.
        """
        return [row for _, _, row in self._query_tagged(query)]

    def _query_tagged(
        self, query: Query
    ) -> List[Tuple[Tuple[KeyValue, ...], int, Tuple[KeyValue, ...]]]:
        """Execute, returning ``(pk, begin_ts, row)`` triples.

        The pk/begin_ts tags let the cluster layer merge scatter-gather
        and split-migration double-reads newest-wins per primary key
        before dropping the tags.
        """
        plan = self.plan_query(query)
        if plan.hinted:
            raise PlanError(
                "typed query() does not execute wrapper-hinted plans; "
                "drop the mode field or call the wrapper method"
            )
        ts = (
            query.query_ts if query.query_ts is not None
            else self.current_snapshot_ts()
        )
        return self._execute_plan(plan, ts)

    def _execute_plan(
        self, plan: AccessPlan, ts: int
    ) -> List[Tuple[Tuple[KeyValue, ...], int, Tuple[KeyValue, ...]]]:
        index = self.indexes.get(plan.index_name).index
        with self.hierarchy.attributing(f"index:{plan.index_name}"):
            if plan.mode == "point":
                hit = index.lookup(plan.equality_values, plan.sort_values, ts)
                entries = [] if hit is None else [hit]
            else:
                entries = index.scan(
                    plan.equality_values, plan.sort_lower, plan.sort_upper, ts
                )
        if plan.entry_residuals:
            entries = [
                entry for entry in entries
                if all(
                    p.matches(entry_value(entry, p.slot))
                    for p in plan.entry_residuals
                )
            ]
        if plan.index_only:
            produced = [
                (
                    tuple(entry_value(entry, slot) for slot in plan.pk_slots),
                    entry.begin_ts,
                    tuple(
                        entry_value(entry, slot)
                        for slot in plan.projection_slots
                    ),
                )
                for entry in entries
            ]
        elif plan.fetch_back:
            produced = self._fetch_back(plan, entries, ts)
        else:
            with self.hierarchy.attributing("records"):
                records = self.catalog.fetch_records(
                    [entry.rid for entry in entries]
                )
            produced = self._check_and_project(plan, records)
        # Newest-wins dedup per primary key: index-only secondary scans can
        # surface several versions of one row (distinct full entry keys);
        # the newest beginTS is the visible one.
        best: Dict[Tuple[KeyValue, ...], Tuple[int, Tuple[KeyValue, ...]]] = {}
        for pk, begin_ts, row in produced:
            current = best.get(pk)
            if current is None or begin_ts > current[0]:
                best[pk] = (begin_ts, row)
        return sorted(
            ((pk, begin_ts, row) for pk, (begin_ts, row) in best.items()),
            key=lambda item: (item[2], item[0]),
        )

    def _check_and_project(self, plan: AccessPlan, records) -> List:
        produced = []
        for record in records:
            values = record.values
            if all(p.matches(values[p.position]) for p in plan.record_checks):
                produced.append((
                    self.schema.primary_key_of(values),
                    record.begin_ts,
                    tuple(values[i] for i in plan.projection_positions),
                ))
        return produced

    def _fetch_back(self, plan: AccessPlan, entries, ts: int) -> List:
        """Resolve secondary hits against the primary by RID (ISSUE 9).

        Secondary entries recover the primary key (suffixed specs
        guarantee every pk column has an entry slot); deduplicated keys
        become one batched primary point lookup, hits become one batched
        record fetch, and every query predicate is re-checked on the
        record -- which makes the answer byte-identical to the baseline
        primary path even when a stale secondary entry surfaces a row
        whose key columns have since changed.
        """
        if self._pk_to_primary_eq is None:
            raise PlanError(
                "fetch-back requires a primary-key primary index"
            )
        pk_tuples = sorted({
            tuple(entry_value(entry, slot) for slot in plan.pk_slots)
            for entry in entries
        })
        lookups = [
            PointLookup(
                tuple(pk[i] for i in self._pk_to_primary_eq),
                tuple(pk[i] for i in self._pk_to_primary_sort),
                ts,
            )
            for pk in pk_tuples
        ]
        with self.hierarchy.attributing(f"index:{PRIMARY_INDEX_NAME}"):
            hits = self.index.batch_lookup(lookups)
        with self.hierarchy.attributing("records"):
            records = self.catalog.fetch_records(
                [hit.rid for hit in hits if hit is not None]
            )
        return self._check_and_project(plan, records)

    def time_travel(
        self,
        equality_values: Sequence[KeyValue],
        sort_values: Sequence[KeyValue],
        query_ts: int,
        max_versions: int = 16,
    ) -> List[Record]:
        """The visible version at ``query_ts`` plus its prevRID chain."""
        entry = self.index_lookup(equality_values, sort_values, query_ts)
        if entry is None:
            return []
        versions: List[Record] = []
        record = self.catalog.fetch_record(entry.rid)
        versions.append(record)
        while record.prev_rid is not None and len(versions) < max_versions:
            record = self.catalog.fetch_record(record.prev_rid)
            versions.append(record)
        return versions

    # ------------------------------------------------------------------------------
    # degraded-read mode (ISSUE 7)
    # ------------------------------------------------------------------------------

    @property
    def degraded(self) -> bool:
        return self._degraded_pin is not None

    def enter_degraded_mode(self) -> None:
        """Pin the current run-list version for brownout serving.

        Idempotent.  While degraded, :meth:`degraded_point_query` /
        :meth:`degraded_range_query` answer from the pinned snapshot:
        the pin keeps every run of the version alive in the local tiers
        (cache eviction skips pinned runs), so queries stay off the
        browning-out shared tier.  The answers are *stale-bounded*: as
        fresh as the moment the breaker opened, never fresher.
        """
        with self._degraded_lock:
            if self._degraded_pin is None:
                self._degraded_pin = self.index.pin_snapshot()

    def exit_degraded_mode(self) -> None:
        """Release the degraded-mode pin (idempotent)."""
        with self._degraded_lock:
            pin = self._degraded_pin
            self._degraded_pin = None
        if pin is not None:
            pin.release()

    def degraded_point_query(
        self,
        equality_values: Sequence[KeyValue] = (),
        sort_values: Sequence[KeyValue] = (),
        query_ts: Optional[int] = None,
    ) -> Optional[Record]:
        """Point query against the degraded-mode snapshot pin."""
        with self._degraded_lock:
            pin = self._degraded_pin
        if pin is None:
            raise RuntimeError("shard is not in degraded mode")
        ts = query_ts if query_ts is not None else self.current_snapshot_ts()
        entry = pin.executor.point_lookup(
            PointLookup(tuple(equality_values), tuple(sort_values), ts)
        )
        if entry is None:
            return None
        return self.catalog.fetch_record(entry.rid)

    def degraded_range_query(
        self,
        equality_values: Sequence[KeyValue] = (),
        sort_lower: Optional[Sequence[KeyValue]] = None,
        sort_upper: Optional[Sequence[KeyValue]] = None,
        query_ts: Optional[int] = None,
    ) -> List[IndexEntry]:
        """Range scan against the degraded-mode snapshot pin."""
        with self._degraded_lock:
            pin = self._degraded_pin
        if pin is None:
            raise RuntimeError("shard is not in degraded mode")
        ts = query_ts if query_ts is not None else self.current_snapshot_ts()
        return pin.executor.range_scan(
            RangeScanQuery(
                tuple(equality_values),
                tuple(sort_lower) if sort_lower is not None else None,
                tuple(sort_upper) if sort_upper is not None else None,
                ts,
            )
        )

    # ------------------------------------------------------------------------------
    # introspection / recovery
    # ------------------------------------------------------------------------------

    def crash_and_recover(self):
        """Simulate an indexer-node crash and recover every index."""
        self.hierarchy.crash_local_tiers()
        self.catalog.forget_decoded()
        primary_state = self.index.recover()
        for shard_index in self.indexes.secondaries.values():
            shard_index.index.recover()
        return primary_state

    def stats(self) -> Dict[str, object]:
        return {
            "cycle": self._cycle,
            "live_rows": self.committed_log.pending_rows(),
            "groomed_blocks": len(self.catalog.live_groomed_ids()),
            "max_psn": self.post_groomer.max_psn,
            "indexed_psn": self.index.indexed_psn,
            "index": self.index.stats(),
            "io": self.hierarchy.stats.snapshot(),
            "epochs": self.hierarchy.stats.epochs.snapshot(),
            "qos": self.hierarchy.stats.qos.snapshot(),
        }


__all__ = ["ShardConfig", "WildfireShard"]
