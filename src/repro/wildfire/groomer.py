"""The groomer (paper section 2.1).

Each groom operation drains the committed log, merges transactions in time
order, resolves conflicts by assigning monotonically increasing ``beginTS``
values (groom cycle in the high-order bits, intra-batch commit order in the
low-order bits -- "the commit time of transactions in Wildfire is
effectively postponed to the groom time"), writes one columnar groomed
block to shared storage, and builds an index run over it.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.faults.crash import crash_point
from repro.storage.metrics import ReadIntent
from repro.storage.retry import TransientIOError
from repro.wildfire.blockstore import BlockCatalog
from repro.wildfire.clock import HybridClock, compose_begin_ts
from repro.wildfire.indexes import ShardIndexes
from repro.wildfire.record import Record
from repro.wildfire.schema import TableSchema
from repro.wildfire.txlog import CommittedLog, CommittedTransaction


@dataclass(frozen=True)
class GroomResult:
    """What one groom cycle produced."""

    groom_cycle: int
    groomed_block_id: int
    record_count: int
    index_run_id: str  # the primary index's new run
    max_begin_ts: int
    index_run_ids: Tuple[Tuple[str, str], ...] = ()  # (index name, run id)


class Groomer:
    """Periodic live-zone -> groomed-zone migration for one shard."""

    def __init__(
        self,
        schema: TableSchema,
        clock: HybridClock,
        committed_log: CommittedLog,
        catalog: BlockCatalog,
        indexes: ShardIndexes,
    ) -> None:
        self.schema = schema
        self.clock = clock
        self.committed_log = committed_log
        self.catalog = catalog
        self.indexes = indexes
        self._lock = threading.Lock()
        self.grooms_done = 0

    def groom(self) -> Optional[GroomResult]:
        """One groom operation; returns ``None`` if the live zone is empty.

        Runs under a ``ReadIntent.MAINTENANCE`` scope: grooming is a write
        operation, but any block reads it triggers (e.g. re-reading a block
        it just stored while building index runs) are background work and
        must not count as -- or be admitted like -- query traffic.
        """
        with self._lock, self.catalog.hierarchy.reading_as(
            ReadIntent.MAINTENANCE
        ):
            # Before the drain: a crash here loses no committed work (the
            # log is re-drained after recovery).
            crash_point("groom.enter")
            transactions = self.committed_log.drain()
            if not transactions:
                return None
            try:
                return self._groom_drained(transactions)
            except TransientIOError:
                # Abort safety (ISSUE 7): the drain already consumed the
                # rows; hand them back before surfacing the storage error
                # so nothing is lost without a crash/recover cycle.  The
                # groomed block that half-landed is superseded by the
                # retried groom's block (append-only namespaces; recovery
                # validation ignores headerless partial runs).
                self.committed_log.requeue(transactions)
                raise

    def _groom_drained(
        self, transactions: List[CommittedTransaction]
    ) -> GroomResult:
        cycle = self.clock.next_groom_cycle()

        # Merge transactions in commit order; beginTS = (cycle | order).
        # The low-order component preserves the replicas' commit order
        # while keeping every record version's timestamp unique and
        # monotonic within the cycle.
        records: List[Record] = []
        order = 0
        for transaction in transactions:  # drain() returns commit order
            for row in transaction.rows:
                records.append(
                    Record(values=row, begin_ts=compose_begin_ts(cycle, order))
                )
                order += 1

        block = self.catalog.store_groomed(records)
        crash_point("groom.pre_index")

        # One index run per attached index (primary + secondaries),
        # fed through the block's batched (rid, record) hand-off.
        run_ids = self.indexes.build_groomed_runs(block)
        self.grooms_done += 1
        return GroomResult(
            groom_cycle=cycle,
            groomed_block_id=block.block_id,
            record_count=len(records),
            index_run_id=run_ids["primary"],
            max_begin_ts=records[-1].begin_ts if records else 0,
            index_run_ids=tuple(sorted(run_ids.items())),
        )


__all__ = ["GroomResult", "Groomer"]
