"""Catalog of groomed and post-groomed data blocks.

Blocks live on shared storage (write-through to the SSD cache, like index
runs) and are decoded on demand.  The catalog also owns:

* monotonic groomed / post-groomed block ids ("each groomed block is
  uniquely identified by a monotonic increasing ID");
* the deprecation lifecycle of groomed blocks ("after a post-groom
  operation, groomed data blocks are marked deprecated and eventually
  deleted"), with deletion deferred one PSN so in-flight queries holding
  groomed RIDs can still resolve them;
* the ``endTS`` overlay.  **Substitution note:** Wildfire updates endTS
  fields inside post-groomed Parquet data; our shared storage (like S3)
  forbids in-place updates, so endTS mutations live in an in-memory overlay
  applied at record fetch.  Index behaviour is unaffected -- Umzi never
  stores endTS -- and snapshot visibility semantics are identical.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.entry import RID, Zone
from repro.storage.block import Block, BlockId
from repro.storage.hierarchy import StorageHierarchy
from repro.storage.metrics import ReadIntent
from repro.storage.retry import TransientIOError
from repro.wildfire.columnar import DataBlock
from repro.wildfire.record import Record
from repro.wildfire.schema import TableSchema


class BlockNotFound(KeyError):
    """A data block (or record) was requested that no longer exists."""


class BlockCatalog:
    """Zone-aware data-block store for one table shard."""

    def __init__(
        self,
        schema: TableSchema,
        hierarchy: StorageHierarchy,
        table_name: Optional[str] = None,
    ) -> None:
        self.schema = schema
        self.hierarchy = hierarchy
        self.table_name = table_name if table_name is not None else schema.name
        self._lock = threading.Lock()
        self._next_groomed_id = 0
        self._next_post_groomed_id = 0
        self._live_groomed: Set[int] = set()
        self._live_post_groomed: Set[int] = set()
        self._deprecated_groomed: Set[int] = set()
        self._decoded: Dict[Tuple[Zone, int], DataBlock] = {}
        self._end_ts_overlay: Dict[RID, int] = {}

    # -- namespaces -----------------------------------------------------------------

    def _namespace(self, zone: Zone, block_id: int) -> str:
        letter = "g" if zone is Zone.GROOMED else "p"
        return f"{self.table_name}-blk-{letter}-{block_id:08d}"

    def namespace_of(self, zone: Zone, block_id: int) -> str:
        """Public namespace accessor (shard split block transfer)."""
        return self._namespace(zone, block_id)

    # -- writes ----------------------------------------------------------------------

    def store_groomed(self, records: Sequence[Record]) -> DataBlock:
        """Persist one new groomed block; returns it with its assigned id."""
        with self._lock:
            block_id = self._next_groomed_id
            self._next_groomed_id += 1
            self._live_groomed.add(block_id)
        try:
            return self._store(Zone.GROOMED, block_id, records)
        except TransientIOError:
            # Abort safety (ISSUE 7): a block that never landed must not
            # occupy an id -- the post-groomer consumes the groomed id
            # range densely, so a phantom id would break its collection
            # scan.  The groomer requeues the rows and retries later.
            with self._lock:
                self._live_groomed.discard(block_id)
                if self._next_groomed_id == block_id + 1:
                    self._next_groomed_id = block_id
            raise

    def reserve_post_groomed_ids(self, count: int) -> int:
        """Reserve ``count`` consecutive post-groomed block ids.

        The post-groomer needs RIDs *before* blocks are written so it can
        stitch intra-batch ``prevRID`` chains into the (immutable) records;
        returns the first reserved id.
        """
        with self._lock:
            first = self._next_post_groomed_id
            self._next_post_groomed_id += count
            return first

    def store_post_groomed(
        self, records: Sequence[Record], block_id: Optional[int] = None
    ) -> DataBlock:
        """Persist one post-groomed block (id auto-assigned or reserved)."""
        with self._lock:
            if block_id is None:
                block_id = self._next_post_groomed_id
                self._next_post_groomed_id += 1
            elif block_id >= self._next_post_groomed_id:
                raise ValueError(
                    f"post-groomed block id {block_id} was never reserved"
                )
            self._live_post_groomed.add(block_id)
        try:
            return self._store(Zone.POST_GROOMED, block_id, records)
        except TransientIOError:
            # The id may be a pre-reserved one (RID stitching), so only
            # the liveness registration is rolled back; an aborted
            # post-groom never publishes its op, and the retried batch
            # reserves fresh ids (append-only namespaces, so the orphan
            # shared-storage blocks are never referenced).
            with self._lock:
                self._live_post_groomed.discard(block_id)
            raise

    def _store(
        self, zone: Zone, block_id: int, records: Sequence[Record]
    ) -> DataBlock:
        block = DataBlock(zone=zone, block_id=block_id, records=tuple(records))
        payload = block.to_bytes(self.schema)
        storage_block = Block(BlockId(self._namespace(zone, block_id), 0), payload)
        self.hierarchy.write_persisted(storage_block, write_through_ssd=True)
        with self._lock:
            self._decoded[(zone, block_id)] = block
        return block

    # -- reads ------------------------------------------------------------------------

    def get_block(
        self,
        zone: Zone,
        block_id: int,
        intent: Optional[ReadIntent] = None,
    ) -> DataBlock:
        """Fetch and decode one record block.

        ``intent`` is the cache-admission signal forwarded to the storage
        hierarchy: record fetches on behalf of queries promote on a miss,
        while maintenance scans (the post-groomer collecting groomed
        records, the indexer's block-map fallback) pass
        ``ReadIntent.MAINTENANCE`` and leave the SSD cache untouched.
        """
        with self._lock:
            cached = self._decoded.get((zone, block_id))
        if cached is not None:
            return cached
        try:
            raw = self.hierarchy.read(
                BlockId(self._namespace(zone, block_id), 0), intent=intent
            )
        except KeyError as exc:
            raise BlockNotFound(f"{zone.name} block {block_id}") from exc
        block = DataBlock.from_bytes(self.schema, raw.payload)
        with self._lock:
            self._decoded[(zone, block_id)] = block
        return block

    def fetch_record(self, rid: RID) -> Record:
        """Resolve a RID to its record, applying the endTS overlay."""
        block = self.get_block(rid.zone, rid.block_id)
        record = block.records[rid.offset]
        end_ts = self._end_ts_overlay.get(rid)
        if end_ts is not None:
            record = record.with_end_ts(end_ts)
        return record

    def fetch_records(self, rids: Sequence[RID]) -> List[Record]:
        """Batched :meth:`fetch_record`, RID order preserved (ISSUE 9).

        Each distinct block is resolved once per batch, so a plan
        fetching many records from few blocks (the access-path
        executor's fetch-back and primary-scan paths) pays one block
        read per block instead of one per record.
        """
        blocks: Dict[Tuple[Zone, int], DataBlock] = {}
        records: List[Record] = []
        for rid in rids:
            key = (rid.zone, rid.block_id)
            block = blocks.get(key)
            if block is None:
                block = self.get_block(rid.zone, rid.block_id)
                blocks[key] = block
            record = block.records[rid.offset]
            end_ts = self._end_ts_overlay.get(rid)
            if end_ts is not None:
                record = record.with_end_ts(end_ts)
            records.append(record)
        return records

    # -- hidden-column maintenance (post-groomer) -----------------------------------------

    def set_end_ts(self, rid: RID, end_ts: int) -> None:
        with self._lock:
            self._end_ts_overlay[rid] = end_ts

    # -- groomed-block lifecycle ------------------------------------------------------------

    @property
    def max_groomed_id(self) -> int:
        """Largest assigned groomed block id, or -1 when none exist yet."""
        with self._lock:
            return self._next_groomed_id - 1

    @property
    def max_post_groomed_id(self) -> int:
        with self._lock:
            return self._next_post_groomed_id - 1

    def live_groomed_ids(self) -> List[int]:
        with self._lock:
            return sorted(self._live_groomed)

    def live_post_groomed_ids(self) -> List[int]:
        with self._lock:
            return sorted(self._live_post_groomed)

    def export_end_ts_overlay(self) -> Dict[RID, int]:
        """Copy of the endTS overlay (shard split state transfer)."""
        with self._lock:
            return dict(self._end_ts_overlay)

    # -- shard split (ISSUE 8) -------------------------------------------------------

    def adopt_post_groomed(
        self,
        source: "BlockCatalog",
        block_ids: Iterable[int],
        overlay: Dict[RID, int],
    ) -> List[int]:
        """Copy another catalog's post-groomed blocks into this one.

        Block payloads are transferred verbatim -- same block ids, same
        namespaces, byte-identical bytes -- so every RID baked into the
        source's index entry blobs stays resolvable here without
        rewriting a single entry.  Idempotent: already-adopted ids are
        skipped, so a crashed split's replay re-copies only what is
        missing.  Returns the ids actually copied this call.
        """
        copied: List[int] = []
        for block_id in sorted(block_ids):
            with self._lock:
                if block_id in self._live_post_groomed:
                    self._next_post_groomed_id = max(
                        self._next_post_groomed_id, block_id + 1
                    )
                    continue
            raw = source.hierarchy.read(
                BlockId(source.namespace_of(Zone.POST_GROOMED, block_id), 0),
                intent=ReadIntent.MAINTENANCE,
            )
            self.hierarchy.write_persisted(
                Block(
                    BlockId(self._namespace(Zone.POST_GROOMED, block_id), 0),
                    raw.payload,
                ),
                write_through_ssd=True,
            )
            with self._lock:
                self._live_post_groomed.add(block_id)
                self._next_post_groomed_id = max(
                    self._next_post_groomed_id, block_id + 1
                )
            copied.append(block_id)
        with self._lock:
            self._end_ts_overlay.update(overlay)
        return copied

    def ensure_post_groomed_floor(self, floor: int) -> None:
        """Raise the post-groomed id allocator to at least ``floor``.

        Shard split uses this to stride the two successors' allocators
        apart (the left successor stays dense at the source's watermark;
        the right one jumps a fixed stride above it), so that blocks the
        successors write *after* the split can never collide by id --
        which is what lets a later merge adopt both successors' blocks
        verbatim.  Idempotent and forward-only: replaying it after a
        crash, or after blocks were already written above the floor,
        changes nothing.
        """
        with self._lock:
            self._next_post_groomed_id = max(self._next_post_groomed_id, floor)

    def deprecate_groomed(self, block_ids: Iterable[int]) -> None:
        """Mark groomed blocks as superseded by post-groomed copies."""
        with self._lock:
            for block_id in block_ids:
                if block_id in self._live_groomed:
                    self._deprecated_groomed.add(block_id)

    def delete_deprecated_up_to(self, max_block_id: int) -> List[int]:
        """Physically delete deprecated groomed blocks with id <= bound."""
        with self._lock:
            doomed = sorted(
                bid for bid in self._deprecated_groomed if bid <= max_block_id
            )
            for block_id in doomed:
                self._deprecated_groomed.discard(block_id)
                self._live_groomed.discard(block_id)
                self._decoded.pop((Zone.GROOMED, block_id), None)
        for block_id in doomed:
            self.hierarchy.delete_namespace(self._namespace(Zone.GROOMED, block_id))
        return doomed

    # -- failure injection -----------------------------------------------------------------------

    def forget_decoded(self) -> None:
        """Drop the in-process decode cache (crash simulation support)."""
        with self._lock:
            self._decoded.clear()


__all__ = ["BlockCatalog", "BlockNotFound"]
