"""Online shard merge: the inverse of split (ISSUE 10).

The cluster-facing entry point is
:meth:`repro.wildfire.cluster.ShardedTable.merge_shards`; this module
owns the pieces below it.  A merge is a split run backwards over the
same :class:`~repro.wildfire.shardmap.SlotRoute` machinery:

* the slot's route flips ``"split" -> "merging"`` at the write cutover
  (the fused target owns all fresh writes; the two old successors stay
  authoritative for everything written before the cutover, so reads
  double-read and take the newest beginTS), then ``"merging" ->
  "single"`` once the copy lands;
* the target's hybrid clock is raised to the component-wise max of both
  successors' clocks (:meth:`HybridClock.ensure_at_least` once per
  source), so no beginTS it will ever mint can collide with history;
* both successors' post-groomed record blocks are adopted verbatim --
  the split-time :data:`~repro.wildfire.split.BLOCK_ID_STRIDE` keeps
  the two sides' post-split block ids disjoint, so the union of ids is
  collision-free and every RID baked into entry blobs stays valid;
* every index's runs from both sides are interleaved through the same
  zero-decode ``(sort_key, blob)`` stream the split copy uses
  (:class:`~repro.wildfire.split.ShardCopyStream` with a single
  destination bucket) into one post-groomed run per index.

Crash points mirror the split's: ``merge.pre_copy`` (before anything is
published -- recovery rolls *back*, the slot keeps its split route) and
``merge.mid_copy`` / ``merge.pre_publish`` / ``merge.post_publish``
(after the write cutover -- recovery rolls *forward* by replaying the
idempotent copy and republishing).  The routing map is an immutable
object swapped atomically, so no crash can leave a torn map.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.wildfire.engine import WildfireShard
from repro.wildfire.split import ShardCopyStream


class MergeError(RuntimeError):
    """A merge could not be started or resumed."""


class MergeAborted(MergeError):
    """A merge backed out cleanly before its write cutover.

    Raised when maintenance backpressure or an open circuit breaker says
    the cluster cannot afford the copy right now.  Nothing has been
    published: routing, data, and clocks are exactly as they were.
    """


# Phase order, mirroring the split's.  Everything from "merging" on
# recovers by rolling forward; "pre_copy" is the only phase that rolls
# back (to the still-split route).
MERGE_PHASES = ("pre_copy", "merging", "copied", "published", "done")


@dataclass
class MergeState:
    """One in-flight (or crashed) merge's progress."""

    left_id: int
    right_id: int
    slot: int
    target_id: int = -1
    phase: str = "pre_copy"
    merging_epoch: int = -1
    final_epoch: int = -1
    copied_blocks: int = 0
    copied_entries: int = 0
    quiesce_grooms: int = 0

    def summary(self) -> dict:
        return {
            "sources": (self.left_id, self.right_id),
            "target": self.target_id,
            "phase": self.phase,
            "merging_epoch": self.merging_epoch,
            "final_epoch": self.final_epoch,
            "copied_blocks": self.copied_blocks,
            "copied_entries": self.copied_entries,
            "quiesce_grooms": self.quiesce_grooms,
        }


def adopt_all_blocks(
    sources: Tuple[WildfireShard, WildfireShard], target: WildfireShard
) -> int:
    """Adopt both sources' post-groomed record blocks into the target.

    Ids are disjoint across the two sides by construction (shared
    pre-split ids carry byte-identical payloads and dedup on adoption;
    post-split ids are separated by the split-time stride), so the union
    is collision-free.  The endTS overlays union too --
    ``adopt_post_groomed`` merges the passed overlay unconditionally,
    and an RID's endTS is written at most once in its lifetime (a row
    version is superseded once), so the two sides can never disagree on
    a shared RID.  Idempotent; returns blocks copied this call.
    """
    copied = 0
    for source in sources:
        copied += len(
            target.catalog.adopt_post_groomed(
                source.catalog,
                source.catalog.live_post_groomed_ids(),
                source.catalog.export_end_ts_overlay(),
            )
        )
    return copied


def merge_copy_stream(
    sources: Sequence[WildfireShard], target: WildfireShard
) -> ShardCopyStream:
    """A :class:`ShardCopyStream` interleaving two quiesced sources'
    runs into the single target (per-index passes, one bucket).

    The two sides hold disjoint key sets (that is what the split
    partitioned on), so the K-way blob merge over the concatenated run
    stacks is a pure interleave: every pair survives verbatim, in full
    sort-key order.  The ``merge.mid_copy`` crash point sits immediately
    before the primary pass's single build.
    """
    return ShardCopyStream(
        sources=sources,
        destinations=(target,),
        bucket_of=lambda _name, _sort_key: 0,
        crash_site="merge.mid_copy",
        crash_ordinal=0,
    )


def interleave_runs(
    sources: Tuple[WildfireShard, WildfireShard], target: WildfireShard
) -> int:
    """Run a full merge copy synchronously (the non-pumped path).

    Sources must be quiesced (post-groomed zones only).  Idempotent per
    index (a target that already holds its copied run is skipped), so
    crash replays never duplicate entries.  Returns entries copied this
    call.
    """
    return merge_copy_stream(sources, target).run_all()


__all__ = [
    "MERGE_PHASES",
    "MergeAborted",
    "MergeError",
    "MergeState",
    "adopt_all_blocks",
    "interleave_runs",
    "merge_copy_stream",
]
