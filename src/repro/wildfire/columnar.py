"""Columnar data-block format (the Parquet stand-in).

Wildfire persists groomed and post-groomed data as Parquet on shared
storage.  The evaluation never measures Parquet itself, so this module
provides a small self-contained columnar format with the properties the
system needs: column-major layout, per-column min/max statistics, and a
compact binary serialization that round-trips through the storage
hierarchy.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.definition import ColumnType
from repro.core.encoding import (
    KeyValue,
    decode_bytes,
    decode_float64,
    decode_int64,
    decode_str,
    decode_uint64,
    encode_uint64,
    encode_value,
)
from repro.core.entry import RID, Zone
from repro.wildfire.record import Record
from repro.wildfire.schema import TableSchema

_MAGIC = b"UMZC"
_VERSION = 1

_DECODERS = {
    ColumnType.INT64: decode_int64,
    ColumnType.FLOAT64: decode_float64,
    ColumnType.STRING: decode_str,
    ColumnType.BYTES: decode_bytes,
}


@dataclass(frozen=True)
class ColumnStats:
    """Per-column min/max, for scan pruning and debugging."""

    min_value: Optional[KeyValue]
    max_value: Optional[KeyValue]


@dataclass(frozen=True)
class DataBlock:
    """One immutable columnar block of record versions.

    ``block_id`` is the zone-local monotonic id (groomed block ids order
    grooms in time; post-groomed ids order post-grooms).  A record's RID is
    ``(zone, block_id, offset)``.
    """

    zone: Zone
    block_id: int
    records: Tuple[Record, ...]

    @property
    def record_count(self) -> int:
        return len(self.records)

    def rid_of(self, offset: int) -> RID:
        if not 0 <= offset < len(self.records):
            raise IndexError(f"offset {offset} out of range")
        return RID(zone=self.zone, block_id=self.block_id, offset=offset)

    # -- batched index hand-off -------------------------------------------------

    def iter_indexable(self) -> Iterator[Tuple[RID, Record]]:
        """Yield ``(rid, record)`` pairs in offset order.

        The batched hand-off for index builds: one pass over the block
        with the zone/block-id constants bound once, instead of a
        bounds-checked :meth:`rid_of` call per record.
        """
        zone = self.zone
        block_id = self.block_id
        for offset, record in enumerate(self.records):
            yield RID(zone=zone, block_id=block_id, offset=offset), record

    def rid_by_begin_ts(self) -> Dict[int, RID]:
        """Map each record version's ``beginTS`` to its RID in this block.

        The streaming evolve hand-off: ``beginTS`` values are unique per
        version (the groomer composes ``groom cycle | commit order``), so
        this is the only decoded state the indexer needs to re-point
        groomed index entries at their post-groomed copies -- everything
        else moves as raw blob splices.
        """
        return {record.begin_ts: rid for rid, record in self.iter_indexable()}

    def column_stats(self, schema: TableSchema, column: str) -> ColumnStats:
        position = schema.position(column)
        if not self.records:
            return ColumnStats(None, None)
        values = [record.values[position] for record in self.records]
        return ColumnStats(min(values), max(values))

    # -- serialization ---------------------------------------------------------

    def to_bytes(self, schema: TableSchema) -> bytes:
        parts: List[bytes] = [
            _MAGIC,
            struct.pack(
                ">HBQI", _VERSION, int(self.zone), self.block_id, len(self.records)
            ),
        ]
        # Column-major user values.
        for position in range(len(schema.columns)):
            for record in self.records:
                parts.append(encode_value(record.values[position]))
        # Hidden columns, also column-major.
        for record in self.records:
            parts.append(encode_uint64(record.begin_ts))
        for record in self.records:
            if record.end_ts is None:
                parts.append(b"\x00")
            else:
                parts.append(b"\x01" + encode_uint64(record.end_ts))
        for record in self.records:
            if record.prev_rid is None:
                parts.append(b"\x00")
            else:
                parts.append(b"\x01" + record.prev_rid.to_bytes())
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, schema: TableSchema, data: bytes) -> "DataBlock":
        if data[:4] != _MAGIC:
            raise ValueError("not a columnar data block")
        version, zone_raw, block_id, count = struct.unpack_from(">HBQI", data, 4)
        if version != _VERSION:
            raise ValueError(f"unsupported data block version {version}")
        pos = 4 + struct.calcsize(">HBQI")
        columns: List[List[KeyValue]] = []
        for spec in schema.columns:
            decoder = _DECODERS[spec.ctype]
            values: List[KeyValue] = []
            for _ in range(count):
                value, pos = decoder(data, pos)
                values.append(value)
            columns.append(values)
        begin_ts: List[int] = []
        for _ in range(count):
            value, pos = decode_uint64(data, pos)
            begin_ts.append(value)
        end_ts: List[Optional[int]] = []
        for _ in range(count):
            flag = data[pos]
            pos += 1
            if flag:
                value, pos = decode_uint64(data, pos)
                end_ts.append(value)
            else:
                end_ts.append(None)
        prev_rids: List[Optional[RID]] = []
        for _ in range(count):
            flag = data[pos]
            pos += 1
            if flag:
                rid, pos = RID.from_bytes(data, pos)
                prev_rids.append(rid)
            else:
                prev_rids.append(None)
        records = tuple(
            Record(
                values=tuple(columns[c][i] for c in range(len(schema.columns))),
                begin_ts=begin_ts[i],
                end_ts=end_ts[i],
                prev_rid=prev_rids[i],
            )
            for i in range(count)
        )
        return cls(zone=Zone(zone_raw), block_id=block_id, records=records)


__all__ = ["ColumnStats", "DataBlock"]
