"""Table schemas (paper section 2.1).

A Wildfire table is defined with a primary key, a sharding key (a subset of
the primary key, routing records to shards), and optionally a partition key
(organizing post-groomed data for analytics; typically different from the
sharding key -- e.g. device id shards, date partitions).

Wildfire adds three hidden columns to every table: ``beginTS`` (set by the
groomer), ``endTS`` (set by the post-groomer when a newer version of the
key lands), and ``prevRID`` (the previous version's RID); they live on
:class:`~repro.wildfire.record.Record`, not in the user schema.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Sequence, Tuple

from repro.core.definition import ColumnSpec, IndexDefinition
from repro.core.encoding import KeyValue


class SchemaError(ValueError):
    """Invalid table schema or index specification."""


@dataclass(frozen=True)
class TableSchema:
    """Columns plus primary / sharding / partition key declarations."""

    name: str
    columns: Tuple[ColumnSpec, ...]
    primary_key: Tuple[str, ...]
    sharding_key: Tuple[str, ...] = ()
    partition_key: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names: {names}")
        known = set(names)
        if not self.primary_key:
            raise SchemaError("a Wildfire table requires a primary key")
        for group, label in (
            (self.primary_key, "primary key"),
            (self.sharding_key, "sharding key"),
            (self.partition_key, "partition key"),
        ):
            for column in group:
                if column not in known:
                    raise SchemaError(f"{label} column {column!r} not in schema")
        if not set(self.sharding_key) <= set(self.primary_key):
            raise SchemaError("the sharding key must be a subset of the primary key")

    # -- positional access ---------------------------------------------------------

    def position(self, column: str) -> int:
        for i, spec in enumerate(self.columns):
            if spec.name == column:
                return i
        raise SchemaError(f"unknown column {column!r}")

    def positions(self, columns: Sequence[str]) -> Tuple[int, ...]:
        return tuple(self.position(c) for c in columns)

    @property
    def column_names(self) -> Tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    def primary_key_of(self, values: Sequence[KeyValue]) -> Tuple[KeyValue, ...]:
        return tuple(values[i] for i in self.positions(self.primary_key))

    def partition_value_of(
        self, values: Sequence[KeyValue]
    ) -> Tuple[KeyValue, ...]:
        return tuple(values[i] for i in self.positions(self.partition_key))

    def validate_row(self, values: Sequence[KeyValue]) -> Tuple[KeyValue, ...]:
        if len(values) != len(self.columns):
            raise SchemaError(
                f"row has {len(values)} values; schema {self.name!r} has "
                f"{len(self.columns)} columns"
            )
        return tuple(
            spec.validate(value) for spec, value in zip(self.columns, values)
        )


@dataclass(frozen=True)
class IndexSpec:
    """Maps an index definition onto table columns.

    ``equality_columns + sort_columns`` must equal the table's primary key
    when the index serves as the primary index (the paper's assumption
    throughout).
    """

    equality_columns: Tuple[str, ...] = ()
    sort_columns: Tuple[str, ...] = ()
    included_columns: Tuple[str, ...] = ()
    hash_bits: int = 8

    def build_definition(self, schema: TableSchema) -> IndexDefinition:
        def specs(names: Tuple[str, ...]) -> Tuple[ColumnSpec, ...]:
            return tuple(schema.columns[schema.position(n)] for n in names)

        return IndexDefinition(
            equality_columns=specs(self.equality_columns),
            sort_columns=specs(self.sort_columns),
            included_columns=specs(self.included_columns),
            hash_bits=self.hash_bits,
        )

    def validate_primary(self, schema: TableSchema) -> None:
        key_columns = set(self.equality_columns) | set(self.sort_columns)
        if key_columns != set(schema.primary_key):
            raise SchemaError(
                f"primary index key columns {sorted(key_columns)} must equal "
                f"the table primary key {sorted(schema.primary_key)}"
            )

    def with_primary_key_suffix(self, schema: TableSchema) -> "IndexSpec":
        """Append any missing primary-key columns to the sort columns.

        Secondary index keys are not unique on their own; suffixing the
        primary key makes every (secondary key, primary key) pair unique so
        reconciliation collapses *versions of one record* rather than
        distinct records sharing a secondary value.  Versions of the same
        record still share the full key and reconcile to the newest one.
        """
        covered = set(self.equality_columns) | set(self.sort_columns)
        missing = tuple(c for c in schema.primary_key if c not in covered)
        if not missing:
            return self
        return IndexSpec(
            equality_columns=self.equality_columns,
            sort_columns=self.sort_columns + missing,
            included_columns=self.included_columns,
            hash_bits=self.hash_bits,
        )

    def extractor(self, schema: TableSchema):
        """Return a function mapping a row tuple to (eq, sort, include)."""
        eq_pos = schema.positions(self.equality_columns)
        sort_pos = schema.positions(self.sort_columns)
        incl_pos = schema.positions(self.included_columns)

        def extract(values: Sequence[KeyValue]):
            return (
                tuple(values[i] for i in eq_pos),
                tuple(values[i] for i in sort_pos),
                tuple(values[i] for i in incl_pos),
            )

        return extract


__all__ = ["IndexSpec", "SchemaError", "TableSchema"]
