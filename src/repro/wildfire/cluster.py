"""Multi-shard tables (paper sections 2.1, 3, 8).

"Inserted records are routed by the sharding key to different shards. ...
each Umzi index structure instance serves a single table shard.  There are
a number of indexer daemons running in the cluster.  Each runs
independently ... As a result, Umzi scales up and down nicely with more or
less indexer daemons."

This module provides that outer layer: a :class:`ShardedTable` routes
upserts by the hash of the sharding key, runs each shard's lifecycle
independently (shards share nothing -- separate storage hierarchies,
logs, catalogs and index instances), and answers queries by routing
(sharding key fully bound) or scatter-gather (otherwise).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.encoding import KeyValue, encode_composite, fnv1a64
from repro.core.entry import IndexEntry
from repro.wildfire.engine import ShardConfig, WildfireShard
from repro.wildfire.record import Record
from repro.wildfire.schema import IndexSpec, SchemaError, TableSchema


class ShardedTable:
    """A Wildfire table split into independent shards."""

    def __init__(
        self,
        schema: TableSchema,
        index_spec: IndexSpec,
        num_shards: int = 4,
        config: Optional[ShardConfig] = None,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if not schema.sharding_key:
            raise SchemaError("a sharded table needs a sharding key")
        self.schema = schema
        self.index_spec = index_spec
        self.num_shards = num_shards
        self.shards: List[WildfireShard] = [
            WildfireShard(schema, index_spec, config=config)
            for _ in range(num_shards)
        ]
        self._shard_positions = schema.positions(schema.sharding_key)
        # Which index key columns the sharding key pins (for routing reads).
        self._spec_eq = index_spec.equality_columns
        self._spec_sort = index_spec.sort_columns

    # -- routing --------------------------------------------------------------------

    def shard_of_row(self, row: Sequence[KeyValue]) -> int:
        values = tuple(row[i] for i in self._shard_positions)
        return self.shard_of_key(values)

    def shard_of_key(self, sharding_values: Tuple[KeyValue, ...]) -> int:
        return fnv1a64(encode_composite(sharding_values)) % self.num_shards

    def _route_query(
        self,
        equality_values: Sequence[KeyValue],
        sort_values: Sequence[KeyValue],
    ) -> Optional[int]:
        """Shard id when the sharding key is fully bound, else ``None``."""
        bound: Dict[str, KeyValue] = {}
        for name, value in zip(self._spec_eq, equality_values):
            bound[name] = value
        for name, value in zip(self._spec_sort, sort_values):
            bound[name] = value
        try:
            values = tuple(bound[name] for name in self.schema.sharding_key)
        except KeyError:
            return None
        return self.shard_of_key(values)

    # -- ingestion -------------------------------------------------------------------

    def ingest(self, rows: Sequence[Sequence[KeyValue]]) -> Dict[int, int]:
        """Route rows to shards; returns rows-per-shard for observability."""
        per_shard: Dict[int, List[Sequence[KeyValue]]] = {}
        for row in rows:
            per_shard.setdefault(self.shard_of_row(row), []).append(row)
        for shard_id, shard_rows in per_shard.items():
            self.shards[shard_id].ingest(shard_rows)
        return {shard_id: len(rs) for shard_id, rs in per_shard.items()}

    # -- lifecycle --------------------------------------------------------------------

    def tick(self) -> None:
        """One lifecycle cycle on every shard (deterministic driver)."""
        for shard in self.shards:
            shard.tick()

    def run_cycles(self, cycles: int) -> None:
        for _ in range(cycles):
            self.tick()

    def start_daemons(self, groom_interval_s: float = 0.05) -> None:
        for shard in self.shards:
            shard.start_daemons(groom_interval_s=groom_interval_s)

    def stop_daemons(self) -> None:
        for shard in self.shards:
            shard.stop_daemons()

    # -- queries ----------------------------------------------------------------------

    def point_query(
        self,
        equality_values: Sequence[KeyValue] = (),
        sort_values: Sequence[KeyValue] = (),
        query_ts: Optional[int] = None,
    ) -> Optional[Record]:
        """Routed when the sharding key is bound (it is, for a primary-key
        lookup: the sharding key is a subset of the primary key)."""
        shard_id = self._route_query(equality_values, sort_values)
        if shard_id is not None:
            return self.shards[shard_id].point_query(
                equality_values, sort_values, query_ts
            )
        for shard in self.shards:  # pragma: no cover - defensive fallback
            record = shard.point_query(equality_values, sort_values, query_ts)
            if record is not None:
                return record
        return None

    def range_query(
        self,
        equality_values: Sequence[KeyValue] = (),
        sort_lower: Optional[Sequence[KeyValue]] = None,
        sort_upper: Optional[Sequence[KeyValue]] = None,
        query_ts: Optional[int] = None,
    ) -> List[IndexEntry]:
        """Routed if the equality columns pin the sharding key; otherwise a
        scatter-gather over every shard with a client-side merge."""
        shard_id = self._route_query(equality_values, ())
        if shard_id is not None:
            return self.shards[shard_id].range_query(
                equality_values, sort_lower, sort_upper, query_ts
            )
        gathered: List[IndexEntry] = []
        for shard in self.shards:
            gathered.extend(
                shard.range_query(
                    equality_values, sort_lower, sort_upper, query_ts
                )
            )
        definition = self.shards[0].index.definition
        gathered.sort(key=lambda entry: entry.key_bytes(definition))
        return gathered

    # -- observability ----------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        per_shard = [shard.stats() for shard in self.shards]
        return {
            "num_shards": self.num_shards,
            "total_entries": sum(
                s["index"].total_entries for s in per_shard  # type: ignore[index]
            ),
            "per_shard": per_shard,
        }

    def crash_and_recover_shard(self, shard_id: int):
        """Crash one shard's node; the rest keep serving (independence)."""
        return self.shards[shard_id].crash_and_recover()


__all__ = ["ShardedTable"]
