"""Multi-shard tables (paper sections 2.1, 3, 8).

"Inserted records are routed by the sharding key to different shards. ...
each Umzi index structure instance serves a single table shard.  There are
a number of indexer daemons running in the cluster.  Each runs
independently ... As a result, Umzi scales up and down nicely with more or
less indexer daemons."

This module provides that outer layer: a :class:`ShardedTable` routes
upserts by the hash of the sharding key, runs each shard's lifecycle
independently (shards share nothing -- separate storage hierarchies,
logs, catalogs and index instances), and answers queries by routing
(sharding key fully bound) or scatter-gather (otherwise).

**Overload protection (ISSUE 7).**  Constructed with a
:class:`~repro.qos.admission.QosConfig`, the table threads the full qos
stack through its serving path:

* every ``point_query``/``range_query``/``ingest`` passes a token-bucket
  :class:`~repro.qos.admission.AdmissionController` (typed
  ``Overloaded``/``DeadlineExceeded`` sheds, per-query deadlines on the
  simulated clock);
* a cluster-wide :class:`~repro.qos.scheduler.DaemonScheduler` throttles
  every shard's maintenance when the admission backlog, retry pressure,
  or an open breaker says queries need the bandwidth;
* each shard's shared tier gets a
  :class:`~repro.qos.breaker.CircuitBreaker`; while it is open, queries
  for that shard degrade to local tiers + a pinned versionset snapshot
  (counted as ``degraded_reads``) instead of erroring.

**Online shard split (ISSUE 8).**  Routing goes through immutable
:class:`~repro.wildfire.shardmap.ShardMap` epochs published
versionset-style: every query pins the current map for its lifetime
(exactly one Ref and one Unref on the cluster ledger -- two refcount
operations per query), so a split's two map publishes are atomic swaps
that no in-flight query can observe torn.  :meth:`split_shard` drains a
source shard into two successors with a write-first cutover:

1. publish a ``migrating`` route (epoch N+1) -- new writes go to the
   successors, reads *double-read* successor + source and keep the
   newest version by raw ``beginTS``;
2. quiesce the source, hand its hybrid clock forward to the successors
   (so every post-split ``beginTS`` sorts after every pre-split one),
   and stream the source's post-groomed runs into one run per successor
   as raw ``(sort_key, blob)`` pairs -- the zero-decode evolve path;
3. publish the ``split`` route (epoch N+2) and retire the source.

Crash points ``split.pre_copy`` / ``mid_copy`` / ``pre_publish`` /
``post_publish`` cover the protocol; recovery rolls back to fully-old
routing before the cutover and rolls *forward* to fully-new after it --
never a torn map (see :meth:`recover_split`).

All counters land on the cluster's own qos ledger
(:meth:`ShardedTable.qos_stats`); admission queueing delays are charged
to a synthetic ``"admission"`` tier on the same ledger, so the cluster's
simulated clock includes time spent waiting in queue.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.encoding import KeyValue, encode_composite, fnv1a64
from repro.core.entry import IndexEntry
from repro.faults.crash import crash_point
from repro.qos.admission import AdmissionController, QosConfig
from repro.qos.breaker import BreakerState, CircuitBreaker
from repro.qos.errors import PartialResultError
from repro.qos.scheduler import DaemonScheduler
from repro.storage.hierarchy import StorageHierarchy
from repro.storage.metrics import IOStats, QosStats
from repro.storage.retry import StorageBrownout, TransientIOError
from repro.planner import Query
from repro.wildfire.engine import ShardConfig, WildfireShard
from repro.wildfire.record import Record
from repro.wildfire.schema import IndexSpec, SchemaError, TableSchema
from repro.wildfire.shardmap import (
    MapPin,
    ShardMap,
    ShardMapError,
    ShardMapRegistry,
    ShardingKeySlicer,
    SlotRoute,
)
from repro.wildfire.split import (
    SplitAborted,
    SplitError,
    SplitState,
    SplitUnsupported,
    copy_post_groomed_blocks,
    partition_runs,
)

ADMISSION_TIER = "admission"


class ShardedTable:
    """A Wildfire table split into independent shards."""

    def __init__(
        self,
        schema: TableSchema,
        index_spec: IndexSpec,
        num_shards: int = 4,
        config: Optional[ShardConfig] = None,
        qos: Optional[QosConfig] = None,
        hierarchy_factory: Optional[Callable[[int], StorageHierarchy]] = None,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if not schema.sharding_key:
            raise SchemaError("a sharded table needs a sharding key")
        self.schema = schema
        self.index_spec = index_spec
        self.num_shards = num_shards
        self._config = config
        # ``hierarchy_factory(shard_id)`` lets callers supply per-shard
        # storage (e.g. FaultyTier-backed hierarchies for brownout tests);
        # shards still share nothing -- one hierarchy each.
        self._hierarchy_factory = hierarchy_factory
        self.shards: List[WildfireShard] = [
            WildfireShard(
                schema,
                index_spec,
                hierarchy=(
                    hierarchy_factory(shard_id)
                    if hierarchy_factory is not None
                    else None
                ),
                config=config,
            )
            for shard_id in range(num_shards)
        ]
        self._shard_positions = schema.positions(schema.sharding_key)
        # Which index key columns the sharding key pins (for routing reads).
        self._spec_eq = index_spec.equality_columns
        self._spec_sort = index_spec.sort_columns

        # -- overload protection (ISSUE 7) --------------------------------
        self.qos_config = qos
        self._qos_io = IOStats()  # cluster ledger: admission tier + QosStats
        self._admission: Optional[AdmissionController] = None
        self._scheduler: Optional[DaemonScheduler] = None
        self._breakers: List[Optional[CircuitBreaker]] = []
        if qos is not None:
            self._admission = AdmissionController(
                qos,
                stats=self._qos_io.qos,
                charge=lambda ns: self._qos_io.record_backoff(
                    ADMISSION_TIER, ns
                ),
            )
            self._scheduler = DaemonScheduler(
                qos, stats=self._qos_io.qos, admission=self._admission
            )
        for shard_id, shard in enumerate(self.shards):
            self._attach_qos(shard_id, shard)

        # -- online split / routing epochs (ISSUE 8) ----------------------
        # The cluster ledger's EpochStats belongs exclusively to the map
        # registry (shard run-lifecycle pins live on each shard's own
        # ledger), so "two refcount ops per query" is directly observable.
        self._maps = ShardMapRegistry(
            ShardMap.initial(num_shards), stats=self._qos_io.epochs
        )
        try:
            self._slicer: Optional[ShardingKeySlicer] = ShardingKeySlicer(
                self.shards[0].index.definition, schema.sharding_key
            )
        except ShardMapError:
            # The sharding key is not part of the index key: the table
            # still works, but online splits are refused at call time.
            self._slicer = None
        self._retired: Set[int] = set()
        self._active_split: Optional[SplitState] = None
        self._split_lock = threading.Lock()
        self._daemons_running = False
        self._daemon_interval = 0.05

    def _attach_qos(self, shard_id: int, shard: WildfireShard) -> None:
        """Wire one shard into the qos stack (no-op without a config)."""
        if self.qos_config is None:
            self._breakers.append(None)
            return
        breaker = CircuitBreaker(
            f"shared/shard{shard_id}",
            self.qos_config.breaker,
            clock=self.sim_now,
            stats=self._qos_io.qos,
        )
        shard.hierarchy.attach_shared_breaker(breaker)
        shard.attach_scheduler(self._scheduler)
        self._scheduler.watch_breaker(breaker)
        self._scheduler.watch_faults(shard.hierarchy.stats.faults)
        self._breakers.append(breaker)

    # -- qos surface -----------------------------------------------------------------

    @property
    def admission(self) -> Optional[AdmissionController]:
        return self._admission

    @property
    def scheduler(self) -> Optional[DaemonScheduler]:
        return self._scheduler

    def breaker(self, shard_id: int) -> Optional[CircuitBreaker]:
        return self._breakers[shard_id]

    def qos_stats(self) -> QosStats:
        """The live cluster qos ledger (admission + breakers + scheduler)."""
        return self._qos_io.qos

    def epoch_stats(self):
        """The live routing-epoch ledger (map pins/publishes/reclaims).

        This is the cluster ledger's :class:`EpochStats` and it belongs
        exclusively to the :class:`ShardMapRegistry`, so "exactly two
        refcount operations per query" is directly observable on it;
        shard run-lifecycle pins are counted on each shard's own ledger.
        """
        return self._qos_io.epochs

    def sim_now(self) -> int:
        """Cluster simulated clock: arrival time + work + queue waits.

        The arrival clock (:meth:`advance_clock`) contributes so that
        idle simulated time also elapses for the circuit breakers: a
        breaker's open window can lapse while the cluster waits for the
        next client batch, not only while it burns work ns.
        """
        arrival = self._admission.now_ns if self._admission is not None else 0
        return (
            arrival
            + self._qos_io.total_sim_ns
            + sum(shard.hierarchy.stats.total_sim_ns for shard in self.shards)
        )

    def advance_clock(self, delta_ns: int) -> None:
        """Advance the admission arrival clock (offered-load time).

        Closed-loop drivers call this between client batches; without a
        qos config it is a no-op so drivers need not special-case."""
        if self._admission is not None:
            self._admission.advance(delta_ns)

    # -- routing --------------------------------------------------------------------

    @property
    def maps(self) -> ShardMapRegistry:
        """The routing-epoch registry (tests and the split controller)."""
        return self._maps

    def routing_epoch(self) -> int:
        return self._maps.epoch

    def live_shard_ids(self) -> List[int]:
        """Shards that still serve (everything not retired by a split)."""
        return [
            shard_id
            for shard_id in range(len(self.shards))
            if shard_id not in self._retired
        ]

    def key_hash(self, sharding_values: Tuple[KeyValue, ...]) -> int:
        return fnv1a64(encode_composite(tuple(sharding_values)))

    def shard_of_row(self, row: Sequence[KeyValue]) -> int:
        values = tuple(row[i] for i in self._shard_positions)
        return self.shard_of_key(values)

    def shard_of_key(self, sharding_values: Tuple[KeyValue, ...]) -> int:
        """Where a new row for this sharding key lands *right now*."""
        return self._maps.current.write_shard(self.key_hash(sharding_values))

    def _bound_sharding_values(
        self,
        equality_values: Sequence[KeyValue],
        sort_values: Sequence[KeyValue],
    ) -> Optional[Tuple[KeyValue, ...]]:
        """Sharding values when the query binds them all, else ``None``."""
        bound: Dict[str, KeyValue] = {}
        for name, value in zip(self._spec_eq, equality_values):
            bound[name] = value
        for name, value in zip(self._spec_sort, sort_values):
            bound[name] = value
        try:
            return tuple(bound[name] for name in self.schema.sharding_key)
        except KeyError:
            return None

    # -- ingestion -------------------------------------------------------------------

    def ingest(self, rows: Sequence[Sequence[KeyValue]]) -> Dict[int, int]:
        """Route rows to shards; returns rows-per-shard for observability.

        Under a qos config the whole batch passes admission control first
        (one token per batch) and its deadline is tracked like a query's.
        """
        if self._admission is None:
            return self._ingest_inner(rows)
        ticket = self._admission.admit()
        start = self.sim_now()
        try:
            return self._ingest_inner(rows)
        finally:
            ticket.finish(self.sim_now() - start)

    def _ingest_inner(
        self, rows: Sequence[Sequence[KeyValue]]
    ) -> Dict[int, int]:
        per_shard: Dict[int, List[Sequence[KeyValue]]] = {}
        # One map pin covers the whole batch: every row of the batch is
        # routed by the same epoch, and a concurrent split's cutover
        # publish happens entirely before or entirely after it.
        with self._maps.pin() as pin:
            for row in rows:
                values = tuple(row[i] for i in self._shard_positions)
                shard_id = pin.map.write_shard(self.key_hash(values))
                per_shard.setdefault(shard_id, []).append(row)
            for shard_id, shard_rows in per_shard.items():
                self.shards[shard_id].ingest(shard_rows)
        return {shard_id: len(rs) for shard_id, rs in per_shard.items()}

    # -- lifecycle --------------------------------------------------------------------

    def _maintenance_skip(self) -> Set[int]:
        """Shards whose lifecycle must not run right now.

        Retired sources stay readable for old-epoch pins but never groom
        again.  A split's successors are frozen until the final publish:
        grooming there would assign ``beginTS`` from a clock that has not
        yet been handed forward from the source, which would break the
        double-read's newest-wins comparison.
        """
        skip = set(self._retired)
        state = self._active_split
        if state is not None and state.phase in (
            "pre_copy",
            "migrating",
            "copied",
        ):
            for successor_id in (state.left_id, state.right_id):
                if successor_id >= 0:
                    skip.add(successor_id)
        return skip

    def tick(self) -> None:
        """One lifecycle cycle on every live shard (deterministic driver)."""
        skip = self._maintenance_skip()
        for shard_id, shard in enumerate(self.shards):
            if shard_id not in skip:
                shard.tick()

    def run_cycles(self, cycles: int) -> None:
        for _ in range(cycles):
            self.tick()

    def start_daemons(self, groom_interval_s: float = 0.05) -> None:
        self._daemons_running = True
        self._daemon_interval = groom_interval_s
        skip = self._maintenance_skip()
        for shard_id, shard in enumerate(self.shards):
            if shard_id not in skip and not shard._daemon_threads:
                shard.start_daemons(groom_interval_s=groom_interval_s)

    def stop_daemons(self) -> None:
        self._daemons_running = False
        for shard in self.shards:
            shard.stop_daemons()

    # -- online shard split (ISSUE 8) ---------------------------------------------

    def split_shard(self, shard_id: int) -> Dict[str, object]:
        """Split one shard's slot into two successor shards, online.

        Serialized with other splits; queries never take this lock.  A
        :class:`~repro.faults.crash.SimulatedCrash` at any of the four
        ``split.*`` crash points leaves the phase machine parked in
        ``self._active_split`` for :meth:`recover_split`.
        """
        with self._split_lock:
            if self._active_split is not None:
                raise SplitError(
                    f"a split of shard {self._active_split.source_id} is "
                    "already in flight; recover it first"
                )
            if self._slicer is None:
                raise SplitError(
                    "online split needs the sharding key to be index key "
                    "columns (zero-decode partitioning reads them from "
                    "raw sort keys)"
                )
            if shard_id in self._retired:
                raise SplitError(f"shard {shard_id} is retired")
            secondaries = self.shards[shard_id].indexes.secondaries
            if secondaries:
                raise SplitUnsupported(shard_id, sorted(secondaries))
            current = self._maps.current
            slot = next(
                (
                    i
                    for i, route in enumerate(current.slots)
                    if route.state == "single" and route.primary == shard_id
                ),
                None,
            )
            if slot is None:
                raise SplitError(
                    f"shard {shard_id} does not solely own a routable slot"
                )
            state = SplitState(source_id=shard_id, slot=slot)
            self._active_split = state
            return self._run_split(state)

    def recover_split(self) -> Dict[str, object]:
        """Resume (or roll back) a split interrupted by a crash.

        * crash before the write cutover (``split.pre_copy``): nothing
          was published -- discard the state, routing is fully-old;
        * crash anywhere after the cutover: roll *forward* by replaying
          the remaining phases (every copy step is idempotent) until the
          final map is published and the source retired.

        Idempotent: calling with no interrupted split is a no-op.
        """
        with self._split_lock:
            state = self._active_split
            if state is None:
                return {"resumed": False, "epoch": self._maps.epoch}
            if state.phase == "pre_copy":
                self._active_split = None
                return {
                    "resumed": True,
                    "outcome": "rolled_back",
                    "epoch": self._maps.epoch,
                }
            result = self._run_split(state)
            result["outcome"] = "rolled_forward"
            return result

    def _split_gate(self, state: SplitState) -> None:
        """Backpressure gate: refuse to even start a split under duress.

        Only consulted before the write cutover -- past that point the
        only safe direction is forward, whatever the breakers say.
        """
        if self._scheduler is not None and not self._scheduler.allow_maintenance():
            self._active_split = None
            raise SplitAborted(
                "maintenance backpressure: split refused before cutover"
            )
        breaker = self._breakers[state.source_id]
        if breaker is not None and breaker.state() is BreakerState.OPEN:
            self._active_split = None
            raise SplitAborted(
                f"shard {state.source_id} breaker is open; split refused"
            )

    def _run_split(self, state: SplitState) -> Dict[str, object]:
        """Advance the split phase machine to completion (resumable)."""
        if state.phase == "pre_copy":
            self._split_gate(state)
            crash_point("split.pre_copy")
            if state.left_id < 0:
                state.left_id = self._new_shard()
                state.right_id = self._new_shard()
            current = self._maps.current
            migrating = current.with_slot(
                state.slot,
                SlotRoute(
                    "migrating",
                    primary=state.source_id,
                    left=state.left_id,
                    right=state.right_id,
                ),
                epoch=current.epoch + 1,
            )
            # Write cutover: from this swap on, new rows for the slot land
            # on the successors and every read double-reads.
            old = self._maps.publish(migrating)
            state.migrating_epoch = migrating.epoch
            state.phase = "migrating"
            # No query pinned to the pre-cutover map may still be routing
            # writes to the source once we start draining it.
            self._maps.drain(old.epoch)

        source = self.shards[state.source_id]
        left = self.shards[state.left_id]
        right = self.shards[state.right_id]

        if state.phase == "migrating":
            # The source stops receiving writes at the cutover: its daemon
            # threads (if any) retire now, and one synchronous quiesce
            # empties its live and groomed zones for good.
            source.stop_daemons()
            state.quiesce_grooms += source.quiesce()["grooms"]
            # Clock handoff: every beginTS the successors will ever assign
            # must sort after every beginTS the source ever assigned, or
            # the double-read's newest-wins comparison lies.
            for successor in (left, right):
                successor.clock.ensure_at_least(*source.clock.state())
            state.copied_blocks += copy_post_groomed_blocks(
                source, (left, right)
            )
            state.copied_entries += partition_runs(
                source, left, right, self._slicer
            )
            state.phase = "copied"

        if state.phase == "copied":
            crash_point("split.pre_publish")
            current = self._maps.current
            final = current.with_slot(
                state.slot,
                SlotRoute(
                    "split",
                    primary=state.source_id,
                    left=state.left_id,
                    right=state.right_id,
                ),
                epoch=state.migrating_epoch + 1,
            )
            self._maps.publish(final)
            state.final_epoch = final.epoch
            state.phase = "published"
            self._maps.drain(state.migrating_epoch)

        if state.phase == "published":
            crash_point("split.post_publish")
            # Decommission: the source keeps its data (an old-epoch pin may
            # still read it) but never grooms again; the successors start
            # their normal lifecycle, daemons included if the cluster runs
            # them.
            source.stop_daemons()
            source.exit_degraded_mode()
            self._retired.add(state.source_id)
            if self._daemons_running:
                for successor in (left, right):
                    if not successor._daemon_threads:
                        successor.start_daemons(
                            groom_interval_s=self._daemon_interval
                        )
            state.phase = "done"
            self._active_split = None

        return {
            "resumed": True,
            "epoch": self._maps.epoch,
            **state.summary(),
        }

    def _new_shard(self) -> int:
        """Append one fresh, empty shard wired into the qos stack."""
        shard_id = len(self.shards)
        shard = WildfireShard(
            self.schema,
            self.index_spec,
            hierarchy=(
                self._hierarchy_factory(shard_id)
                if self._hierarchy_factory is not None
                else None
            ),
            config=self._config,
        )
        self.shards.append(shard)
        self._attach_qos(shard_id, shard)
        self.num_shards = len(self.shards)
        return shard_id

    # -- queries ----------------------------------------------------------------------

    def point_query(
        self,
        equality_values: Sequence[KeyValue] = (),
        sort_values: Sequence[KeyValue] = (),
        query_ts: Optional[int] = None,
    ) -> Optional[Record]:
        """Routed when the sharding key is bound (it is, for a primary-key
        lookup: the sharding key is a subset of the primary key)."""
        if self._admission is None:
            return self._point_query_inner(
                equality_values, sort_values, query_ts
            )
        ticket = self._admission.admit()
        start = self.sim_now()
        try:
            return self._point_query_inner(
                equality_values, sort_values, query_ts
            )
        finally:
            ticket.finish(self.sim_now() - start)

    def _point_query_inner(
        self,
        equality_values: Sequence[KeyValue],
        sort_values: Sequence[KeyValue],
        query_ts: Optional[int],
    ) -> Optional[Record]:
        with self._maps.pin() as pin:
            values = self._bound_sharding_values(equality_values, sort_values)
            if values is not None:
                return self._routed_point(
                    pin, self.key_hash(values), equality_values, sort_values,
                    query_ts,
                )
            return self._scatter_point(
                pin, equality_values, sort_values, query_ts
            )

    def _routed_point(
        self,
        pin: MapPin,
        key_hash: int,
        equality_values: Sequence[KeyValue],
        sort_values: Sequence[KeyValue],
        query_ts: Optional[int],
    ) -> Optional[Record]:
        route = pin.map.route_of(key_hash)
        if route.state != "migrating":
            return self._shard_point_query(
                route.read_shards(key_hash)[0],
                equality_values,
                sort_values,
                query_ts,
            )
        # Migration window: double-read successor + source, newest beginTS
        # wins.  The successor must answer authoritatively or not at all --
        # a degraded (snapshot-pinned) successor answer could silently miss
        # freshly cut-over writes, so its brownouts surface as a typed
        # partial result tagged with the serving epoch instead.
        best: Optional[Record] = None
        failed: List[int] = []
        cause: Optional[BaseException] = None
        for shard_id in route.read_shards(key_hash):
            allow_degraded = shard_id == route.primary
            try:
                record = self._shard_point_query(
                    shard_id,
                    equality_values,
                    sort_values,
                    query_ts,
                    allow_degraded=allow_degraded,
                )
            except TransientIOError as exc:
                failed.append(shard_id)
                cause = exc
                continue
            if record is not None and (
                best is None or record.begin_ts > best.begin_ts
            ):
                best = record
        if failed:
            raise PartialResultError(
                tuple(failed),
                (best,) if best is not None else (),
                cause,
                epoch=pin.epoch,
            )
        return best

    def _scatter_point(
        self,
        pin: MapPin,
        equality_values: Sequence[KeyValue],
        sort_values: Sequence[KeyValue],
        query_ts: Optional[int],
    ) -> Optional[Record]:
        # Defensive scatter fallback: a failing shard yields a typed
        # partial-result error naming it, never a bare TransientIOError.
        shard_map = pin.map
        migrating = self._migrating_successors(shard_map)
        best: Optional[Record] = None
        failed: List[int] = []
        cause: Optional[BaseException] = None
        for scatter_id in shard_map.scatter_shards():
            try:
                record = self._shard_point_query(
                    scatter_id,
                    equality_values,
                    sort_values,
                    query_ts,
                    allow_degraded=scatter_id not in migrating,
                )
            except TransientIOError as exc:
                failed.append(scatter_id)
                cause = exc
                continue
            if record is not None and (
                best is None or record.begin_ts > best.begin_ts
            ):
                best = record
        if failed:
            raise PartialResultError(
                tuple(failed),
                (best,) if best is not None else (),
                cause,
                epoch=pin.epoch,
            )
        return best

    @staticmethod
    def _migrating_successors(shard_map: ShardMap) -> Set[int]:
        successors: Set[int] = set()
        for route in shard_map.slots:
            if route.state == "migrating":
                successors.add(route.left)
                successors.add(route.right)
        return successors

    def _shard_point_query(
        self,
        shard_id: int,
        equality_values: Sequence[KeyValue],
        sort_values: Sequence[KeyValue],
        query_ts: Optional[int],
        allow_degraded: bool = True,
    ) -> Optional[Record]:
        """One shard's point query, with breaker-aware degraded serving."""
        shard = self.shards[shard_id]
        breaker = self._breakers[shard_id]
        if breaker is not None:
            if breaker.state() is BreakerState.OPEN:
                if not allow_degraded:
                    raise StorageBrownout(f"shared/shard{shard_id}", 0)
                return self._degraded_point(
                    shard, equality_values, sort_values, query_ts
                )
            if shard.degraded:
                shard.exit_degraded_mode()
        try:
            return shard.point_query(equality_values, sort_values, query_ts)
        except StorageBrownout:
            if breaker is None or not allow_degraded:
                raise
            # The breaker tripped mid-query: answer from the snapshot pin
            # instead of surfacing the brownout to the client.
            return self._degraded_point(
                shard, equality_values, sort_values, query_ts
            )

    def _degraded_point(
        self,
        shard: WildfireShard,
        equality_values: Sequence[KeyValue],
        sort_values: Sequence[KeyValue],
        query_ts: Optional[int],
    ) -> Optional[Record]:
        shard.enter_degraded_mode()
        self._qos_io.qos.degraded_reads += 1
        return shard.degraded_point_query(
            equality_values, sort_values, query_ts
        )

    def range_query(
        self,
        equality_values: Sequence[KeyValue] = (),
        sort_lower: Optional[Sequence[KeyValue]] = None,
        sort_upper: Optional[Sequence[KeyValue]] = None,
        query_ts: Optional[int] = None,
    ) -> List[IndexEntry]:
        """Routed if the equality columns pin the sharding key; otherwise a
        scatter-gather over every shard with a client-side merge."""
        if self._admission is None:
            return self._range_query_inner(
                equality_values, sort_lower, sort_upper, query_ts
            )
        ticket = self._admission.admit()
        start = self.sim_now()
        try:
            return self._range_query_inner(
                equality_values, sort_lower, sort_upper, query_ts
            )
        finally:
            ticket.finish(self.sim_now() - start)

    def _range_query_inner(
        self,
        equality_values: Sequence[KeyValue],
        sort_lower: Optional[Sequence[KeyValue]],
        sort_upper: Optional[Sequence[KeyValue]],
        query_ts: Optional[int],
    ) -> List[IndexEntry]:
        with self._maps.pin() as pin:
            values = self._bound_sharding_values(equality_values, ())
            if values is not None:
                return self._routed_range(
                    pin,
                    self.key_hash(values),
                    equality_values,
                    sort_lower,
                    sort_upper,
                    query_ts,
                )
            return self._scatter_range(
                pin, equality_values, sort_lower, sort_upper, query_ts
            )

    def _routed_range(
        self,
        pin: MapPin,
        key_hash: int,
        equality_values: Sequence[KeyValue],
        sort_lower: Optional[Sequence[KeyValue]],
        sort_upper: Optional[Sequence[KeyValue]],
        query_ts: Optional[int],
    ) -> List[IndexEntry]:
        route = pin.map.route_of(key_hash)
        if route.state != "migrating":
            return self._shard_range_query(
                route.read_shards(key_hash)[0],
                equality_values,
                sort_lower,
                sort_upper,
                query_ts,
            )
        gathered: List[IndexEntry] = []
        failed: List[int] = []
        cause: Optional[BaseException] = None
        for shard_id in route.read_shards(key_hash):
            allow_degraded = shard_id == route.primary
            try:
                gathered.extend(
                    self._shard_range_query(
                        shard_id,
                        equality_values,
                        sort_lower,
                        sort_upper,
                        query_ts,
                        allow_degraded=allow_degraded,
                    )
                )
            except TransientIOError as exc:
                failed.append(shard_id)
                cause = exc
        merged = self._merge_versions(gathered)
        if failed:
            raise PartialResultError(
                tuple(failed), tuple(merged), cause, epoch=pin.epoch
            )
        return merged

    def _scatter_range(
        self,
        pin: MapPin,
        equality_values: Sequence[KeyValue],
        sort_lower: Optional[Sequence[KeyValue]],
        sort_upper: Optional[Sequence[KeyValue]],
        query_ts: Optional[int],
    ) -> List[IndexEntry]:
        shard_map = pin.map
        migrating = self._migrating_successors(shard_map)
        gathered: List[IndexEntry] = []
        failed: List[int] = []
        cause: Optional[BaseException] = None
        for scatter_id in shard_map.scatter_shards():
            try:
                gathered.extend(
                    self._shard_range_query(
                        scatter_id,
                        equality_values,
                        sort_lower,
                        sort_upper,
                        query_ts,
                        allow_degraded=scatter_id not in migrating,
                    )
                )
            except TransientIOError as exc:
                # A shard whose retry budget ran out: name it instead of
                # letting a bare TransientIOError escape the gather.
                failed.append(scatter_id)
                cause = exc
        if shard_map.needs_merge():
            gathered = self._merge_versions(gathered)
        else:
            definition = self.shards[0].index.definition
            gathered.sort(key=lambda entry: entry.key_bytes(definition))
        if failed:
            raise PartialResultError(
                tuple(failed), tuple(gathered), cause, epoch=pin.epoch
            )
        return gathered

    def _merge_versions(self, entries: List[IndexEntry]) -> List[IndexEntry]:
        """Client-side double-read merge: newest version per key wins.

        Each shard already returns at most one (newest visible) version
        per key; during a migration window the successor and the source
        may both answer for the same key.  Sorting by the full sort key
        (key bytes + descending-encoded beginTS) groups versions of one
        key newest-first, so keeping the first entry per key drops both
        exact duplicates (copied entries are byte-identical) and stale
        source versions in one pass.
        """
        definition = self.shards[0].index.definition
        entries.sort(key=lambda entry: entry.sort_key(definition))
        merged: List[IndexEntry] = []
        last_key: Optional[bytes] = None
        for entry in entries:
            key = entry.key_bytes(definition)
            if key == last_key:
                continue
            last_key = key
            merged.append(entry)
        return merged

    def _shard_range_query(
        self,
        shard_id: int,
        equality_values: Sequence[KeyValue],
        sort_lower: Optional[Sequence[KeyValue]],
        sort_upper: Optional[Sequence[KeyValue]],
        query_ts: Optional[int],
        allow_degraded: bool = True,
    ) -> List[IndexEntry]:
        shard = self.shards[shard_id]
        breaker = self._breakers[shard_id]
        if breaker is not None:
            if breaker.state() is BreakerState.OPEN:
                if not allow_degraded:
                    raise StorageBrownout(f"shared/shard{shard_id}", 0)
                return self._degraded_range(
                    shard, equality_values, sort_lower, sort_upper, query_ts
                )
            if shard.degraded:
                shard.exit_degraded_mode()
        try:
            return shard.range_query(
                equality_values, sort_lower, sort_upper, query_ts
            )
        except StorageBrownout:
            if breaker is None or not allow_degraded:
                raise
            return self._degraded_range(
                shard, equality_values, sort_lower, sort_upper, query_ts
            )

    def _degraded_range(
        self,
        shard: WildfireShard,
        equality_values: Sequence[KeyValue],
        sort_lower: Optional[Sequence[KeyValue]],
        sort_upper: Optional[Sequence[KeyValue]],
        query_ts: Optional[int],
    ) -> List[IndexEntry]:
        shard.enter_degraded_mode()
        self._qos_io.qos.degraded_reads += 1
        return shard.degraded_range_query(
            equality_values, sort_lower, sort_upper, query_ts
        )

    # -- typed queries through the access-path planner (ISSUE 9) ----------------------

    def query(self, query: Query) -> List[Tuple[KeyValue, ...]]:
        """Planner-routed typed query across the cluster.

        Routed to one slot when the query's equality predicates bind
        every sharding-key column; otherwise a scatter-gather over all
        live shards.  Each shard plans its own access path (its planner
        sees its own statistics), returns ``(pk, beginTS, row)`` tagged
        rows, and the gather merges them newest-beginTS-wins per primary
        key -- exactly what a split-migration double-read needs -- before
        dropping the tags.  Rows come back sorted by (row values,
        primary key), identical to :meth:`WildfireShard.query`.

        Typed queries never serve degraded (snapshot-pinned) answers: a
        browned-out or breaker-open shard is reported in a
        :class:`PartialResultError` naming it, tagged with the serving
        epoch, instead of silently narrowing the result.
        """
        if self._admission is None:
            return self._query_inner(query)
        ticket = self._admission.admit()
        start = self.sim_now()
        try:
            return self._query_inner(query)
        finally:
            ticket.finish(self.sim_now() - start)

    def _query_inner(self, query: Query) -> List[Tuple[KeyValue, ...]]:
        with self._maps.pin() as pin:
            values = self._query_sharding_values(query)
            if values is not None:
                route = pin.map.route_of(self.key_hash(values))
                if route.state != "migrating":
                    shard_id = route.read_shards(self.key_hash(values))[0]
                    tagged = self.shards[shard_id]._query_tagged(query)
                    return [row for _, _, row in self._merge_tagged([tagged])]
                shard_ids = list(route.read_shards(self.key_hash(values)))
            else:
                shard_ids = list(pin.map.scatter_shards())
            parts: List[
                List[Tuple[Tuple[KeyValue, ...], int, Tuple[KeyValue, ...]]]
            ] = []
            failed: List[int] = []
            cause: Optional[BaseException] = None
            for shard_id in shard_ids:
                try:
                    parts.append(self.shards[shard_id]._query_tagged(query))
                except TransientIOError as exc:
                    failed.append(shard_id)
                    cause = exc
            rows = [row for _, _, row in self._merge_tagged(parts)]
            if failed:
                raise PartialResultError(
                    tuple(failed), tuple(rows), cause, epoch=pin.epoch
                )
            return rows

    def _query_sharding_values(
        self, query: Query
    ) -> Optional[Tuple[KeyValue, ...]]:
        """Sharding values when the query equality-binds them all."""
        bound = dict(query.equalities)
        try:
            return tuple(bound[name] for name in self.schema.sharding_key)
        except KeyError:
            return None

    @staticmethod
    def _merge_tagged(
        parts: Sequence[
            Sequence[Tuple[Tuple[KeyValue, ...], int, Tuple[KeyValue, ...]]]
        ],
    ) -> List[Tuple[Tuple[KeyValue, ...], int, Tuple[KeyValue, ...]]]:
        """Newest-beginTS-wins per primary key, then the output sort.

        Each shard already deduplicated its own versions; across shards
        a migration window's double-read may answer the same key from
        both the source and a successor (copied rows tie on beginTS and
        are identical; post-cutover writes win by a larger beginTS).
        """
        best: Dict[
            Tuple[KeyValue, ...], Tuple[int, Tuple[KeyValue, ...]]
        ] = {}
        for part in parts:
            for pk, begin_ts, row in part:
                held = best.get(pk)
                if held is None or begin_ts > held[0]:
                    best[pk] = (begin_ts, row)
        return sorted(
            ((pk, ts, row) for pk, (ts, row) in best.items()),
            key=lambda item: (item[2], item[0]),
        )

    # -- observability ----------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Cluster stats with a *complete* ledger rollup (ISSUE 8).

        ``io`` folds the cluster's own ledger plus every shard's hierarchy
        ledger through :meth:`~repro.storage.metrics.IOStats.merge`, so
        sub-ledger counters (per-intent cache paths, fault/retry counts,
        epoch lifecycle, decode work) aggregate instead of being dropped
        like the old top-level-only summation did.  ``total_entries``
        counts live shards only: a retired source's copied entries would
        otherwise be double-counted.
        """
        per_shard = [shard.stats() for shard in self.shards]
        merged = IOStats()
        merged.merge(self._qos_io)
        for shard in self.shards:
            merged.merge(shard.hierarchy.stats)
        live = self.live_shard_ids()
        return {
            "num_shards": len(live),
            "routing_epoch": self._maps.epoch,
            "retired_shards": sorted(self._retired),
            "total_entries": sum(
                per_shard[i]["index"].total_entries for i in live  # type: ignore[index]
            ),
            "per_shard": per_shard,
            "qos": merged.qos.snapshot(),
            "io": merged,
        }

    def crash_and_recover_shard(self, shard_id: int):
        """Crash one shard's node; the rest keep serving (independence)."""
        shard = self.shards[shard_id]
        # A degraded-mode pin references pre-crash run objects; drop it
        # before the local tiers are wiped and the run lists rebuilt.
        shard.exit_degraded_mode()
        return shard.crash_and_recover()


__all__ = ["ADMISSION_TIER", "ShardedTable"]
