"""Multi-shard tables (paper sections 2.1, 3, 8).

"Inserted records are routed by the sharding key to different shards. ...
each Umzi index structure instance serves a single table shard.  There are
a number of indexer daemons running in the cluster.  Each runs
independently ... As a result, Umzi scales up and down nicely with more or
less indexer daemons."

This module provides that outer layer: a :class:`ShardedTable` routes
upserts by the hash of the sharding key, runs each shard's lifecycle
independently (shards share nothing -- separate storage hierarchies,
logs, catalogs and index instances), and answers queries by routing
(sharding key fully bound) or scatter-gather (otherwise).

**Overload protection (ISSUE 7).**  Constructed with a
:class:`~repro.qos.admission.QosConfig`, the table threads the full qos
stack through its serving path:

* every ``point_query``/``range_query``/``ingest`` passes a token-bucket
  :class:`~repro.qos.admission.AdmissionController` (typed
  ``Overloaded``/``DeadlineExceeded`` sheds, per-query deadlines on the
  simulated clock);
* a cluster-wide :class:`~repro.qos.scheduler.DaemonScheduler` throttles
  every shard's maintenance when the admission backlog, retry pressure,
  or an open breaker says queries need the bandwidth;
* each shard's shared tier gets a
  :class:`~repro.qos.breaker.CircuitBreaker`; while it is open, queries
  for that shard degrade to local tiers + a pinned versionset snapshot
  (counted as ``degraded_reads``) instead of erroring.

All counters land on the cluster's own qos ledger
(:meth:`ShardedTable.qos_stats`); admission queueing delays are charged
to a synthetic ``"admission"`` tier on the same ledger, so the cluster's
simulated clock includes time spent waiting in queue.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.encoding import KeyValue, encode_composite, fnv1a64
from repro.core.entry import IndexEntry
from repro.qos.admission import AdmissionController, QosConfig
from repro.qos.breaker import BreakerState, CircuitBreaker
from repro.qos.errors import PartialResultError
from repro.qos.scheduler import DaemonScheduler
from repro.storage.hierarchy import StorageHierarchy
from repro.storage.metrics import IOStats, QosStats
from repro.storage.retry import StorageBrownout, TransientIOError
from repro.wildfire.engine import ShardConfig, WildfireShard
from repro.wildfire.record import Record
from repro.wildfire.schema import IndexSpec, SchemaError, TableSchema

ADMISSION_TIER = "admission"


class ShardedTable:
    """A Wildfire table split into independent shards."""

    def __init__(
        self,
        schema: TableSchema,
        index_spec: IndexSpec,
        num_shards: int = 4,
        config: Optional[ShardConfig] = None,
        qos: Optional[QosConfig] = None,
        hierarchy_factory: Optional[Callable[[int], StorageHierarchy]] = None,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if not schema.sharding_key:
            raise SchemaError("a sharded table needs a sharding key")
        self.schema = schema
        self.index_spec = index_spec
        self.num_shards = num_shards
        # ``hierarchy_factory(shard_id)`` lets callers supply per-shard
        # storage (e.g. FaultyTier-backed hierarchies for brownout tests);
        # shards still share nothing -- one hierarchy each.
        self.shards: List[WildfireShard] = [
            WildfireShard(
                schema,
                index_spec,
                hierarchy=(
                    hierarchy_factory(shard_id)
                    if hierarchy_factory is not None
                    else None
                ),
                config=config,
            )
            for shard_id in range(num_shards)
        ]
        self._shard_positions = schema.positions(schema.sharding_key)
        # Which index key columns the sharding key pins (for routing reads).
        self._spec_eq = index_spec.equality_columns
        self._spec_sort = index_spec.sort_columns

        # -- overload protection (ISSUE 7) --------------------------------
        self.qos_config = qos
        self._qos_io = IOStats()  # cluster ledger: admission tier + QosStats
        self._admission: Optional[AdmissionController] = None
        self._scheduler: Optional[DaemonScheduler] = None
        self._breakers: List[Optional[CircuitBreaker]] = [None] * num_shards
        if qos is not None:
            self._admission = AdmissionController(
                qos,
                stats=self._qos_io.qos,
                charge=lambda ns: self._qos_io.record_backoff(
                    ADMISSION_TIER, ns
                ),
            )
            self._scheduler = DaemonScheduler(
                qos, stats=self._qos_io.qos, admission=self._admission
            )
            for shard_id, shard in enumerate(self.shards):
                breaker = CircuitBreaker(
                    f"shared/shard{shard_id}",
                    qos.breaker,
                    clock=self.sim_now,
                    stats=self._qos_io.qos,
                )
                shard.hierarchy.attach_shared_breaker(breaker)
                shard.attach_scheduler(self._scheduler)
                self._scheduler.watch_breaker(breaker)
                self._scheduler.watch_faults(shard.hierarchy.stats.faults)
                self._breakers[shard_id] = breaker

    # -- qos surface -----------------------------------------------------------------

    @property
    def admission(self) -> Optional[AdmissionController]:
        return self._admission

    @property
    def scheduler(self) -> Optional[DaemonScheduler]:
        return self._scheduler

    def breaker(self, shard_id: int) -> Optional[CircuitBreaker]:
        return self._breakers[shard_id]

    def qos_stats(self) -> QosStats:
        """The live cluster qos ledger (admission + breakers + scheduler)."""
        return self._qos_io.qos

    def sim_now(self) -> int:
        """Cluster simulated clock: arrival time + work + queue waits.

        The arrival clock (:meth:`advance_clock`) contributes so that
        idle simulated time also elapses for the circuit breakers: a
        breaker's open window can lapse while the cluster waits for the
        next client batch, not only while it burns work ns.
        """
        arrival = self._admission.now_ns if self._admission is not None else 0
        return (
            arrival
            + self._qos_io.total_sim_ns
            + sum(shard.hierarchy.stats.total_sim_ns for shard in self.shards)
        )

    def advance_clock(self, delta_ns: int) -> None:
        """Advance the admission arrival clock (offered-load time).

        Closed-loop drivers call this between client batches; without a
        qos config it is a no-op so drivers need not special-case."""
        if self._admission is not None:
            self._admission.advance(delta_ns)

    # -- routing --------------------------------------------------------------------

    def shard_of_row(self, row: Sequence[KeyValue]) -> int:
        values = tuple(row[i] for i in self._shard_positions)
        return self.shard_of_key(values)

    def shard_of_key(self, sharding_values: Tuple[KeyValue, ...]) -> int:
        return fnv1a64(encode_composite(sharding_values)) % self.num_shards

    def _route_query(
        self,
        equality_values: Sequence[KeyValue],
        sort_values: Sequence[KeyValue],
    ) -> Optional[int]:
        """Shard id when the sharding key is fully bound, else ``None``."""
        bound: Dict[str, KeyValue] = {}
        for name, value in zip(self._spec_eq, equality_values):
            bound[name] = value
        for name, value in zip(self._spec_sort, sort_values):
            bound[name] = value
        try:
            values = tuple(bound[name] for name in self.schema.sharding_key)
        except KeyError:
            return None
        return self.shard_of_key(values)

    # -- ingestion -------------------------------------------------------------------

    def ingest(self, rows: Sequence[Sequence[KeyValue]]) -> Dict[int, int]:
        """Route rows to shards; returns rows-per-shard for observability.

        Under a qos config the whole batch passes admission control first
        (one token per batch) and its deadline is tracked like a query's.
        """
        if self._admission is None:
            return self._ingest_inner(rows)
        ticket = self._admission.admit()
        start = self.sim_now()
        try:
            return self._ingest_inner(rows)
        finally:
            ticket.finish(self.sim_now() - start)

    def _ingest_inner(
        self, rows: Sequence[Sequence[KeyValue]]
    ) -> Dict[int, int]:
        per_shard: Dict[int, List[Sequence[KeyValue]]] = {}
        for row in rows:
            per_shard.setdefault(self.shard_of_row(row), []).append(row)
        for shard_id, shard_rows in per_shard.items():
            self.shards[shard_id].ingest(shard_rows)
        return {shard_id: len(rs) for shard_id, rs in per_shard.items()}

    # -- lifecycle --------------------------------------------------------------------

    def tick(self) -> None:
        """One lifecycle cycle on every shard (deterministic driver)."""
        for shard in self.shards:
            shard.tick()

    def run_cycles(self, cycles: int) -> None:
        for _ in range(cycles):
            self.tick()

    def start_daemons(self, groom_interval_s: float = 0.05) -> None:
        for shard in self.shards:
            shard.start_daemons(groom_interval_s=groom_interval_s)

    def stop_daemons(self) -> None:
        for shard in self.shards:
            shard.stop_daemons()

    # -- queries ----------------------------------------------------------------------

    def point_query(
        self,
        equality_values: Sequence[KeyValue] = (),
        sort_values: Sequence[KeyValue] = (),
        query_ts: Optional[int] = None,
    ) -> Optional[Record]:
        """Routed when the sharding key is bound (it is, for a primary-key
        lookup: the sharding key is a subset of the primary key)."""
        if self._admission is None:
            return self._point_query_inner(
                equality_values, sort_values, query_ts
            )
        ticket = self._admission.admit()
        start = self.sim_now()
        try:
            return self._point_query_inner(
                equality_values, sort_values, query_ts
            )
        finally:
            ticket.finish(self.sim_now() - start)

    def _point_query_inner(
        self,
        equality_values: Sequence[KeyValue],
        sort_values: Sequence[KeyValue],
        query_ts: Optional[int],
    ) -> Optional[Record]:
        shard_id = self._route_query(equality_values, sort_values)
        if shard_id is not None:
            return self._shard_point_query(
                shard_id, equality_values, sort_values, query_ts
            )
        # Defensive scatter fallback: a failing shard yields a typed
        # partial-result error naming it, never a bare TransientIOError.
        failed: List[int] = []
        cause: Optional[BaseException] = None
        for scatter_id in range(self.num_shards):
            try:
                record = self._shard_point_query(
                    scatter_id, equality_values, sort_values, query_ts
                )
            except TransientIOError as exc:
                failed.append(scatter_id)
                cause = exc
                continue
            if record is not None:
                return record
        if failed:
            raise PartialResultError(tuple(failed), (), cause)
        return None

    def _shard_point_query(
        self,
        shard_id: int,
        equality_values: Sequence[KeyValue],
        sort_values: Sequence[KeyValue],
        query_ts: Optional[int],
    ) -> Optional[Record]:
        """One shard's point query, with breaker-aware degraded serving."""
        shard = self.shards[shard_id]
        breaker = self._breakers[shard_id]
        if breaker is not None:
            if breaker.state() is BreakerState.OPEN:
                return self._degraded_point(
                    shard, equality_values, sort_values, query_ts
                )
            if shard.degraded:
                shard.exit_degraded_mode()
        try:
            return shard.point_query(equality_values, sort_values, query_ts)
        except StorageBrownout:
            if breaker is None:
                raise
            # The breaker tripped mid-query: answer from the snapshot pin
            # instead of surfacing the brownout to the client.
            return self._degraded_point(
                shard, equality_values, sort_values, query_ts
            )

    def _degraded_point(
        self,
        shard: WildfireShard,
        equality_values: Sequence[KeyValue],
        sort_values: Sequence[KeyValue],
        query_ts: Optional[int],
    ) -> Optional[Record]:
        shard.enter_degraded_mode()
        self._qos_io.qos.degraded_reads += 1
        return shard.degraded_point_query(
            equality_values, sort_values, query_ts
        )

    def range_query(
        self,
        equality_values: Sequence[KeyValue] = (),
        sort_lower: Optional[Sequence[KeyValue]] = None,
        sort_upper: Optional[Sequence[KeyValue]] = None,
        query_ts: Optional[int] = None,
    ) -> List[IndexEntry]:
        """Routed if the equality columns pin the sharding key; otherwise a
        scatter-gather over every shard with a client-side merge."""
        if self._admission is None:
            return self._range_query_inner(
                equality_values, sort_lower, sort_upper, query_ts
            )
        ticket = self._admission.admit()
        start = self.sim_now()
        try:
            return self._range_query_inner(
                equality_values, sort_lower, sort_upper, query_ts
            )
        finally:
            ticket.finish(self.sim_now() - start)

    def _range_query_inner(
        self,
        equality_values: Sequence[KeyValue],
        sort_lower: Optional[Sequence[KeyValue]],
        sort_upper: Optional[Sequence[KeyValue]],
        query_ts: Optional[int],
    ) -> List[IndexEntry]:
        shard_id = self._route_query(equality_values, ())
        if shard_id is not None:
            return self._shard_range_query(
                shard_id, equality_values, sort_lower, sort_upper, query_ts
            )
        gathered: List[IndexEntry] = []
        failed: List[int] = []
        cause: Optional[BaseException] = None
        for scatter_id in range(self.num_shards):
            try:
                gathered.extend(
                    self._shard_range_query(
                        scatter_id,
                        equality_values,
                        sort_lower,
                        sort_upper,
                        query_ts,
                    )
                )
            except TransientIOError as exc:
                # A shard whose retry budget ran out: name it instead of
                # letting a bare TransientIOError escape the gather.
                failed.append(scatter_id)
                cause = exc
        definition = self.shards[0].index.definition
        gathered.sort(key=lambda entry: entry.key_bytes(definition))
        if failed:
            raise PartialResultError(tuple(failed), tuple(gathered), cause)
        return gathered

    def _shard_range_query(
        self,
        shard_id: int,
        equality_values: Sequence[KeyValue],
        sort_lower: Optional[Sequence[KeyValue]],
        sort_upper: Optional[Sequence[KeyValue]],
        query_ts: Optional[int],
    ) -> List[IndexEntry]:
        shard = self.shards[shard_id]
        breaker = self._breakers[shard_id]
        if breaker is not None:
            if breaker.state() is BreakerState.OPEN:
                return self._degraded_range(
                    shard, equality_values, sort_lower, sort_upper, query_ts
                )
            if shard.degraded:
                shard.exit_degraded_mode()
        try:
            return shard.range_query(
                equality_values, sort_lower, sort_upper, query_ts
            )
        except StorageBrownout:
            if breaker is None:
                raise
            return self._degraded_range(
                shard, equality_values, sort_lower, sort_upper, query_ts
            )

    def _degraded_range(
        self,
        shard: WildfireShard,
        equality_values: Sequence[KeyValue],
        sort_lower: Optional[Sequence[KeyValue]],
        sort_upper: Optional[Sequence[KeyValue]],
        query_ts: Optional[int],
    ) -> List[IndexEntry]:
        shard.enter_degraded_mode()
        self._qos_io.qos.degraded_reads += 1
        return shard.degraded_range_query(
            equality_values, sort_lower, sort_upper, query_ts
        )

    # -- observability ----------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        per_shard = [shard.stats() for shard in self.shards]
        return {
            "num_shards": self.num_shards,
            "total_entries": sum(
                s["index"].total_entries for s in per_shard  # type: ignore[index]
            ),
            "per_shard": per_shard,
            "qos": self._qos_io.qos.snapshot(),
        }

    def crash_and_recover_shard(self, shard_id: int):
        """Crash one shard's node; the rest keep serving (independence)."""
        shard = self.shards[shard_id]
        # A degraded-mode pin references pre-crash run objects; drop it
        # before the local tiers are wiped and the run lists rebuilt.
        shard.exit_degraded_mode()
        return shard.crash_and_recover()


__all__ = ["ADMISSION_TIER", "ShardedTable"]
