"""Multi-shard tables (paper sections 2.1, 3, 8).

"Inserted records are routed by the sharding key to different shards. ...
each Umzi index structure instance serves a single table shard.  There are
a number of indexer daemons running in the cluster.  Each runs
independently ... As a result, Umzi scales up and down nicely with more or
less indexer daemons."

This module provides that outer layer: a :class:`ShardedTable` routes
upserts by the hash of the sharding key, runs each shard's lifecycle
independently (shards share nothing -- separate storage hierarchies,
logs, catalogs and index instances), and answers queries by routing
(sharding key fully bound) or scatter-gather (otherwise).

**Overload protection (ISSUE 7).**  Constructed with a
:class:`~repro.qos.admission.QosConfig`, the table threads the full qos
stack through its serving path:

* every ``point_query``/``range_query``/``ingest`` passes a token-bucket
  :class:`~repro.qos.admission.AdmissionController` (typed
  ``Overloaded``/``DeadlineExceeded`` sheds, per-query deadlines on the
  simulated clock);
* a cluster-wide :class:`~repro.qos.scheduler.DaemonScheduler` throttles
  every shard's maintenance when the admission backlog, retry pressure,
  or an open breaker says queries need the bandwidth;
* each shard's shared tier gets a
  :class:`~repro.qos.breaker.CircuitBreaker`; while it is open, queries
  for that shard degrade to local tiers + a pinned versionset snapshot
  (counted as ``degraded_reads``) instead of erroring.

**Online shard split (ISSUE 8).**  Routing goes through immutable
:class:`~repro.wildfire.shardmap.ShardMap` epochs published
versionset-style: every query pins the current map for its lifetime
(exactly one Ref and one Unref on the cluster ledger -- two refcount
operations per query), so a split's two map publishes are atomic swaps
that no in-flight query can observe torn.  :meth:`split_shard` drains a
source shard into two successors with a write-first cutover:

1. publish a ``migrating`` route (epoch N+1) -- new writes go to the
   successors, reads *double-read* successor + source and keep the
   newest version by raw ``beginTS``;
2. quiesce the source, hand its hybrid clock forward to the successors
   (so every post-split ``beginTS`` sorts after every pre-split one),
   and stream the source's post-groomed runs into one run per successor
   as raw ``(sort_key, blob)`` pairs -- the zero-decode evolve path;
3. publish the ``split`` route (epoch N+2) and retire the source.

Crash points ``split.pre_copy`` / ``mid_copy`` / ``pre_publish`` /
``post_publish`` cover the protocol; recovery rolls back to fully-old
routing before the cutover and rolls *forward* to fully-new after it --
never a torn map (see :meth:`recover_split`).

**Online shard merge + the rebalance pump (ISSUE 10).**
:meth:`merge_shards` is the inverse: a slot whose route is ``split``
fuses its two successors into one fresh target shard through a
``merging`` route (target owns fresh writes; reads double-read target +
old successor, newest ``beginTS`` wins), clock handoff taking the max of
both successors' hybrid clocks, verbatim block adoption (the split-time
block-id stride keeps the two sides' post-split blocks collision-free)
and a zero-decode run interleave -- with ``merge.*`` crash points and
:meth:`recover_merge` mirroring the split's roll-back/roll-forward
split.  Both migrations can also run *pumped*: :meth:`begin_split` /
:meth:`split_step` (and the merge twins) advance the copy in budgeted
slices interleaved with live traffic, producing byte-identical results
to the synchronous calls.  Shards carrying secondary indexes split and
merge too: the copy runs one partition pass per index, recovering each
entry's sharding key zero-decode from the primary-key suffix every
secondary sort key carries.

**Scatter pruning (ISSUE 10).**  Typed scatter-gather queries consult
each live shard's per-index :class:`AccessPathSynopsis` first and skip
shards whose observed key ranges provably cannot match the query's
bounds (every row version is present in every index, so a disjoint
range on *any* index rules the shard out); ``scatter_stats()`` counts
considered/contacted/pruned shards.

All counters land on the cluster's own qos ledger
(:meth:`ShardedTable.qos_stats`); admission queueing delays are charged
to a synthetic ``"admission"`` tier on the same ledger, so the cluster's
simulated clock includes time spent waiting in queue.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.encoding import KeyValue, encode_composite, fnv1a64
from repro.core.entry import IndexEntry
from repro.faults.crash import crash_point
from repro.qos.admission import AdmissionController, QosConfig
from repro.qos.breaker import BreakerState, CircuitBreaker
from repro.qos.errors import PartialResultError
from repro.qos.scheduler import DaemonScheduler
from repro.storage.hierarchy import StorageHierarchy
from repro.storage.metrics import IOStats, QosStats
from repro.storage.retry import StorageBrownout, TransientIOError
from repro.planner import Query
from repro.wildfire.engine import ShardConfig, WildfireShard
from repro.wildfire.indexes import PRIMARY_INDEX_NAME
from repro.wildfire.record import Record
from repro.wildfire.schema import IndexSpec, SchemaError, TableSchema
from repro.wildfire.shardmap import (
    MapPin,
    ShardMap,
    ShardMapRegistry,
    SlotRoute,
)
from repro.wildfire.merge import (
    MergeAborted,
    MergeError,
    MergeState,
    adopt_all_blocks,
    merge_copy_stream,
)
from repro.wildfire.split import (
    ShardCopyStream,
    SplitAborted,
    SplitError,
    SplitState,
    SplitUnsupported,
    copy_post_groomed_blocks,
    index_slicers,
    split_copy_stream,
)

ADMISSION_TIER = "admission"


class ShardedTable:
    """A Wildfire table split into independent shards."""

    def __init__(
        self,
        schema: TableSchema,
        index_spec: IndexSpec,
        num_shards: int = 4,
        config: Optional[ShardConfig] = None,
        qos: Optional[QosConfig] = None,
        hierarchy_factory: Optional[Callable[[int], StorageHierarchy]] = None,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if not schema.sharding_key:
            raise SchemaError("a sharded table needs a sharding key")
        self.schema = schema
        self.index_spec = index_spec
        self.num_shards = num_shards
        self._config = config
        # ``hierarchy_factory(shard_id)`` lets callers supply per-shard
        # storage (e.g. FaultyTier-backed hierarchies for brownout tests);
        # shards still share nothing -- one hierarchy each.
        self._hierarchy_factory = hierarchy_factory
        self.shards: List[WildfireShard] = [
            WildfireShard(
                schema,
                index_spec,
                hierarchy=(
                    hierarchy_factory(shard_id)
                    if hierarchy_factory is not None
                    else None
                ),
                config=config,
            )
            for shard_id in range(num_shards)
        ]
        self._shard_positions = schema.positions(schema.sharding_key)
        # Which index key columns the sharding key pins (for routing reads).
        self._spec_eq = index_spec.equality_columns
        self._spec_sort = index_spec.sort_columns

        # -- overload protection (ISSUE 7) --------------------------------
        self.qos_config = qos
        self._qos_io = IOStats()  # cluster ledger: admission tier + QosStats
        self._admission: Optional[AdmissionController] = None
        self._scheduler: Optional[DaemonScheduler] = None
        self._breakers: List[Optional[CircuitBreaker]] = []
        if qos is not None:
            self._admission = AdmissionController(
                qos,
                stats=self._qos_io.qos,
                charge=lambda ns: self._qos_io.record_backoff(
                    ADMISSION_TIER, ns
                ),
            )
            self._scheduler = DaemonScheduler(
                qos, stats=self._qos_io.qos, admission=self._admission
            )
        for shard_id, shard in enumerate(self.shards):
            self._attach_qos(shard_id, shard)

        # -- online split / routing epochs (ISSUE 8) ----------------------
        # The cluster ledger's EpochStats belongs exclusively to the map
        # registry (shard run-lifecycle pins live on each shard's own
        # ledger), so "two refcount ops per query" is directly observable.
        self._maps = ShardMapRegistry(
            ShardMap.initial(num_shards), stats=self._qos_io.epochs
        )
        self._retired: Set[int] = set()
        # One lock serializes split *and* merge control flow (queries
        # never take it); at most one migration is in flight at a time.
        self._active_split: Optional[SplitState] = None
        self._active_merge: Optional[MergeState] = None
        self._split_stream: Optional[ShardCopyStream] = None
        self._merge_stream: Optional[ShardCopyStream] = None
        self._split_lock = threading.Lock()
        self._daemons_running = False
        self._daemon_interval = 0.05
        # -- typed scatter-gather pruning counters (ISSUE 10) --------------
        self._scatter_stats: Dict[str, int] = {
            "scatter_queries": 0,
            "shards_considered": 0,
            "shards_contacted": 0,
            "shards_pruned": 0,
        }

    def _attach_qos(self, shard_id: int, shard: WildfireShard) -> None:
        """Wire one shard into the qos stack (no-op without a config)."""
        if self.qos_config is None:
            self._breakers.append(None)
            return
        breaker = CircuitBreaker(
            f"shared/shard{shard_id}",
            self.qos_config.breaker,
            clock=self.sim_now,
            stats=self._qos_io.qos,
        )
        shard.hierarchy.attach_shared_breaker(breaker)
        shard.attach_scheduler(self._scheduler)
        self._scheduler.watch_breaker(breaker)
        self._scheduler.watch_faults(shard.hierarchy.stats.faults)
        self._breakers.append(breaker)

    # -- qos surface -----------------------------------------------------------------

    @property
    def admission(self) -> Optional[AdmissionController]:
        return self._admission

    @property
    def scheduler(self) -> Optional[DaemonScheduler]:
        return self._scheduler

    def breaker(self, shard_id: int) -> Optional[CircuitBreaker]:
        return self._breakers[shard_id]

    def qos_stats(self) -> QosStats:
        """The live cluster qos ledger (admission + breakers + scheduler)."""
        return self._qos_io.qos

    def epoch_stats(self):
        """The live routing-epoch ledger (map pins/publishes/reclaims).

        This is the cluster ledger's :class:`EpochStats` and it belongs
        exclusively to the :class:`ShardMapRegistry`, so "exactly two
        refcount operations per query" is directly observable on it;
        shard run-lifecycle pins are counted on each shard's own ledger.
        """
        return self._qos_io.epochs

    def sim_now(self) -> int:
        """Cluster simulated clock: arrival time + work + queue waits.

        The arrival clock (:meth:`advance_clock`) contributes so that
        idle simulated time also elapses for the circuit breakers: a
        breaker's open window can lapse while the cluster waits for the
        next client batch, not only while it burns work ns.
        """
        arrival = self._admission.now_ns if self._admission is not None else 0
        return (
            arrival
            + self._qos_io.total_sim_ns
            + sum(shard.hierarchy.stats.total_sim_ns for shard in self.shards)
        )

    def advance_clock(self, delta_ns: int) -> None:
        """Advance the admission arrival clock (offered-load time).

        Closed-loop drivers call this between client batches; without a
        qos config it is a no-op so drivers need not special-case."""
        if self._admission is not None:
            self._admission.advance(delta_ns)

    # -- routing --------------------------------------------------------------------

    @property
    def maps(self) -> ShardMapRegistry:
        """The routing-epoch registry (tests and the split controller)."""
        return self._maps

    def routing_epoch(self) -> int:
        return self._maps.epoch

    def live_shard_ids(self) -> List[int]:
        """Shards that still serve (everything not retired by a split)."""
        return [
            shard_id
            for shard_id in range(len(self.shards))
            if shard_id not in self._retired
        ]

    def key_hash(self, sharding_values: Tuple[KeyValue, ...]) -> int:
        return fnv1a64(encode_composite(tuple(sharding_values)))

    def shard_of_row(self, row: Sequence[KeyValue]) -> int:
        values = tuple(row[i] for i in self._shard_positions)
        return self.shard_of_key(values)

    def shard_of_key(self, sharding_values: Tuple[KeyValue, ...]) -> int:
        """Where a new row for this sharding key lands *right now*."""
        return self._maps.current.write_shard(self.key_hash(sharding_values))

    def _bound_sharding_values(
        self,
        equality_values: Sequence[KeyValue],
        sort_values: Sequence[KeyValue],
    ) -> Optional[Tuple[KeyValue, ...]]:
        """Sharding values when the query binds them all, else ``None``."""
        bound: Dict[str, KeyValue] = {}
        for name, value in zip(self._spec_eq, equality_values):
            bound[name] = value
        for name, value in zip(self._spec_sort, sort_values):
            bound[name] = value
        try:
            return tuple(bound[name] for name in self.schema.sharding_key)
        except KeyError:
            return None

    # -- ingestion -------------------------------------------------------------------

    def ingest(self, rows: Sequence[Sequence[KeyValue]]) -> Dict[int, int]:
        """Route rows to shards; returns rows-per-shard for observability.

        Under a qos config the whole batch passes admission control first
        (one token per batch) and its deadline is tracked like a query's.
        """
        if self._admission is None:
            return self._ingest_inner(rows)
        ticket = self._admission.admit()
        start = self.sim_now()
        try:
            return self._ingest_inner(rows)
        finally:
            ticket.finish(self.sim_now() - start)

    def _ingest_inner(
        self, rows: Sequence[Sequence[KeyValue]]
    ) -> Dict[int, int]:
        per_shard: Dict[int, List[Sequence[KeyValue]]] = {}
        # One map pin covers the whole batch: every row of the batch is
        # routed by the same epoch, and a concurrent split's cutover
        # publish happens entirely before or entirely after it.
        with self._maps.pin() as pin:
            for row in rows:
                values = tuple(row[i] for i in self._shard_positions)
                shard_id = pin.map.write_shard(self.key_hash(values))
                per_shard.setdefault(shard_id, []).append(row)
            for shard_id, shard_rows in per_shard.items():
                self.shards[shard_id].ingest(shard_rows)
        return {shard_id: len(rs) for shard_id, rs in per_shard.items()}

    # -- lifecycle --------------------------------------------------------------------

    def _maintenance_skip(self) -> Set[int]:
        """Shards whose lifecycle must not run right now.

        Retired sources stay readable for old-epoch pins but never groom
        again.  A split's successors -- and a merge's target -- are
        frozen until their final publish: grooming there would assign
        ``beginTS`` from a clock that has not yet been handed forward
        from the source(s), which would break the double-read's
        newest-wins comparison.
        """
        skip = set(self._retired)
        state = self._active_split
        if state is not None and state.phase in (
            "pre_copy",
            "migrating",
            "copied",
        ):
            for successor_id in (state.left_id, state.right_id):
                if successor_id >= 0:
                    skip.add(successor_id)
        merge_state = self._active_merge
        if merge_state is not None and merge_state.phase in (
            "pre_copy",
            "merging",
            "copied",
        ):
            if merge_state.target_id >= 0:
                skip.add(merge_state.target_id)
        return skip

    def tick(self) -> None:
        """One lifecycle cycle on every live shard (deterministic driver)."""
        skip = self._maintenance_skip()
        for shard_id, shard in enumerate(self.shards):
            if shard_id not in skip:
                shard.tick()

    def run_cycles(self, cycles: int) -> None:
        for _ in range(cycles):
            self.tick()

    def start_daemons(self, groom_interval_s: float = 0.05) -> None:
        self._daemons_running = True
        self._daemon_interval = groom_interval_s
        skip = self._maintenance_skip()
        for shard_id, shard in enumerate(self.shards):
            if shard_id not in skip and not shard._daemon_threads:
                shard.start_daemons(groom_interval_s=groom_interval_s)

    def stop_daemons(self) -> None:
        self._daemons_running = False
        for shard in self.shards:
            shard.stop_daemons()

    # -- online shard split (ISSUE 8) ---------------------------------------------

    def _check_no_migration(self) -> None:
        if self._active_split is not None:
            raise SplitError(
                f"a split of shard {self._active_split.source_id} is "
                "already in flight; recover it first"
            )
        if self._active_merge is not None:
            raise MergeError(
                f"a merge of shards {self._active_merge.left_id} and "
                f"{self._active_merge.right_id} is already in flight; "
                "recover it first"
            )

    def _begin_split_state(self, shard_id: int) -> SplitState:
        """Validate a split request and park its phase machine."""
        self._check_no_migration()
        if shard_id in self._retired:
            raise SplitError(f"shard {shard_id} is retired")
        # Raises SplitUnsupported (naming the offending indexes) when any
        # index's key columns do not contain the sharding key; shards
        # carrying secondary indexes pass -- every secondary's sort key
        # ends with the primary key, which contains the sharding key.
        index_slicers(self.shards[shard_id], shard_id)
        current = self._maps.current
        slot = next(
            (
                i
                for i, route in enumerate(current.slots)
                if route.state == "single" and route.primary == shard_id
            ),
            None,
        )
        if slot is None:
            raise SplitError(
                f"shard {shard_id} does not solely own a routable slot"
            )
        state = SplitState(source_id=shard_id, slot=slot)
        self._active_split = state
        return state

    def split_shard(self, shard_id: int) -> Dict[str, object]:
        """Split one shard's slot into two successor shards, online.

        Serialized with other migrations; queries never take this lock.
        A :class:`~repro.faults.crash.SimulatedCrash` at any of the four
        ``split.*`` crash points leaves the phase machine parked in
        ``self._active_split`` for :meth:`recover_split`.
        """
        with self._split_lock:
            state = self._begin_split_state(shard_id)
            return self._run_split(state)

    def begin_split(self, shard_id: int) -> Dict[str, object]:
        """Start a *pumped* split: run the write cutover, then return.

        The copy advances in budgeted slices via :meth:`split_step`
        interleaved with live traffic; the double-read window stays open
        (and correct) however long the pump takes.  The end state is
        byte-identical to a synchronous :meth:`split_shard`.
        """
        with self._split_lock:
            state = self._begin_split_state(shard_id)
            self._split_cutover(state)
            return {"epoch": self._maps.epoch, **state.summary()}

    def split_step(self, budget: int = 2048) -> Dict[str, object]:
        """Advance an in-flight split by up to ``budget`` copied pairs.

        Runs the remaining phases (publish + retire) as soon as the copy
        stream drains.  Returns the state summary plus ``pulled`` (pairs
        copied this call); ``phase == "done"`` means the split finished.
        """
        with self._split_lock:
            state = self._active_split
            if state is None:
                raise SplitError("no split is in flight")
            pulled = 0
            if state.phase == "pre_copy":
                self._split_cutover(state)
            elif state.phase == "migrating":
                self._split_prepare(state)
                pulled = self._split_stream.step(budget)
                if self._split_stream.done:
                    self._finish_split_copy(state)
                    result = self._run_split(state)
                    result["pulled"] = pulled
                    return result
            else:
                result = self._run_split(state)
                result["pulled"] = pulled
                return result
            return {
                "epoch": self._maps.epoch,
                "pulled": pulled,
                **state.summary(),
            }

    def recover_split(self) -> Dict[str, object]:
        """Resume (or roll back) a split interrupted by a crash.

        * crash before the write cutover (``split.pre_copy``): nothing
          was published -- discard the state, routing is fully-old;
        * crash anywhere after the cutover: roll *forward* by replaying
          the remaining phases (every copy step is idempotent) until the
          final map is published and the source retired.

        Idempotent: calling with no interrupted split is a no-op.
        """
        with self._split_lock:
            state = self._active_split
            if state is None:
                return {"resumed": False, "epoch": self._maps.epoch}
            if self._split_stream is not None:
                # A partial pump (or a crash mid-stream) left pinned
                # snapshots behind; drop them and replay the idempotent
                # copy from the top.
                self._split_stream.abort()
                self._split_stream = None
            if state.phase == "pre_copy":
                self._active_split = None
                return {
                    "resumed": True,
                    "outcome": "rolled_back",
                    "epoch": self._maps.epoch,
                }
            result = self._run_split(state)
            result["outcome"] = "rolled_forward"
            return result

    def _split_gate(self, state: SplitState) -> None:
        """Backpressure gate: refuse to even start a split under duress.

        Only consulted before the write cutover -- past that point the
        only safe direction is forward, whatever the breakers say.
        """
        if self._scheduler is not None and not self._scheduler.allow_maintenance():
            self._active_split = None
            raise SplitAborted(
                "maintenance backpressure: split refused before cutover"
            )
        breaker = self._breakers[state.source_id]
        if breaker is not None and breaker.state() is BreakerState.OPEN:
            self._active_split = None
            raise SplitAborted(
                f"shard {state.source_id} breaker is open; split refused"
            )

    def _split_cutover(self, state: SplitState) -> None:
        """Phase ``pre_copy`` -> ``migrating``: the write cutover."""
        self._split_gate(state)
        crash_point("split.pre_copy")
        if state.left_id < 0:
            state.left_id = self._new_shard()
            state.right_id = self._new_shard()
        current = self._maps.current
        migrating = current.with_slot(
            state.slot,
            SlotRoute(
                "migrating",
                primary=state.source_id,
                left=state.left_id,
                right=state.right_id,
            ),
            epoch=current.epoch + 1,
        )
        # Write cutover: from this swap on, new rows for the slot land
        # on the successors and every read double-reads.
        old = self._maps.publish(migrating)
        state.migrating_epoch = migrating.epoch
        state.phase = "migrating"
        # No query pinned to the pre-cutover map may still be routing
        # writes to the source once we start draining it.
        self._maps.drain(old.epoch)

    def _split_prepare(self, state: SplitState) -> None:
        """Quiesce, hand the clock forward, adopt blocks, open the stream.

        Idempotent: every sub-step tolerates replay, and the stream is
        only (re)built when none is open -- a pump calls this once per
        step, a crash recovery rebuilds from scratch.
        """
        if self._split_stream is not None:
            return
        source = self.shards[state.source_id]
        left = self.shards[state.left_id]
        right = self.shards[state.right_id]
        # The source stops receiving writes at the cutover: its daemon
        # threads (if any) retire now, and one synchronous quiesce
        # empties its live and groomed zones for good.
        source.stop_daemons()
        state.quiesce_grooms += source.quiesce()["grooms"]
        # Clock handoff: every beginTS the successors will ever assign
        # must sort after every beginTS the source ever assigned, or
        # the double-read's newest-wins comparison lies.
        for successor in (left, right):
            successor.clock.ensure_at_least(*source.clock.state())
            # Ghosted secondary entries travel with the copy: each side
            # inherits the source's tracker so index-only stays
            # disqualified where the source had ghosts (ISSUE 10).
            successor.indexes.adopt_ghost_state((source.indexes,))
        state.copied_blocks += copy_post_groomed_blocks(
            source, (left, right)
        )
        self._split_stream = split_copy_stream(
            source, left, right, index_slicers(source, state.source_id)
        )

    def _finish_split_copy(self, state: SplitState) -> None:
        state.copied_entries += self._split_stream.copied_entries
        self._split_stream = None
        state.phase = "copied"

    def _run_split(self, state: SplitState) -> Dict[str, object]:
        """Advance the split phase machine to completion (resumable)."""
        if state.phase == "pre_copy":
            self._split_cutover(state)

        source = self.shards[state.source_id]
        left = self.shards[state.left_id]
        right = self.shards[state.right_id]

        if state.phase == "migrating":
            self._split_prepare(state)
            self._split_stream.run_all()
            self._finish_split_copy(state)

        if state.phase == "copied":
            crash_point("split.pre_publish")
            current = self._maps.current
            final = current.with_slot(
                state.slot,
                SlotRoute(
                    "split",
                    primary=state.source_id,
                    left=state.left_id,
                    right=state.right_id,
                ),
                epoch=state.migrating_epoch + 1,
            )
            self._maps.publish(final)
            state.final_epoch = final.epoch
            state.phase = "published"
            self._maps.drain(state.migrating_epoch)

        if state.phase == "published":
            crash_point("split.post_publish")
            # Decommission: the source keeps its data (an old-epoch pin may
            # still read it) but never grooms again; the successors start
            # their normal lifecycle, daemons included if the cluster runs
            # them.
            source.stop_daemons()
            source.exit_degraded_mode()
            self._retired.add(state.source_id)
            if self._daemons_running:
                for successor in (left, right):
                    if not successor._daemon_threads:
                        successor.start_daemons(
                            groom_interval_s=self._daemon_interval
                        )
            state.phase = "done"
            self._active_split = None

        return {
            "resumed": True,
            "epoch": self._maps.epoch,
            **state.summary(),
        }

    # -- online shard merge (ISSUE 10) ---------------------------------------------

    def _begin_merge_state(self, left_id: int, right_id: int) -> MergeState:
        """Validate a merge request and park its phase machine."""
        self._check_no_migration()
        for shard_id in (left_id, right_id):
            if shard_id in self._retired:
                raise MergeError(f"shard {shard_id} is retired")
        current = self._maps.current
        slot = next(
            (
                i
                for i, route in enumerate(current.slots)
                if route.state == "split"
                and {route.left, route.right} == {left_id, right_id}
            ),
            None,
        )
        if slot is None:
            raise MergeError(
                f"shards {left_id} and {right_id} are not the two "
                "successors of one split slot"
            )
        route = current.slots[slot]
        state = MergeState(left_id=route.left, right_id=route.right, slot=slot)
        self._active_merge = state
        return state

    def merge_shards(self, left_id: int, right_id: int) -> Dict[str, object]:
        """Fuse a split slot's two successors back into one shard, online.

        The reversed migration: publish a ``merging`` route (fresh
        writes land on the fused target, reads double-read target + old
        successor and keep the newest ``beginTS``), quiesce both
        sources, hand the clock forward to the max of their two HLCs,
        adopt both sides' record blocks verbatim and interleave their
        runs zero-decode, then publish the ``single`` route and retire
        both sources.  A :class:`~repro.faults.crash.SimulatedCrash` at
        any of the four ``merge.*`` crash points leaves the phase
        machine parked in ``self._active_merge`` for
        :meth:`recover_merge`.
        """
        with self._split_lock:
            state = self._begin_merge_state(left_id, right_id)
            return self._run_merge(state)

    def begin_merge(self, left_id: int, right_id: int) -> Dict[str, object]:
        """Start a *pumped* merge: run the write cutover, then return.

        The copy advances in budgeted slices via :meth:`merge_step`; the
        end state is byte-identical to a synchronous
        :meth:`merge_shards`.
        """
        with self._split_lock:
            state = self._begin_merge_state(left_id, right_id)
            self._merge_cutover(state)
            return {"epoch": self._maps.epoch, **state.summary()}

    def merge_step(self, budget: int = 2048) -> Dict[str, object]:
        """Advance an in-flight merge by up to ``budget`` copied pairs."""
        with self._split_lock:
            state = self._active_merge
            if state is None:
                raise MergeError("no merge is in flight")
            pulled = 0
            if state.phase == "pre_copy":
                self._merge_cutover(state)
            elif state.phase == "merging":
                self._merge_prepare(state)
                pulled = self._merge_stream.step(budget)
                if self._merge_stream.done:
                    self._finish_merge_copy(state)
                    result = self._run_merge(state)
                    result["pulled"] = pulled
                    return result
            else:
                result = self._run_merge(state)
                result["pulled"] = pulled
                return result
            return {
                "epoch": self._maps.epoch,
                "pulled": pulled,
                **state.summary(),
            }

    def recover_merge(self) -> Dict[str, object]:
        """Resume (or roll back) a merge interrupted by a crash.

        * crash before the write cutover (``merge.pre_copy``): nothing
          was published -- discard the state, the slot keeps its
          ``split`` route;
        * crash anywhere after the cutover: roll *forward* by replaying
          the remaining phases (block adoption and the run interleave
          are idempotent) until the ``single`` route is published and
          both sources retired.

        Idempotent: calling with no interrupted merge is a no-op.
        """
        with self._split_lock:
            state = self._active_merge
            if state is None:
                return {"resumed": False, "epoch": self._maps.epoch}
            if self._merge_stream is not None:
                self._merge_stream.abort()
                self._merge_stream = None
            if state.phase == "pre_copy":
                self._active_merge = None
                return {
                    "resumed": True,
                    "outcome": "rolled_back",
                    "epoch": self._maps.epoch,
                }
            result = self._run_merge(state)
            result["outcome"] = "rolled_forward"
            return result

    def _merge_gate(self, state: MergeState) -> None:
        """Backpressure gate, mirroring :meth:`_split_gate`."""
        if self._scheduler is not None and not self._scheduler.allow_maintenance():
            self._active_merge = None
            raise MergeAborted(
                "maintenance backpressure: merge refused before cutover"
            )
        for shard_id in (state.left_id, state.right_id):
            breaker = self._breakers[shard_id]
            if breaker is not None and breaker.state() is BreakerState.OPEN:
                self._active_merge = None
                raise MergeAborted(
                    f"shard {shard_id} breaker is open; merge refused"
                )

    def _merge_cutover(self, state: MergeState) -> None:
        """Phase ``pre_copy`` -> ``merging``: the write cutover."""
        self._merge_gate(state)
        crash_point("merge.pre_copy")
        if state.target_id < 0:
            state.target_id = self._new_shard()
        current = self._maps.current
        merging = current.with_slot(
            state.slot,
            SlotRoute(
                "merging",
                primary=state.target_id,
                left=state.left_id,
                right=state.right_id,
            ),
            epoch=current.epoch + 1,
        )
        # Write cutover: from this swap on, new rows for the slot land on
        # the fused target and every read double-reads target + the old
        # successor that owned the key.
        old = self._maps.publish(merging)
        state.merging_epoch = merging.epoch
        state.phase = "merging"
        self._maps.drain(old.epoch)

    def _merge_prepare(self, state: MergeState) -> None:
        """Quiesce both sources, raise the clock, adopt blocks, open the
        stream.  Idempotent, mirroring :meth:`_split_prepare`."""
        if self._merge_stream is not None:
            return
        left = self.shards[state.left_id]
        right = self.shards[state.right_id]
        target = self.shards[state.target_id]
        for source in (left, right):
            source.stop_daemons()
            state.quiesce_grooms += source.quiesce()["grooms"]
            # Clock handoff: component-wise max over both sources, so no
            # beginTS the target ever mints collides with either history.
            target.clock.ensure_at_least(*source.clock.state())
        # Ghost trackers union (disagreements collapse to "unknown",
        # which counts the row's next update as a ghost -- conservative).
        target.indexes.adopt_ghost_state((left.indexes, right.indexes))
        state.copied_blocks += adopt_all_blocks((left, right), target)
        self._merge_stream = merge_copy_stream((left, right), target)

    def _finish_merge_copy(self, state: MergeState) -> None:
        state.copied_entries += self._merge_stream.copied_entries
        self._merge_stream = None
        state.phase = "copied"

    def _run_merge(self, state: MergeState) -> Dict[str, object]:
        """Advance the merge phase machine to completion (resumable)."""
        if state.phase == "pre_copy":
            self._merge_cutover(state)

        target = self.shards[state.target_id]

        if state.phase == "merging":
            self._merge_prepare(state)
            self._merge_stream.run_all()
            self._finish_merge_copy(state)

        if state.phase == "copied":
            crash_point("merge.pre_publish")
            current = self._maps.current
            final = current.with_slot(
                state.slot,
                SlotRoute("single", primary=state.target_id),
                epoch=state.merging_epoch + 1,
            )
            self._maps.publish(final)
            state.final_epoch = final.epoch
            state.phase = "published"
            self._maps.drain(state.merging_epoch)

        if state.phase == "published":
            crash_point("merge.post_publish")
            for source_id in (state.left_id, state.right_id):
                source = self.shards[source_id]
                source.stop_daemons()
                source.exit_degraded_mode()
                self._retired.add(source_id)
            if self._daemons_running and not target._daemon_threads:
                target.start_daemons(groom_interval_s=self._daemon_interval)
            state.phase = "done"
            self._active_merge = None

        return {
            "resumed": True,
            "epoch": self._maps.epoch,
            **state.summary(),
        }

    def _new_shard(self) -> int:
        """Append one fresh, empty shard wired into the qos stack."""
        shard_id = len(self.shards)
        shard = WildfireShard(
            self.schema,
            self.index_spec,
            hierarchy=(
                self._hierarchy_factory(shard_id)
                if self._hierarchy_factory is not None
                else None
            ),
            config=self._config,
        )
        self.shards.append(shard)
        self._attach_qos(shard_id, shard)
        self.num_shards = len(self.shards)
        return shard_id

    # -- queries ----------------------------------------------------------------------

    def point_query(
        self,
        equality_values: Sequence[KeyValue] = (),
        sort_values: Sequence[KeyValue] = (),
        query_ts: Optional[int] = None,
    ) -> Optional[Record]:
        """Routed when the sharding key is bound (it is, for a primary-key
        lookup: the sharding key is a subset of the primary key)."""
        if self._admission is None:
            return self._point_query_inner(
                equality_values, sort_values, query_ts
            )
        ticket = self._admission.admit()
        start = self.sim_now()
        try:
            return self._point_query_inner(
                equality_values, sort_values, query_ts
            )
        finally:
            ticket.finish(self.sim_now() - start)

    def _point_query_inner(
        self,
        equality_values: Sequence[KeyValue],
        sort_values: Sequence[KeyValue],
        query_ts: Optional[int],
    ) -> Optional[Record]:
        with self._maps.pin() as pin:
            values = self._bound_sharding_values(equality_values, sort_values)
            if values is not None:
                return self._routed_point(
                    pin, self.key_hash(values), equality_values, sort_values,
                    query_ts,
                )
            return self._scatter_point(
                pin, equality_values, sort_values, query_ts
            )

    def _routed_point(
        self,
        pin: MapPin,
        key_hash: int,
        equality_values: Sequence[KeyValue],
        sort_values: Sequence[KeyValue],
        query_ts: Optional[int],
    ) -> Optional[Record]:
        route = pin.map.route_of(key_hash)
        reads = route.read_shards(key_hash)
        if len(reads) == 1:
            return self._shard_point_query(
                reads[0],
                equality_values,
                sort_values,
                query_ts,
            )
        # Migration window (split *or* merge): double-read both holders,
        # newest beginTS wins.  The fresh-write holder (a split's
        # successor; a merge's fused target) must answer authoritatively
        # or not at all -- a degraded (snapshot-pinned) answer could
        # silently miss freshly cut-over writes, so its brownouts surface
        # as a typed partial result tagged with the serving epoch instead.
        write_holder = route.write_shard(key_hash)
        best: Optional[Record] = None
        failed: List[int] = []
        cause: Optional[BaseException] = None
        for shard_id in reads:
            allow_degraded = shard_id != write_holder
            try:
                record = self._shard_point_query(
                    shard_id,
                    equality_values,
                    sort_values,
                    query_ts,
                    allow_degraded=allow_degraded,
                )
            except TransientIOError as exc:
                failed.append(shard_id)
                cause = exc
                continue
            if record is not None and (
                best is None or record.begin_ts > best.begin_ts
            ):
                best = record
        if failed:
            raise PartialResultError(
                tuple(failed),
                (best,) if best is not None else (),
                cause,
                epoch=pin.epoch,
            )
        return best

    def _scatter_point(
        self,
        pin: MapPin,
        equality_values: Sequence[KeyValue],
        sort_values: Sequence[KeyValue],
        query_ts: Optional[int],
    ) -> Optional[Record]:
        # Defensive scatter fallback: a failing shard yields a typed
        # partial-result error naming it, never a bare TransientIOError.
        shard_map = pin.map
        fresh = self._fresh_write_holders(shard_map)
        best: Optional[Record] = None
        failed: List[int] = []
        cause: Optional[BaseException] = None
        for scatter_id in shard_map.scatter_shards():
            try:
                record = self._shard_point_query(
                    scatter_id,
                    equality_values,
                    sort_values,
                    query_ts,
                    allow_degraded=scatter_id not in fresh,
                )
            except TransientIOError as exc:
                failed.append(scatter_id)
                cause = exc
                continue
            if record is not None and (
                best is None or record.begin_ts > best.begin_ts
            ):
                best = record
        if failed:
            raise PartialResultError(
                tuple(failed),
                (best,) if best is not None else (),
                cause,
                epoch=pin.epoch,
            )
        return best

    @staticmethod
    def _fresh_write_holders(shard_map: ShardMap) -> Set[int]:
        """Shards holding freshly cut-over writes of an open migration.

        These must answer authoritatively (never degraded): a split's
        two successors during its ``migrating`` window, and a merge's
        fused target during its ``merging`` window.
        """
        holders: Set[int] = set()
        for route in shard_map.slots:
            if route.state == "migrating":
                holders.add(route.left)
                holders.add(route.right)
            elif route.state == "merging":
                holders.add(route.primary)
        return holders

    def _shard_point_query(
        self,
        shard_id: int,
        equality_values: Sequence[KeyValue],
        sort_values: Sequence[KeyValue],
        query_ts: Optional[int],
        allow_degraded: bool = True,
    ) -> Optional[Record]:
        """One shard's point query, with breaker-aware degraded serving."""
        shard = self.shards[shard_id]
        breaker = self._breakers[shard_id]
        if breaker is not None:
            if breaker.state() is BreakerState.OPEN:
                if not allow_degraded:
                    raise StorageBrownout(f"shared/shard{shard_id}", 0)
                return self._degraded_point(
                    shard, equality_values, sort_values, query_ts
                )
            if shard.degraded:
                shard.exit_degraded_mode()
        try:
            return shard.point_query(equality_values, sort_values, query_ts)
        except StorageBrownout:
            if breaker is None or not allow_degraded:
                raise
            # The breaker tripped mid-query: answer from the snapshot pin
            # instead of surfacing the brownout to the client.
            return self._degraded_point(
                shard, equality_values, sort_values, query_ts
            )

    def _degraded_point(
        self,
        shard: WildfireShard,
        equality_values: Sequence[KeyValue],
        sort_values: Sequence[KeyValue],
        query_ts: Optional[int],
    ) -> Optional[Record]:
        shard.enter_degraded_mode()
        self._qos_io.qos.degraded_reads += 1
        return shard.degraded_point_query(
            equality_values, sort_values, query_ts
        )

    def range_query(
        self,
        equality_values: Sequence[KeyValue] = (),
        sort_lower: Optional[Sequence[KeyValue]] = None,
        sort_upper: Optional[Sequence[KeyValue]] = None,
        query_ts: Optional[int] = None,
    ) -> List[IndexEntry]:
        """Routed if the equality columns pin the sharding key; otherwise a
        scatter-gather over every shard with a client-side merge."""
        if self._admission is None:
            return self._range_query_inner(
                equality_values, sort_lower, sort_upper, query_ts
            )
        ticket = self._admission.admit()
        start = self.sim_now()
        try:
            return self._range_query_inner(
                equality_values, sort_lower, sort_upper, query_ts
            )
        finally:
            ticket.finish(self.sim_now() - start)

    def _range_query_inner(
        self,
        equality_values: Sequence[KeyValue],
        sort_lower: Optional[Sequence[KeyValue]],
        sort_upper: Optional[Sequence[KeyValue]],
        query_ts: Optional[int],
    ) -> List[IndexEntry]:
        with self._maps.pin() as pin:
            values = self._bound_sharding_values(equality_values, ())
            if values is not None:
                return self._routed_range(
                    pin,
                    self.key_hash(values),
                    equality_values,
                    sort_lower,
                    sort_upper,
                    query_ts,
                )
            return self._scatter_range(
                pin, equality_values, sort_lower, sort_upper, query_ts
            )

    def _routed_range(
        self,
        pin: MapPin,
        key_hash: int,
        equality_values: Sequence[KeyValue],
        sort_lower: Optional[Sequence[KeyValue]],
        sort_upper: Optional[Sequence[KeyValue]],
        query_ts: Optional[int],
    ) -> List[IndexEntry]:
        route = pin.map.route_of(key_hash)
        reads = route.read_shards(key_hash)
        if len(reads) == 1:
            return self._shard_range_query(
                reads[0],
                equality_values,
                sort_lower,
                sort_upper,
                query_ts,
            )
        write_holder = route.write_shard(key_hash)
        gathered: List[IndexEntry] = []
        failed: List[int] = []
        cause: Optional[BaseException] = None
        for shard_id in reads:
            allow_degraded = shard_id != write_holder
            try:
                gathered.extend(
                    self._shard_range_query(
                        shard_id,
                        equality_values,
                        sort_lower,
                        sort_upper,
                        query_ts,
                        allow_degraded=allow_degraded,
                    )
                )
            except TransientIOError as exc:
                failed.append(shard_id)
                cause = exc
        merged = self._merge_versions(gathered)
        if failed:
            raise PartialResultError(
                tuple(failed), tuple(merged), cause, epoch=pin.epoch
            )
        return merged

    def _scatter_range(
        self,
        pin: MapPin,
        equality_values: Sequence[KeyValue],
        sort_lower: Optional[Sequence[KeyValue]],
        sort_upper: Optional[Sequence[KeyValue]],
        query_ts: Optional[int],
    ) -> List[IndexEntry]:
        shard_map = pin.map
        fresh = self._fresh_write_holders(shard_map)
        gathered: List[IndexEntry] = []
        failed: List[int] = []
        cause: Optional[BaseException] = None
        for scatter_id in shard_map.scatter_shards():
            try:
                gathered.extend(
                    self._shard_range_query(
                        scatter_id,
                        equality_values,
                        sort_lower,
                        sort_upper,
                        query_ts,
                        allow_degraded=scatter_id not in fresh,
                    )
                )
            except TransientIOError as exc:
                # A shard whose retry budget ran out: name it instead of
                # letting a bare TransientIOError escape the gather.
                failed.append(scatter_id)
                cause = exc
        if shard_map.needs_merge():
            gathered = self._merge_versions(gathered)
        else:
            definition = self.shards[0].index.definition
            gathered.sort(key=lambda entry: entry.key_bytes(definition))
        if failed:
            raise PartialResultError(
                tuple(failed), tuple(gathered), cause, epoch=pin.epoch
            )
        return gathered

    def _merge_versions(self, entries: List[IndexEntry]) -> List[IndexEntry]:
        """Client-side double-read merge: newest version per key wins.

        Each shard already returns at most one (newest visible) version
        per key; during a migration window the successor and the source
        may both answer for the same key.  Sorting by the full sort key
        (key bytes + descending-encoded beginTS) groups versions of one
        key newest-first, so keeping the first entry per key drops both
        exact duplicates (copied entries are byte-identical) and stale
        source versions in one pass.
        """
        definition = self.shards[0].index.definition
        entries.sort(key=lambda entry: entry.sort_key(definition))
        merged: List[IndexEntry] = []
        last_key: Optional[bytes] = None
        for entry in entries:
            key = entry.key_bytes(definition)
            if key == last_key:
                continue
            last_key = key
            merged.append(entry)
        return merged

    def _shard_range_query(
        self,
        shard_id: int,
        equality_values: Sequence[KeyValue],
        sort_lower: Optional[Sequence[KeyValue]],
        sort_upper: Optional[Sequence[KeyValue]],
        query_ts: Optional[int],
        allow_degraded: bool = True,
    ) -> List[IndexEntry]:
        shard = self.shards[shard_id]
        breaker = self._breakers[shard_id]
        if breaker is not None:
            if breaker.state() is BreakerState.OPEN:
                if not allow_degraded:
                    raise StorageBrownout(f"shared/shard{shard_id}", 0)
                return self._degraded_range(
                    shard, equality_values, sort_lower, sort_upper, query_ts
                )
            if shard.degraded:
                shard.exit_degraded_mode()
        try:
            return shard.range_query(
                equality_values, sort_lower, sort_upper, query_ts
            )
        except StorageBrownout:
            if breaker is None or not allow_degraded:
                raise
            return self._degraded_range(
                shard, equality_values, sort_lower, sort_upper, query_ts
            )

    def _degraded_range(
        self,
        shard: WildfireShard,
        equality_values: Sequence[KeyValue],
        sort_lower: Optional[Sequence[KeyValue]],
        sort_upper: Optional[Sequence[KeyValue]],
        query_ts: Optional[int],
    ) -> List[IndexEntry]:
        shard.enter_degraded_mode()
        self._qos_io.qos.degraded_reads += 1
        return shard.degraded_range_query(
            equality_values, sort_lower, sort_upper, query_ts
        )

    # -- typed queries through the access-path planner (ISSUE 9) ----------------------

    def query(self, query: Query) -> List[Tuple[KeyValue, ...]]:
        """Planner-routed typed query across the cluster.

        Routed to one slot when the query's equality predicates bind
        every sharding-key column; otherwise a scatter-gather over all
        live shards.  Each shard plans its own access path (its planner
        sees its own statistics), returns ``(pk, beginTS, row)`` tagged
        rows, and the gather merges them newest-beginTS-wins per primary
        key -- exactly what a split-migration double-read needs -- before
        dropping the tags.  Rows come back sorted by (row values,
        primary key), identical to :meth:`WildfireShard.query`.

        Typed queries never serve degraded (snapshot-pinned) answers: a
        browned-out or breaker-open shard is reported in a
        :class:`PartialResultError` naming it, tagged with the serving
        epoch, instead of silently narrowing the result.
        """
        if self._admission is None:
            return self._query_inner(query)
        ticket = self._admission.admit()
        start = self.sim_now()
        try:
            return self._query_inner(query)
        finally:
            ticket.finish(self.sim_now() - start)

    def _query_inner(self, query: Query) -> List[Tuple[KeyValue, ...]]:
        with self._maps.pin() as pin:
            values = self._query_sharding_values(query)
            if values is not None:
                route = pin.map.route_of(self.key_hash(values))
                reads = route.read_shards(self.key_hash(values))
                if len(reads) == 1:
                    tagged = self.shards[reads[0]]._query_tagged(query)
                    return [row for _, _, row in self._merge_tagged([tagged])]
                shard_ids = list(reads)
            else:
                shard_ids = self._prune_scatter(
                    list(pin.map.scatter_shards()), query
                )
            parts: List[
                List[Tuple[Tuple[KeyValue, ...], int, Tuple[KeyValue, ...]]]
            ] = []
            failed: List[int] = []
            cause: Optional[BaseException] = None
            for shard_id in shard_ids:
                try:
                    parts.append(self.shards[shard_id]._query_tagged(query))
                except TransientIOError as exc:
                    failed.append(shard_id)
                    cause = exc
            rows = [row for _, _, row in self._merge_tagged(parts)]
            if failed:
                raise PartialResultError(
                    tuple(failed), tuple(rows), cause, epoch=pin.epoch
                )
            return rows

    def _query_sharding_values(
        self, query: Query
    ) -> Optional[Tuple[KeyValue, ...]]:
        """Sharding values when the query equality-binds them all."""
        bound = dict(query.equalities)
        try:
            return tuple(bound[name] for name in self.schema.sharding_key)
        except KeyError:
            return None

    def scatter_stats(self) -> Dict[str, int]:
        """Typed scatter-gather pruning counters (ISSUE 10)."""
        return dict(self._scatter_stats)

    def _prune_scatter(
        self, shard_ids: List[int], query: Query
    ) -> List[int]:
        """Drop shards whose synopses prove the query cannot match there.

        Every row version a typed query can return has an entry in every
        index of its shard (they are built from the same records in the
        same publication), so if the query's bound on a column is
        disjoint from the shard's observed key range for that column in
        *any* index, the shard provably returns no rows and contacting
        it is pure fan-out cost.  Decisions read the same
        version-seq-cached synopses the shard's own planner uses, so a
        pruned shard is exactly one whose current version would have
        answered with zero rows.
        """
        self._scatter_stats["scatter_queries"] += 1
        self._scatter_stats["shards_considered"] += len(shard_ids)
        kept: List[int] = []
        for shard_id in shard_ids:
            if self._shard_prunable(shard_id, query):
                self._scatter_stats["shards_pruned"] += 1
            else:
                kept.append(shard_id)
        self._scatter_stats["shards_contacted"] += len(kept)
        return kept

    def _shard_prunable(self, shard_id: int, query: Query) -> bool:
        shard = self.shards[shard_id]
        bounds: Dict[str, Tuple[Optional[KeyValue], Optional[KeyValue]]] = {
            column: (value, value) for column, value in query.equalities
        }
        for column, low, high in query.ranges:
            bounds[column] = (low, high)
        for shard_index in shard.indexes.all():
            synopsis = shard.synopses.synopsis(shard_index.name)
            if (
                shard_index.name == PRIMARY_INDEX_NAME
                and synopsis.entry_count == 0
            ):
                # No groomed records at all: typed plans (which execute
                # over index runs) cannot produce a row from this shard.
                return True
            if synopsis.entry_count == 0:
                continue
            key_specs = shard_index.index.definition.key_columns
            for position, spec in enumerate(key_specs):
                bound = bounds.get(spec.name)
                if bound is None or position >= len(synopsis.key_ranges):
                    continue
                column_range = synopsis.key_ranges[position]
                if column_range is None:
                    continue
                low, high = bound
                try:
                    if low is not None and low > column_range.max_value:
                        return True
                    if high is not None and high < column_range.min_value:
                        return True
                except TypeError:
                    continue
        return False

    @staticmethod
    def _merge_tagged(
        parts: Sequence[
            Sequence[Tuple[Tuple[KeyValue, ...], int, Tuple[KeyValue, ...]]]
        ],
    ) -> List[Tuple[Tuple[KeyValue, ...], int, Tuple[KeyValue, ...]]]:
        """Newest-beginTS-wins per primary key, then the output sort.

        Each shard already deduplicated its own versions; across shards
        a migration window's double-read may answer the same key from
        both the source and a successor (copied rows tie on beginTS and
        are identical; post-cutover writes win by a larger beginTS).
        """
        best: Dict[
            Tuple[KeyValue, ...], Tuple[int, Tuple[KeyValue, ...]]
        ] = {}
        for part in parts:
            for pk, begin_ts, row in part:
                held = best.get(pk)
                if held is None or begin_ts > held[0]:
                    best[pk] = (begin_ts, row)
        return sorted(
            ((pk, ts, row) for pk, (ts, row) in best.items()),
            key=lambda item: (item[2], item[0]),
        )

    # -- observability ----------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Cluster stats with a *complete* ledger rollup (ISSUE 8).

        ``io`` folds the cluster's own ledger plus every shard's hierarchy
        ledger through :meth:`~repro.storage.metrics.IOStats.merge`, so
        sub-ledger counters (per-intent cache paths, fault/retry counts,
        epoch lifecycle, decode work) aggregate instead of being dropped
        like the old top-level-only summation did.  ``total_entries``
        counts live shards only: a retired source's copied entries would
        otherwise be double-counted.
        """
        per_shard = [shard.stats() for shard in self.shards]
        merged = IOStats()
        merged.merge(self._qos_io)
        for shard in self.shards:
            merged.merge(shard.hierarchy.stats)
        live = self.live_shard_ids()
        return {
            "num_shards": len(live),
            "routing_epoch": self._maps.epoch,
            "retired_shards": sorted(self._retired),
            "total_entries": sum(
                per_shard[i]["index"].total_entries for i in live  # type: ignore[index]
            ),
            "per_shard": per_shard,
            "qos": merged.qos.snapshot(),
            "scatter": self.scatter_stats(),
            "io": merged,
        }

    def crash_and_recover_shard(self, shard_id: int):
        """Crash one shard's node; the rest keep serving (independence)."""
        shard = self.shards[shard_id]
        # A degraded-mode pin references pre-crash run objects; drop it
        # before the local tiers are wiped and the run lists rebuilt.
        shard.exit_degraded_mode()
        return shard.crash_and_recover()


__all__ = ["ADMISSION_TIER", "ShardedTable"]
