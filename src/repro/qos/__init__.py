"""Overload protection for cluster serving (ISSUE 7).

Three cooperating mechanisms, all on the simulated clock:

* :mod:`repro.qos.admission` -- token-bucket admission control with
  per-query deadlines in front of the cluster serving path.
* :mod:`repro.qos.scheduler` -- maintenance backpressure: a hysteresis
  gate that throttles groom/merge/evolve when query load spikes.
* :mod:`repro.qos.breaker` -- per-tier circuit breakers that fail fast
  during storage brownouts so queries can degrade to local tiers instead
  of burning retry budgets.

Everything lands on the :class:`~repro.storage.metrics.QosStats` ledger
(``IOStats.qos``), so protection is counter-asserted, not hoped for.
"""

from repro.qos.admission import AdmissionController, AdmissionTicket, QosConfig
from repro.qos.breaker import BreakerConfig, BreakerState, CircuitBreaker
from repro.qos.errors import (
    DeadlineExceeded,
    Overloaded,
    PartialResultError,
    QosError,
)
from repro.qos.scheduler import DaemonScheduler

__all__ = [
    "AdmissionController",
    "AdmissionTicket",
    "BreakerConfig",
    "BreakerState",
    "CircuitBreaker",
    "DaemonScheduler",
    "DeadlineExceeded",
    "Overloaded",
    "PartialResultError",
    "QosConfig",
    "QosError",
]
