"""Token-bucket admission control with per-query deadlines (ISSUE 7).

The controller sits in front of the cluster serving path
(``ShardedTable.point_query``/``range_query``/``ingest``) and decides, for
every arriving operation, one of three outcomes:

* **admit immediately** -- a token is available; the op runs now.
* **admit after queueing** -- the bucket is in deficit; the op is booked
  against future tokens and charged a deterministic simulated queueing
  delay (``queue_sim_ns`` on the :class:`~repro.storage.metrics.QosStats`
  ledger).  The bucket's token count goes negative, which *is* the queue:
  later arrivals see a deeper deficit and longer projected waits.
* **shed** -- the projected wait exceeds ``max_queue_ns``
  (:class:`~repro.qos.errors.Overloaded`) or the op's deadline
  (:class:`~repro.qos.errors.DeadlineExceeded`).  Nothing is charged; the
  refusal costs nothing, which is the point.

Time is split across two deterministic clocks.  The **arrival clock**
models offered load: the closed-loop driver calls :meth:`advance` to say
"this much simulated time passed between client requests", and tokens
refill against it.  The **work clock** (the shards' charged simulated
nanoseconds) measures how long an admitted query actually took;
:meth:`AdmissionTicket.finish` compares queueing + work time against the
deadline and counts late completions as ``deadline_misses``.  Neither
clock ever reads wall time, so every admit/shed decision replays
identically from the same seed and schedule.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.qos.breaker import BreakerConfig
from repro.qos.errors import DeadlineExceeded, Overloaded
from repro.storage.metrics import QosStats


@dataclass(frozen=True)
class QosConfig:
    """Cluster overload-protection knobs (all times simulated ns).

    The defaults are calibrated against the simulated tier latencies
    (SSD read 80us, shared read 2ms): ``rate_per_sim_s`` of 20k ops/s
    means one token per 50us -- comfortable for cache-hit traffic,
    saturated the moment queries start missing to shared storage.
    """

    rate_per_sim_s: float = 20_000.0
    burst: float = 32.0
    max_queue_ns: int = 20_000_000  # 20 simulated ms of booked backlog
    deadline_ns: int = 50_000_000  # 50 simulated ms per query
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    # DaemonScheduler hysteresis: throttle maintenance when the admission
    # backlog crosses high_water_ns, release only after it has stayed
    # below low_water_ns (with no retry pressure) for release_after
    # consecutive gate checks.
    high_water_ns: int = 4_000_000
    low_water_ns: int = 500_000
    release_after: int = 2
    retry_delta_threshold: int = 1

    def __post_init__(self) -> None:
        if self.rate_per_sim_s <= 0:
            raise ValueError("rate_per_sim_s must be positive")
        if self.burst < 1:
            raise ValueError("burst must be >= 1")
        if self.max_queue_ns < 0 or self.deadline_ns <= 0:
            raise ValueError("queue/deadline bounds must be positive")

    @property
    def rate_per_ns(self) -> float:
        return self.rate_per_sim_s / 1_000_000_000.0


class AdmissionTicket:
    """One admitted operation's deadline bookkeeping."""

    def __init__(
        self, controller: "AdmissionController", queued_ns: int, deadline_ns: int
    ) -> None:
        self._controller = controller
        self.queued_ns = queued_ns
        self.deadline_ns = deadline_ns
        self._finished = False

    def finish(self, work_ns: int) -> bool:
        """Complete the op after ``work_ns`` simulated ns of shard work.

        Returns True when the op met its deadline (queueing included);
        a late completion bumps ``deadline_misses`` exactly once.
        """
        if self._finished:
            return True
        self._finished = True
        met = self.queued_ns + work_ns <= self.deadline_ns
        if not met:
            self._controller.stats.deadline_misses += 1
        return met


class AdmissionController:
    """Deterministic token bucket over the simulated arrival clock."""

    def __init__(
        self,
        config: QosConfig,
        stats: Optional[QosStats] = None,
        charge: Optional[Callable[[int], None]] = None,
    ) -> None:
        self.config = config
        self.stats = stats if stats is not None else QosStats()
        self._charge = charge
        self._lock = threading.Lock()
        self._now_ns = 0
        self._last_refill_ns = 0
        self._tokens = float(config.burst)

    def advance(self, delta_ns: int) -> None:
        """Advance the arrival clock: ``delta_ns`` of offered-load time."""
        if delta_ns < 0:
            raise ValueError("cannot advance the arrival clock backwards")
        with self._lock:
            self._now_ns += delta_ns

    @property
    def now_ns(self) -> int:
        with self._lock:
            return self._now_ns

    def backlog_ns(self) -> int:
        """Projected queueing delay for the next arrival (the queue depth
        signal the :class:`~repro.qos.scheduler.DaemonScheduler` watches)."""
        with self._lock:
            self._refill_locked()
            deficit = max(0.0, 1.0 - self._tokens)
            return int(deficit / self.config.rate_per_ns)

    def _refill_locked(self) -> None:
        elapsed = self._now_ns - self._last_refill_ns
        if elapsed > 0:
            self._tokens = min(
                float(self.config.burst),
                self._tokens + elapsed * self.config.rate_per_ns,
            )
            self._last_refill_ns = self._now_ns

    def admit(
        self, cost: float = 1.0, deadline_ns: Optional[int] = None
    ) -> AdmissionTicket:
        """Admit one operation or shed it with a typed error."""
        if deadline_ns is None:
            deadline_ns = self.config.deadline_ns
        with self._lock:
            self._refill_locked()
            if self._tokens >= cost:
                self._tokens -= cost
                self.stats.admitted += 1
                return AdmissionTicket(self, 0, deadline_ns)
            wait_ns = int((cost - self._tokens) / self.config.rate_per_ns)
            if wait_ns > self.config.max_queue_ns:
                self.stats.shed += 1
                raise Overloaded(wait_ns)
            if wait_ns > deadline_ns:
                self.stats.shed += 1
                self.stats.deadline_misses += 1
                raise DeadlineExceeded(deadline_ns, wait_ns)
            # Book the op against future tokens: the bucket goes negative,
            # deepening the queue the next arrival sees.
            self._tokens -= cost
            self.stats.admitted += 1
            self.stats.queue_sim_ns += wait_ns
        if self._charge is not None and wait_ns > 0:
            self._charge(wait_ns)
        return AdmissionTicket(self, wait_ns, deadline_ns)


__all__ = ["AdmissionController", "AdmissionTicket", "QosConfig"]
