"""Typed errors for the overload-protection layer (ISSUE 7).

Shedding is not failure: a shed query was *refused*, cheaply and
deliberately, so the queries that were admitted could finish on time.
These exceptions make the refusal typed -- callers can distinguish "the
cluster is protecting itself" (:class:`Overloaded`,
:class:`DeadlineExceeded`) from "a shard actually broke"
(:class:`PartialResultError`) and react accordingly (back off, retry
later, accept the partial answer).
"""

from __future__ import annotations

from typing import Optional, Tuple


class QosError(Exception):
    """Base class for admission-control and deadline errors."""


class Overloaded(QosError):
    """The admission queue is full: the query was shed at the front door.

    ``retry_after_ns`` is the simulated delay after which the token bucket
    would have capacity again -- the value a real server would put in a
    ``Retry-After`` header.
    """

    def __init__(self, retry_after_ns: int) -> None:
        super().__init__(
            f"admission queue full; retry after {retry_after_ns} simulated ns"
        )
        self.retry_after_ns = retry_after_ns


class DeadlineExceeded(QosError):
    """The query could not (or did not) finish within its deadline.

    Raised at admission time when the projected queueing delay alone
    already exceeds the deadline -- doing the work would only waste
    capacity on an answer the client has stopped waiting for.
    """

    def __init__(self, deadline_ns: int, projected_ns: int) -> None:
        super().__init__(
            f"deadline {deadline_ns}ns exceeded "
            f"(projected {projected_ns}ns)"
        )
        self.deadline_ns = deadline_ns
        self.projected_ns = projected_ns


class PartialResultError(QosError):
    """A scatter-gather query lost one or more shards to a storage giveup.

    Carries the surviving shards' rows (``partial``) and the identities of
    the shards whose :class:`~repro.storage.retry.RetryPolicy` budget ran
    out (``failed_shards``), instead of propagating a bare
    ``TransientIOError`` that names no shard at all.

    ``epoch`` (ISSUE 8) tags the routing epoch the query was served
    under: during an online shard split a partial answer is only
    interpretable relative to the :class:`~repro.wildfire.shardmap
    .ShardMap` that decided which shards were consulted, so the serving
    epoch travels with the error.  ``None`` when no routing epochs are in
    play (single-table callers).
    """

    def __init__(
        self,
        failed_shards: Tuple[int, ...],
        partial: Tuple[object, ...] = (),
        cause: Optional[BaseException] = None,
        epoch: Optional[int] = None,
    ) -> None:
        shards = ", ".join(str(s) for s in failed_shards)
        suffix = f" (routing epoch {epoch})" if epoch is not None else ""
        super().__init__(
            f"shard(s) {shards} unavailable after retry giveup; "
            f"{len(partial)} partial row(s) gathered{suffix}"
        )
        self.failed_shards = failed_shards
        self.partial = partial
        self.cause = cause
        self.epoch = epoch


__all__ = [
    "DeadlineExceeded",
    "Overloaded",
    "PartialResultError",
    "QosError",
]
