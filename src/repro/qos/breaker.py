"""Per-tier circuit breaker on the simulated clock (ISSUE 7).

The :class:`~repro.storage.retry.RetryPolicy` handles *isolated* transient
errors well: back off, retry, succeed.  During a storage brownout --
a sustained window of elevated error rates -- retrying is actively
harmful: every query burns its full retry budget (and its caller's
deadline) against a tier that is known to be failing.  The classic remedy
is a circuit breaker:

* **CLOSED** -- normal operation; consecutive failures are counted.
* **OPEN** -- after ``failure_threshold`` consecutive failures the breaker
  trips: every operation fails fast with
  :class:`~repro.storage.retry.StorageBrownout` without touching the
  tier, for ``open_ns`` simulated nanoseconds.
* **HALF_OPEN** -- after the open window the next operations are let
  through as *probes*; ``probe_successes`` consecutive successes close
  the breaker, any failure re-opens it.

All timing runs on a caller-supplied simulated clock (a ``() -> int``
nanosecond callable), so breaker decisions are deterministic and
reproducible from the fault plan's seed.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass
from typing import Callable, Optional

from repro.storage.metrics import QosStats
from repro.storage.retry import StorageBrownout


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerConfig:
    """Trip/recovery thresholds for one tier's circuit breaker.

    ``failure_threshold`` is deliberately set *below* the default
    :class:`~repro.storage.retry.RetryPolicy` ``max_attempts`` (3 < 4): a
    brownout burst long enough to exhaust the retry budget trips the
    breaker *mid-loop*, so the operation surfaces as a typed
    ``StorageBrownout`` (degradable) rather than a bare retry giveup.
    """

    failure_threshold: int = 3
    open_ns: int = 50_000_000  # 50 simulated ms; ~ a brownout breather
    probe_successes: int = 2

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.open_ns < 0:
            raise ValueError("open_ns must be non-negative")
        if self.probe_successes < 1:
            raise ValueError("probe_successes must be >= 1")


class CircuitBreaker:
    """Thread-safe closed/open/half-open breaker for one storage tier."""

    def __init__(
        self,
        tier: str,
        config: BreakerConfig,
        clock: Callable[[], int],
        stats: Optional[QosStats] = None,
    ) -> None:
        self.tier = tier
        self.config = config
        self._clock = clock
        self._stats = stats if stats is not None else QosStats()
        self._lock = threading.Lock()
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at_ns = 0
        self._probe_successes = 0

    @property
    def stats(self) -> QosStats:
        return self._stats

    def state(self) -> BreakerState:
        """Current state, applying the lazy OPEN -> HALF_OPEN transition."""
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> BreakerState:
        if (
            self._state is BreakerState.OPEN
            and self._clock() >= self._opened_at_ns + self.config.open_ns
        ):
            self._state = BreakerState.HALF_OPEN
            self._probe_successes = 0
        return self._state

    def check(self) -> None:
        """Raise :class:`StorageBrownout` if operations must fail fast.

        CLOSED lets everything through; HALF_OPEN lets operations through
        as probes (counted); OPEN fails fast without touching the tier.
        """
        with self._lock:
            state = self._state_locked()
            if state is BreakerState.OPEN:
                self._stats.breaker_fast_fails += 1
                raise StorageBrownout(
                    self.tier, self._opened_at_ns + self.config.open_ns
                )
            if state is BreakerState.HALF_OPEN:
                self._stats.breaker_probes += 1

    def record_success(self) -> None:
        with self._lock:
            state = self._state_locked()
            if state is BreakerState.HALF_OPEN:
                self._probe_successes += 1
                if self._probe_successes >= self.config.probe_successes:
                    self._state = BreakerState.CLOSED
                    self._consecutive_failures = 0
                    self._stats.breaker_closes += 1
            elif state is BreakerState.CLOSED:
                self._consecutive_failures = 0

    def record_failure(self) -> None:
        with self._lock:
            state = self._state_locked()
            if state is BreakerState.HALF_OPEN:
                self._trip_locked()
            elif state is BreakerState.CLOSED:
                self._consecutive_failures += 1
                if self._consecutive_failures >= self.config.failure_threshold:
                    self._trip_locked()

    def _trip_locked(self) -> None:
        self._state = BreakerState.OPEN
        self._opened_at_ns = self._clock()
        self._consecutive_failures = 0
        self._probe_successes = 0
        self._stats.breaker_opens += 1


__all__ = ["BreakerConfig", "BreakerState", "CircuitBreaker"]
