"""Maintenance backpressure: the cluster-wide daemon scheduler (ISSUE 7).

Groom, post-groom, evolve, and within-zone merges all compete with
queries for the same storage hierarchy.  Under a query spike the right
move is to *stop doing maintenance*: every groom cycle deferred is
shared-tier bandwidth handed back to the serving path.  The scheduler is
a single hysteresis gate that every maintenance loop consults before
doing a unit of work:

* **throttle** when the admission backlog crosses ``high_water_ns``, when
  any watched circuit breaker is open (the tier is browning out -- writes
  would only feed the failure), or when the watched fault ledgers show
  fresh retry pressure since the last check.
* **release** only after the backlog has stayed below ``low_water_ns``
  with no breaker open and no new retries for ``release_after``
  consecutive gate checks -- hysteresis, so maintenance does not flap at
  the boundary.

Every decision lands on the :class:`~repro.storage.metrics.QosStats`
ledger (``maintenance_cycles`` / ``maintenance_throttled`` /
``throttle_events`` / ``throttle_releases``), which is what lets the A13
bench *prove* that maintenance dropped under load and recovered after.
"""

from __future__ import annotations

import threading
from typing import List, Optional

from repro.qos.admission import AdmissionController, QosConfig
from repro.qos.breaker import BreakerState, CircuitBreaker
from repro.storage.metrics import FaultStats, QosStats


class DaemonScheduler:
    """Hysteresis gate between query pressure and maintenance work."""

    def __init__(
        self,
        config: QosConfig,
        stats: Optional[QosStats] = None,
        admission: Optional[AdmissionController] = None,
    ) -> None:
        self.config = config
        self.stats = stats if stats is not None else QosStats()
        self._admission = admission
        self._lock = threading.Lock()
        self._breakers: List[CircuitBreaker] = []
        self._fault_ledgers: List[FaultStats] = []
        self._throttled = False
        self._calm_streak = 0
        self._last_retries = 0

    def watch_breaker(self, breaker: CircuitBreaker) -> None:
        with self._lock:
            self._breakers.append(breaker)

    def watch_faults(self, faults: FaultStats) -> None:
        with self._lock:
            self._fault_ledgers.append(faults)

    @property
    def throttled(self) -> bool:
        with self._lock:
            return self._throttled

    def allow_maintenance(self) -> bool:
        """Gate one unit of maintenance work.  Counts every decision."""
        backlog = self._admission.backlog_ns() if self._admission else 0
        with self._lock:
            breaker_open = any(
                b.state() is BreakerState.OPEN for b in self._breakers
            )
            retries_now = sum(f.retries for f in self._fault_ledgers)
            retry_delta = retries_now - self._last_retries
            self._last_retries = retries_now
            pressured = (
                backlog >= self.config.high_water_ns
                or breaker_open
                or retry_delta >= self.config.retry_delta_threshold
            )
            if not self._throttled:
                if pressured:
                    self._throttled = True
                    self._calm_streak = 0
                    self.stats.throttle_events += 1
                    self.stats.maintenance_throttled += 1
                    return False
                self.stats.maintenance_cycles += 1
                return True
            # Throttled: require sustained calm before releasing.
            calm = (
                backlog <= self.config.low_water_ns
                and not breaker_open
                and retry_delta == 0
            )
            if calm:
                self._calm_streak += 1
                if self._calm_streak >= self.config.release_after:
                    self._throttled = False
                    self._calm_streak = 0
                    self.stats.throttle_releases += 1
                    self.stats.maintenance_cycles += 1
                    return True
            else:
                self._calm_streak = 0
            self.stats.maintenance_throttled += 1
            return False


__all__ = ["DaemonScheduler"]
