"""The memory tier: unbounded, cheapest, supports everything.

In the paper, runs in non-persisted levels live only in memory (optionally
spilling to SSD), and memory also serves as the hottest cache layer.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional

from repro.storage.block import Block, BlockId
from repro.storage.metrics import IOStats
from repro.storage.tier import LatencyModel, StorageTier, TierName

DEFAULT_MEMORY_READ = LatencyModel(fixed_ns=100, per_byte_ns=0.01)
DEFAULT_MEMORY_WRITE = LatencyModel(fixed_ns=100, per_byte_ns=0.01)


class MemoryTier(StorageTier):
    """Dictionary-backed block store with DRAM-like simulated latency."""

    def __init__(
        self,
        stats: Optional[IOStats] = None,
        read_latency: LatencyModel = DEFAULT_MEMORY_READ,
        write_latency: LatencyModel = DEFAULT_MEMORY_WRITE,
    ) -> None:
        super().__init__(TierName.MEMORY, read_latency, write_latency, stats)
        self._blocks: Dict[BlockId, Block] = {}
        self._lock = threading.Lock()

    def write(self, block: Block) -> None:
        with self._lock:
            self._blocks[block.block_id] = block
        self._charge_write(block.size)

    def read(self, block_id: BlockId) -> Optional[Block]:
        with self._lock:
            block = self._blocks.get(block_id)
        if block is not None:
            self._charge_read(block.size)
        return block

    def delete(self, block_id: BlockId) -> bool:
        with self._lock:
            present = self._blocks.pop(block_id, None) is not None
        if present:
            self._charge_delete()
        return present

    def contains(self, block_id: BlockId) -> bool:
        with self._lock:
            return block_id in self._blocks

    def block_ids(self) -> Iterable[BlockId]:
        with self._lock:
            return list(self._blocks.keys())

    @property
    def used_bytes(self) -> int:
        with self._lock:
            return sum(b.size for b in self._blocks.values())

    def namespaces(self) -> List[str]:
        with self._lock:
            return sorted({bid.namespace for bid in self._blocks})
