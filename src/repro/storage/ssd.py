"""The SSD cache tier: capacity-bounded block store.

Stands in for the Intel 750 NVMe SSD of the paper's testbed.  Umzi's cache
manager (section 6.2) decides *which runs* live here -- this tier only
enforces capacity and reports pressure; it never evicts behind the cache
manager's back.  That mirrors the paper, where purge/load decisions are
level-based policy, not device-level LRU.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, Optional

from repro.storage.block import Block, BlockId
from repro.storage.metrics import IOStats
from repro.storage.tier import LatencyModel, StorageTier, TierName

DEFAULT_SSD_READ = LatencyModel(fixed_ns=80_000, per_byte_ns=0.4)
DEFAULT_SSD_WRITE = LatencyModel(fixed_ns=100_000, per_byte_ns=0.6)


class SSDCapacityError(RuntimeError):
    """Raised when a write would exceed the configured SSD capacity."""


class SSDTier(StorageTier):
    """Capacity-bounded block store with NVMe-like simulated latency.

    ``capacity_bytes=None`` means unbounded (the default for unit tests and
    microbenchmarks; end-to-end purge experiments set a budget).
    """

    def __init__(
        self,
        capacity_bytes: Optional[int] = None,
        stats: Optional[IOStats] = None,
        read_latency: LatencyModel = DEFAULT_SSD_READ,
        write_latency: LatencyModel = DEFAULT_SSD_WRITE,
    ) -> None:
        super().__init__(TierName.SSD, read_latency, write_latency, stats)
        self.capacity_bytes = capacity_bytes
        self._blocks: Dict[BlockId, Block] = {}
        self._used = 0
        self._lock = threading.Lock()

    def write(self, block: Block) -> None:
        with self._lock:
            previous = self._blocks.get(block.block_id)
            delta = block.size - (previous.size if previous is not None else 0)
            if self.capacity_bytes is not None and self._used + delta > self.capacity_bytes:
                raise SSDCapacityError(
                    f"SSD capacity {self.capacity_bytes}B exceeded writing "
                    f"{block.block_id} ({block.size}B; used {self._used}B)"
                )
            self._blocks[block.block_id] = block
            self._used += delta
        self._charge_write(block.size)

    def read(self, block_id: BlockId) -> Optional[Block]:
        with self._lock:
            block = self._blocks.get(block_id)
        if block is not None:
            self._charge_read(block.size)
        return block

    def delete(self, block_id: BlockId) -> bool:
        with self._lock:
            block = self._blocks.pop(block_id, None)
            if block is not None:
                self._used -= block.size
        if block is not None:
            self._charge_delete()
        return block is not None

    def contains(self, block_id: BlockId) -> bool:
        with self._lock:
            return block_id in self._blocks

    def block_ids(self) -> Iterable[BlockId]:
        with self._lock:
            return list(self._blocks.keys())

    @property
    def used_bytes(self) -> int:
        with self._lock:
            return self._used

    @property
    def free_bytes(self) -> Optional[int]:
        """Remaining capacity, or ``None`` when unbounded."""
        if self.capacity_bytes is None:
            return None
        with self._lock:
            return self.capacity_bytes - self._used

    def utilization(self) -> float:
        """Fraction of capacity in use (0.0 when unbounded)."""
        if self.capacity_bytes is None or self.capacity_bytes == 0:
            return 0.0
        with self._lock:
            return self._used / self.capacity_bytes

    def would_fit(self, nbytes: int) -> bool:
        """Check whether ``nbytes`` more would fit without writing."""
        if self.capacity_bytes is None:
            return True
        with self._lock:
            return self._used + nbytes <= self.capacity_bytes
