"""Storage tier interface and latency models.

Each tier charges deterministic simulated nanoseconds per operation to an
:class:`~repro.storage.metrics.IOStats` ledger.  Latency = fixed seek cost
plus a per-byte transfer cost -- the standard first-order model for both
local devices and network storage, and enough to reproduce the paper's
relative-cost structure (shared storage >> SSD >> memory).
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.storage.block import Block, BlockId
from repro.storage.metrics import IOStats


class TierName(str, enum.Enum):
    """Canonical tier names used in I/O accounting."""

    MEMORY = "memory"
    SSD = "ssd"
    SHARED = "shared"


@dataclass(frozen=True)
class LatencyModel:
    """Deterministic cost model: ``fixed_ns + per_byte_ns * nbytes``.

    Defaults for each tier live on the tier classes; they are chosen to
    reproduce the orders-of-magnitude gaps of the paper's testbed (DRAM ~
    100ns, NVMe SSD ~ 100us per block, networked shared storage ~ ms).
    """

    fixed_ns: int
    per_byte_ns: float = 0.0

    def cost(self, nbytes: int) -> int:
        return int(self.fixed_ns + self.per_byte_ns * nbytes)


class StorageTier(abc.ABC):
    """Abstract block store charging simulated latency per operation."""

    name: TierName

    def __init__(
        self,
        name: TierName,
        read_latency: LatencyModel,
        write_latency: LatencyModel,
        stats: Optional[IOStats] = None,
    ) -> None:
        self.name = name
        self._read_latency = read_latency
        self._write_latency = write_latency
        self.stats = stats if stats is not None else IOStats()

    # -- accounting helpers -------------------------------------------------

    def _charge_read(self, nbytes: int) -> None:
        self.stats.record_read(self.name.value, nbytes, self._read_latency.cost(nbytes))

    def _charge_write(self, nbytes: int) -> None:
        self.stats.record_write(
            self.name.value, nbytes, self._write_latency.cost(nbytes)
        )

    def _charge_delete(self) -> None:
        self.stats.record_delete(self.name.value, self._write_latency.cost(0))

    # -- the tier interface -------------------------------------------------

    @abc.abstractmethod
    def write(self, block: Block) -> None:
        """Store a block (overwriting semantics depend on the tier)."""

    @abc.abstractmethod
    def read(self, block_id: BlockId) -> Optional[Block]:
        """Return the block or ``None`` if not present in this tier."""

    @abc.abstractmethod
    def delete(self, block_id: BlockId) -> bool:
        """Remove a block; return whether it was present."""

    @abc.abstractmethod
    def contains(self, block_id: BlockId) -> bool:
        """Membership test.  Does *not* charge I/O (metadata is in memory)."""

    @abc.abstractmethod
    def block_ids(self) -> Iterable[BlockId]:
        """Iterate over all block ids stored in this tier."""

    def delete_namespace(self, namespace: str) -> int:
        """Delete every block of one logical object; return count removed."""
        doomed = [bid for bid in list(self.block_ids()) if bid.namespace == namespace]
        for bid in doomed:
            self.delete(bid)
        return len(doomed)
