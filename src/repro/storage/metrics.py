"""I/O accounting for the simulated storage tiers.

The paper cannot report absolute numbers (Wildfire is product code), and
neither can a pure-Python reproduction hope to match a 28-core Xeon with an
NVMe SSD.  What *can* be reproduced exactly is the relative cost structure:
shared storage is orders of magnitude more expensive than the SSD cache,
which is more expensive than memory.  Every tier operation charges a
deterministic number of simulated nanoseconds here, and the benchmark
harness reports normalized simulated costs -- the same normalization the
paper uses.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field, fields
from typing import Dict


class ReadIntent(enum.Enum):
    """Why a block is being read -- the cache-admission signal.

    ``QUERY`` reads serve user-facing lookups and scans: on a shared-storage
    miss the block is promoted into the SSD cache so future queries hit
    locally (the paper's block-basis transfer).  ``MAINTENANCE`` reads come
    from background machinery -- streaming evolve, within-zone merges, the
    post-groomer's groomed-block scans, crash-recovery validation -- that
    touches each block once and never again; admitting those blocks would
    only displace query-hot data from a bounded cache (classic scan
    thrashing).  Under the default ``maintenance_read_mode="intent"``
    policy, MAINTENANCE reads never promote into the memory or SSD tiers;
    the ``"legacy"`` ablation mode restores promote-everything behaviour.
    """

    QUERY = "query"
    MAINTENANCE = "maintenance"


@dataclass
class IntentStats:
    """Per-:class:`ReadIntent` cache-path counters.

    One instance exists per intent on each :class:`IOStats` ledger.
    ``reads`` counts :meth:`StorageHierarchy.read` calls attributed to the
    intent; ``memory_hits``/``ssd_hits`` are local-tier hits,
    ``shared_reads`` are misses that went to shared storage, and
    ``promotions`` counts blocks written into the SSD cache as a result of
    such a miss.  A healthy maintenance-aware configuration shows
    ``promotions == 0`` for the MAINTENANCE intent while query promotions
    continue to warm the cache.

    Counters are plain ints incremented without the ledger lock (same
    rationale as :class:`DecodeStats`: they sit on the per-block read path
    and the GIL makes the increments adequate for benchmark/test usage).
    """

    reads: int = 0
    memory_hits: int = 0
    ssd_hits: int = 0
    shared_reads: int = 0
    promotions: int = 0
    # Transient-fault handling on the shared-read path (ISSUE 6):
    # ``retries`` counts shared reads re-issued after a TransientIOError,
    # ``giveups`` counts reads abandoned after the retry budget ran out
    # (the error propagates to the caller).
    retries: int = 0
    giveups: int = 0

    def snapshot(self) -> "IntentStats":
        return IntentStats(
            reads=self.reads,
            memory_hits=self.memory_hits,
            ssd_hits=self.ssd_hits,
            shared_reads=self.shared_reads,
            promotions=self.promotions,
            retries=self.retries,
            giveups=self.giveups,
        )

    def diff(self, earlier: "IntentStats") -> "IntentStats":
        return IntentStats(
            reads=self.reads - earlier.reads,
            memory_hits=self.memory_hits - earlier.memory_hits,
            ssd_hits=self.ssd_hits - earlier.ssd_hits,
            shared_reads=self.shared_reads - earlier.shared_reads,
            promotions=self.promotions - earlier.promotions,
            retries=self.retries - earlier.retries,
            giveups=self.giveups - earlier.giveups,
        )

    def local_hit_rate(self) -> float:
        """Fraction of reads served by a local tier (1.0 when no reads)."""
        if self.reads == 0:
            return 1.0
        return (self.memory_hits + self.ssd_hits) / self.reads

    def reset(self) -> None:
        self.reads = 0
        self.memory_hits = 0
        self.ssd_hits = 0
        self.shared_reads = 0
        self.promotions = 0
        self.retries = 0
        self.giveups = 0


@dataclass
class FaultStats:
    """Aggregate fault-injection and fault-handling counters (ISSUE 6).

    The injection side (``transient_*_errors``, ``torn_writes``,
    ``dropped_headers``, ``bit_flips``, ``crashes_injected``) is
    incremented by the deterministic fault injector (``repro.faults``);
    the handling side (``*_retries``, ``*_giveups``, ``backoff_sim_ns``)
    by :class:`~repro.storage.hierarchy.StorageHierarchy`'s retry loops.
    Together they make fault tests counter-asserted: every injected
    transient error must show up as exactly one retry or one give-up.

    Counters are plain ints incremented without the ledger lock (same
    rationale as :class:`DecodeStats`).
    """

    transient_read_errors: int = 0
    transient_write_errors: int = 0
    read_retries: int = 0
    write_retries: int = 0
    read_giveups: int = 0
    write_giveups: int = 0
    backoff_sim_ns: int = 0
    torn_writes: int = 0
    dropped_headers: int = 0
    bit_flips: int = 0
    crashes_injected: int = 0

    def snapshot(self) -> "FaultStats":
        return FaultStats(
            transient_read_errors=self.transient_read_errors,
            transient_write_errors=self.transient_write_errors,
            read_retries=self.read_retries,
            write_retries=self.write_retries,
            read_giveups=self.read_giveups,
            write_giveups=self.write_giveups,
            backoff_sim_ns=self.backoff_sim_ns,
            torn_writes=self.torn_writes,
            dropped_headers=self.dropped_headers,
            bit_flips=self.bit_flips,
            crashes_injected=self.crashes_injected,
        )

    def diff(self, earlier: "FaultStats") -> "FaultStats":
        return FaultStats(
            transient_read_errors=(
                self.transient_read_errors - earlier.transient_read_errors
            ),
            transient_write_errors=(
                self.transient_write_errors - earlier.transient_write_errors
            ),
            read_retries=self.read_retries - earlier.read_retries,
            write_retries=self.write_retries - earlier.write_retries,
            read_giveups=self.read_giveups - earlier.read_giveups,
            write_giveups=self.write_giveups - earlier.write_giveups,
            backoff_sim_ns=self.backoff_sim_ns - earlier.backoff_sim_ns,
            torn_writes=self.torn_writes - earlier.torn_writes,
            dropped_headers=self.dropped_headers - earlier.dropped_headers,
            bit_flips=self.bit_flips - earlier.bit_flips,
            crashes_injected=self.crashes_injected - earlier.crashes_injected,
        )

    @property
    def transient_errors(self) -> int:
        return self.transient_read_errors + self.transient_write_errors

    @property
    def retries(self) -> int:
        return self.read_retries + self.write_retries

    @property
    def giveups(self) -> int:
        return self.read_giveups + self.write_giveups

    def reset(self) -> None:
        self.transient_read_errors = 0
        self.transient_write_errors = 0
        self.read_retries = 0
        self.write_retries = 0
        self.read_giveups = 0
        self.write_giveups = 0
        self.backoff_sim_ns = 0
        self.torn_writes = 0
        self.dropped_headers = 0
        self.bit_flips = 0
        self.crashes_injected = 0


@dataclass
class QosStats:
    """Overload-protection counters (ISSUE 7).

    The admission side (``admitted``/``shed``/``deadline_misses``/
    ``queue_sim_ns``) is maintained by
    :class:`~repro.qos.admission.AdmissionController`: every query entering
    the cluster front door is either admitted (possibly after a simulated
    queueing delay, charged to ``queue_sim_ns``) or shed with a typed
    ``Overloaded``/``DeadlineExceeded`` error.  ``deadline_misses`` counts
    queries that were admitted but finished past their deadline (the work
    was done; the caller is told it was late).

    The breaker side is maintained by
    :class:`~repro.qos.breaker.CircuitBreaker`: ``breaker_opens``/
    ``breaker_closes`` count state transitions, ``breaker_probes`` counts
    half-open trial operations, and ``breaker_fast_fails`` counts
    operations rejected without touching the tier while the breaker was
    open.  ``degraded_reads`` counts queries served from local tiers plus
    a pinned versionset snapshot while the shared tier's breaker was open
    -- stale-bounded answers instead of errors.

    The scheduler side is maintained by
    :class:`~repro.qos.scheduler.DaemonScheduler`:
    ``maintenance_cycles`` counts maintenance work units that ran,
    ``maintenance_throttled`` counts work units suppressed by
    backpressure, and ``throttle_events``/``throttle_releases`` count the
    scheduler's gate closing and re-opening.

    Counters are plain ints incremented without the ledger lock (same
    rationale as :class:`DecodeStats`).
    """

    admitted: int = 0
    shed: int = 0
    deadline_misses: int = 0
    queue_sim_ns: int = 0
    degraded_reads: int = 0
    breaker_opens: int = 0
    breaker_closes: int = 0
    breaker_probes: int = 0
    breaker_fast_fails: int = 0
    maintenance_cycles: int = 0
    maintenance_throttled: int = 0
    throttle_events: int = 0
    throttle_releases: int = 0

    def snapshot(self) -> "QosStats":
        return QosStats(
            admitted=self.admitted,
            shed=self.shed,
            deadline_misses=self.deadline_misses,
            queue_sim_ns=self.queue_sim_ns,
            degraded_reads=self.degraded_reads,
            breaker_opens=self.breaker_opens,
            breaker_closes=self.breaker_closes,
            breaker_probes=self.breaker_probes,
            breaker_fast_fails=self.breaker_fast_fails,
            maintenance_cycles=self.maintenance_cycles,
            maintenance_throttled=self.maintenance_throttled,
            throttle_events=self.throttle_events,
            throttle_releases=self.throttle_releases,
        )

    def diff(self, earlier: "QosStats") -> "QosStats":
        return QosStats(
            admitted=self.admitted - earlier.admitted,
            shed=self.shed - earlier.shed,
            deadline_misses=self.deadline_misses - earlier.deadline_misses,
            queue_sim_ns=self.queue_sim_ns - earlier.queue_sim_ns,
            degraded_reads=self.degraded_reads - earlier.degraded_reads,
            breaker_opens=self.breaker_opens - earlier.breaker_opens,
            breaker_closes=self.breaker_closes - earlier.breaker_closes,
            breaker_probes=self.breaker_probes - earlier.breaker_probes,
            breaker_fast_fails=(
                self.breaker_fast_fails - earlier.breaker_fast_fails
            ),
            maintenance_cycles=(
                self.maintenance_cycles - earlier.maintenance_cycles
            ),
            maintenance_throttled=(
                self.maintenance_throttled - earlier.maintenance_throttled
            ),
            throttle_events=self.throttle_events - earlier.throttle_events,
            throttle_releases=self.throttle_releases - earlier.throttle_releases,
        )

    @property
    def offered(self) -> int:
        """Total queries that reached the front door (admitted + shed)."""
        return self.admitted + self.shed

    def shed_rate(self) -> float:
        """Fraction of offered queries that were shed (0.0 when idle)."""
        offered = self.offered
        if offered == 0:
            return 0.0
        return self.shed / offered

    def reset(self) -> None:
        self.admitted = 0
        self.shed = 0
        self.deadline_misses = 0
        self.queue_sim_ns = 0
        self.degraded_reads = 0
        self.breaker_opens = 0
        self.breaker_closes = 0
        self.breaker_probes = 0
        self.breaker_fast_fails = 0
        self.maintenance_cycles = 0
        self.maintenance_throttled = 0
        self.throttle_events = 0
        self.throttle_releases = 0


@dataclass
class EpochStats:
    """Counters for the run lifecycle (``core.epoch``).

    Queries *pin* an immutable run-list version for their whole lifetime;
    maintenance *retires* runs it unlinked from the lists and the
    lifecycle *reclaims* them (cache blocks released, view caches
    invalidated, shared-storage namespace freed) only once no pin still
    references them.  ``reclaims_deferred`` counts retirements that had to
    park behind a live pin; ``reclaimed_while_pinned`` counts reclaim
    actions that executed while some query still held the run -- the
    hazard the protected modes exist to eliminate (it must stay 0 under
    ``run_lifecycle="versionset"`` and ``"epoch"``; the ``"legacy"``
    ablation mode reclaims immediately and reports how often it fired
    under live queries).  ``eviction_pin_skips`` counts cache
    purge/release decisions that were skipped because the target run was
    pinned.

    The refcount-cost counters make pin cost a countable invariant:

    * ``version_refs`` / ``version_unrefs`` -- versionset-mode Ref/Unref
      operations on version nodes.  Exactly one of each per query, so a
      query costs **exactly 2** version-refcount operations regardless of
      run count.
    * ``run_ref_ops`` -- per-run refcount updates on the pin ledger
      (every epoch-mode pin/release walks its whole snapshot: O(runs)
      per query; in versionset mode only ad-hoc, non-version collectors
      pay this).
    * ``versions_reclaimed`` -- version nodes whose last reference went
      away (superseded and unpinned), unblocking runs only they covered.
    * ``versions_coalesced`` -- publications folded into a later rebuild
      instead of rebuilding the current node eagerly (ISSUE 9):
      ``note_publish`` only marks the node dirty, so a merge storm's N
      back-to-back publications cost one O(runs) rebuild at the next
      pin/retire and count N-1 here.

    Counters are plain ints incremented without a lock where noted (same
    rationale as :class:`DecodeStats`); the lifecycle increments the
    pin/retire/reclaim counters under its own mutex.
    """

    pins_entered: int = 0
    pins_exited: int = 0
    versions_published: int = 0
    runs_retired: int = 0
    runs_reclaimed: int = 0
    reclaims_deferred: int = 0
    reclaimed_while_pinned: int = 0
    eviction_pin_skips: int = 0
    version_refs: int = 0
    version_unrefs: int = 0
    versions_reclaimed: int = 0
    run_ref_ops: int = 0
    versions_coalesced: int = 0

    def snapshot(self) -> "EpochStats":
        return EpochStats(
            pins_entered=self.pins_entered,
            pins_exited=self.pins_exited,
            versions_published=self.versions_published,
            runs_retired=self.runs_retired,
            runs_reclaimed=self.runs_reclaimed,
            reclaims_deferred=self.reclaims_deferred,
            reclaimed_while_pinned=self.reclaimed_while_pinned,
            eviction_pin_skips=self.eviction_pin_skips,
            version_refs=self.version_refs,
            version_unrefs=self.version_unrefs,
            versions_reclaimed=self.versions_reclaimed,
            run_ref_ops=self.run_ref_ops,
            versions_coalesced=self.versions_coalesced,
        )

    def diff(self, earlier: "EpochStats") -> "EpochStats":
        return EpochStats(
            pins_entered=self.pins_entered - earlier.pins_entered,
            pins_exited=self.pins_exited - earlier.pins_exited,
            versions_published=self.versions_published - earlier.versions_published,
            runs_retired=self.runs_retired - earlier.runs_retired,
            runs_reclaimed=self.runs_reclaimed - earlier.runs_reclaimed,
            reclaims_deferred=self.reclaims_deferred - earlier.reclaims_deferred,
            reclaimed_while_pinned=(
                self.reclaimed_while_pinned - earlier.reclaimed_while_pinned
            ),
            eviction_pin_skips=self.eviction_pin_skips - earlier.eviction_pin_skips,
            version_refs=self.version_refs - earlier.version_refs,
            version_unrefs=self.version_unrefs - earlier.version_unrefs,
            versions_reclaimed=self.versions_reclaimed - earlier.versions_reclaimed,
            run_ref_ops=self.run_ref_ops - earlier.run_ref_ops,
            versions_coalesced=self.versions_coalesced - earlier.versions_coalesced,
        )

    def reset(self) -> None:
        self.pins_entered = 0
        self.pins_exited = 0
        self.versions_published = 0
        self.runs_retired = 0
        self.runs_reclaimed = 0
        self.reclaims_deferred = 0
        self.reclaimed_while_pinned = 0
        self.eviction_pin_skips = 0
        self.version_refs = 0
        self.version_unrefs = 0
        self.versions_reclaimed = 0
        self.run_ref_ops = 0
        self.versions_coalesced = 0


@dataclass
class TierStats:
    """Counters for a single storage tier."""

    reads: int = 0
    writes: int = 0
    deletes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    sim_ns: int = 0

    def snapshot(self) -> "TierStats":
        """Return a copy of the current counters."""
        return TierStats(
            reads=self.reads,
            writes=self.writes,
            deletes=self.deletes,
            bytes_read=self.bytes_read,
            bytes_written=self.bytes_written,
            sim_ns=self.sim_ns,
        )

    def diff(self, earlier: "TierStats") -> "TierStats":
        """Return the delta between this snapshot and an ``earlier`` one."""
        return TierStats(
            reads=self.reads - earlier.reads,
            writes=self.writes - earlier.writes,
            deletes=self.deletes - earlier.deletes,
            bytes_read=self.bytes_read - earlier.bytes_read,
            bytes_written=self.bytes_written - earlier.bytes_written,
            sim_ns=self.sim_ns - earlier.sim_ns,
        )


@dataclass
class DecodeStats:
    """CPU-side counters for the run read path (zero-decode accounting).

    The simulated tiers charge I/O; these counters charge *object
    materialization*, the cost the memcmp-comparable key format exists to
    avoid.  ``entry_decodes`` counts full ``IndexEntry.from_bytes`` calls,
    ``raw_key_probes`` counts zero-decode sort-key slice fetches, and
    ``blob_copies`` counts pre-serialized entry blobs forwarded verbatim
    (the merge fast path).  A healthy hot path probes raw keys many times
    per entry decode; the v1 decode path pays one decode (plus a sort-key
    re-encode) per probe.

    Counters are plain ints incremented without the ledger lock: they sit
    on every binary-search probe, and the GIL already makes the increments
    adequate for the single-writer benchmark/test usage they serve.
    """

    entry_decodes: int = 0
    raw_key_probes: int = 0
    blob_copies: int = 0
    # Maintenance/write-path counters (PR 2).  ``evolve_blob_splices``
    # counts entries migrated across zones as raw RID/key splices (the
    # streaming evolve path), ``checksum_validations`` counts data blocks
    # re-validated by CRC instead of by decoding (recovery, journal), and
    # ``maintenance_entry_decodes`` counts full entry decodes incurred by
    # maintenance operations (evolve/recovery fallbacks) -- the number the
    # zero-decode write path drives to ~0.
    evolve_blob_splices: int = 0
    checksum_validations: int = 0
    maintenance_entry_decodes: int = 0

    def snapshot(self) -> "DecodeStats":
        return DecodeStats(
            entry_decodes=self.entry_decodes,
            raw_key_probes=self.raw_key_probes,
            blob_copies=self.blob_copies,
            evolve_blob_splices=self.evolve_blob_splices,
            checksum_validations=self.checksum_validations,
            maintenance_entry_decodes=self.maintenance_entry_decodes,
        )

    def diff(self, earlier: "DecodeStats") -> "DecodeStats":
        return DecodeStats(
            entry_decodes=self.entry_decodes - earlier.entry_decodes,
            raw_key_probes=self.raw_key_probes - earlier.raw_key_probes,
            blob_copies=self.blob_copies - earlier.blob_copies,
            evolve_blob_splices=self.evolve_blob_splices - earlier.evolve_blob_splices,
            checksum_validations=self.checksum_validations - earlier.checksum_validations,
            maintenance_entry_decodes=(
                self.maintenance_entry_decodes - earlier.maintenance_entry_decodes
            ),
        )

    def reset(self) -> None:
        self.entry_decodes = 0
        self.raw_key_probes = 0
        self.blob_copies = 0
        self.evolve_blob_splices = 0
        self.checksum_validations = 0
        self.maintenance_entry_decodes = 0


def _add_fields(target, source) -> None:
    """Add every dataclass counter field of ``source`` into ``target``."""
    for spec in fields(source):
        setattr(
            target, spec.name, getattr(target, spec.name) + getattr(source, spec.name)
        )


class IOStats:
    """Thread-safe ledger of per-tier I/O counters.

    A single ``IOStats`` instance is shared by all tiers of one
    :class:`~repro.storage.hierarchy.StorageHierarchy`, so end-to-end
    experiments can ask "how many simulated nanoseconds did this query
    cost, and on which tier".  The ``decode`` sub-ledger counts CPU-side
    entry materializations on the same hierarchy.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._tiers: Dict[str, TierStats] = {}
        self.decode = DecodeStats()
        # Epoch-pinned run lifecycle counters (see core.epoch): query pins,
        # atomic version publications, and retire/reclaim progress.
        self.epochs = EpochStats()
        # Per-intent cache-path counters (see ReadIntent): who read blocks,
        # where the reads were served, and which reads admitted blocks into
        # the SSD cache.
        self.intents: Dict[ReadIntent, IntentStats] = {
            ReadIntent.QUERY: IntentStats(),
            ReadIntent.MAINTENANCE: IntentStats(),
        }
        # Fault-injection and transient-retry counters (see FaultStats).
        self.faults = FaultStats()
        # Overload-protection counters (see QosStats): admission control,
        # circuit-breaker transitions, degraded reads, and maintenance
        # backpressure.
        self.qos = QosStats()
        # Per-component read attribution (ISSUE 9): block reads charged to
        # a named component ("index:primary", "index:by_customer",
        # "records", ...) while a StorageHierarchy.attributing scope is
        # active.  Empty -- and cost-free -- outside such scopes, so
        # existing benchmarks see byte-identical ledgers.
        self._attribution: Dict[str, int] = {}

    def record_attributed(self, component: str) -> None:
        """Charge one block read to ``component`` (attribution scopes)."""
        with self._lock:
            self._attribution[component] = self._attribution.get(component, 0) + 1

    def attributed_reads(self, component: str) -> int:
        """Block reads charged to ``component`` (0 if never scoped)."""
        with self._lock:
            return self._attribution.get(component, 0)

    def attribution_snapshot(self) -> Dict[str, int]:
        """Copy of the per-component read-attribution counters."""
        with self._lock:
            return dict(self._attribution)

    def for_intent(self, intent: ReadIntent) -> IntentStats:
        """The live (mutable) counter object for one read intent."""
        return self.intents[intent]

    def intent_snapshot(self) -> Dict[str, IntentStats]:
        """Snapshot of both intents' counters, keyed by intent value."""
        return {
            intent.value: stats.snapshot()
            for intent, stats in self.intents.items()
        }

    def record_read(self, tier: str, nbytes: int, sim_ns: int) -> None:
        with self._lock:
            stats = self._tiers.setdefault(tier, TierStats())
            stats.reads += 1
            stats.bytes_read += nbytes
            stats.sim_ns += sim_ns

    def record_write(self, tier: str, nbytes: int, sim_ns: int) -> None:
        with self._lock:
            stats = self._tiers.setdefault(tier, TierStats())
            stats.writes += 1
            stats.bytes_written += nbytes
            stats.sim_ns += sim_ns

    def record_delete(self, tier: str, sim_ns: int) -> None:
        with self._lock:
            stats = self._tiers.setdefault(tier, TierStats())
            stats.deletes += 1
            stats.sim_ns += sim_ns

    def record_backoff(self, tier: str, sim_ns: int) -> None:
        """Charge retry-backoff waiting time to a tier's simulated clock.

        No read/write is counted -- the op that failed already charged (or
        will charge) its own I/O; this is purely the time spent waiting
        between attempts.
        """
        with self._lock:
            stats = self._tiers.setdefault(tier, TierStats())
            stats.sim_ns += sim_ns
        self.faults.backoff_sim_ns += sim_ns

    def tier(self, tier: str) -> TierStats:
        """Return a snapshot of one tier's counters (zeros if untouched)."""
        with self._lock:
            return self._tiers.get(tier, TierStats()).snapshot()

    def snapshot(self) -> Dict[str, TierStats]:
        """Return a snapshot of all tiers' counters."""
        with self._lock:
            return {name: stats.snapshot() for name, stats in self._tiers.items()}

    @property
    def total_sim_ns(self) -> int:
        """Total simulated nanoseconds charged across all tiers."""
        with self._lock:
            return sum(stats.sim_ns for stats in self._tiers.values())

    def merge(self, other: "IOStats") -> "IOStats":
        """Fold another ledger's counters into this one; returns ``self``.

        Cluster-level aggregation (ISSUE 8): per-shard ledgers roll up
        into one cluster view with *every* sub-ledger preserved -- tier
        counters, decode, epoch/lifecycle, per-intent cache-path, fault,
        and qos counters -- not just the top-level tier sums.  Field
        lists come from the dataclasses themselves, so a counter added to
        any sub-ledger is aggregated automatically.  ``other`` is
        snapshotted first, so merging a live ledger is safe.
        """
        other_tiers = other.snapshot()
        other_attribution = other.attribution_snapshot()
        with self._lock:
            for name, tier_stats in other_tiers.items():
                _add_fields(self._tiers.setdefault(name, TierStats()), tier_stats)
            for component, count in other_attribution.items():
                self._attribution[component] = (
                    self._attribution.get(component, 0) + count
                )
        _add_fields(self.decode, other.decode.snapshot())
        _add_fields(self.epochs, other.epochs.snapshot())
        for intent, intent_stats in other.intents.items():
            _add_fields(self.intents[intent], intent_stats.snapshot())
        _add_fields(self.faults, other.faults.snapshot())
        _add_fields(self.qos, other.qos.snapshot())
        return self

    def reset(self) -> None:
        with self._lock:
            self._tiers.clear()
            self._attribution.clear()
        self.decode.reset()
        self.epochs.reset()
        for stats in self.intents.values():
            stats.reset()
        self.faults.reset()
        self.qos.reset()
