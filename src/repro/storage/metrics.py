"""I/O accounting for the simulated storage tiers.

The paper cannot report absolute numbers (Wildfire is product code), and
neither can a pure-Python reproduction hope to match a 28-core Xeon with an
NVMe SSD.  What *can* be reproduced exactly is the relative cost structure:
shared storage is orders of magnitude more expensive than the SSD cache,
which is more expensive than memory.  Every tier operation charges a
deterministic number of simulated nanoseconds here, and the benchmark
harness reports normalized simulated costs -- the same normalization the
paper uses.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict


@dataclass
class TierStats:
    """Counters for a single storage tier."""

    reads: int = 0
    writes: int = 0
    deletes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    sim_ns: int = 0

    def snapshot(self) -> "TierStats":
        """Return a copy of the current counters."""
        return TierStats(
            reads=self.reads,
            writes=self.writes,
            deletes=self.deletes,
            bytes_read=self.bytes_read,
            bytes_written=self.bytes_written,
            sim_ns=self.sim_ns,
        )

    def diff(self, earlier: "TierStats") -> "TierStats":
        """Return the delta between this snapshot and an ``earlier`` one."""
        return TierStats(
            reads=self.reads - earlier.reads,
            writes=self.writes - earlier.writes,
            deletes=self.deletes - earlier.deletes,
            bytes_read=self.bytes_read - earlier.bytes_read,
            bytes_written=self.bytes_written - earlier.bytes_written,
            sim_ns=self.sim_ns - earlier.sim_ns,
        )


@dataclass
class DecodeStats:
    """CPU-side counters for the run read path (zero-decode accounting).

    The simulated tiers charge I/O; these counters charge *object
    materialization*, the cost the memcmp-comparable key format exists to
    avoid.  ``entry_decodes`` counts full ``IndexEntry.from_bytes`` calls,
    ``raw_key_probes`` counts zero-decode sort-key slice fetches, and
    ``blob_copies`` counts pre-serialized entry blobs forwarded verbatim
    (the merge fast path).  A healthy hot path probes raw keys many times
    per entry decode; the v1 decode path pays one decode (plus a sort-key
    re-encode) per probe.

    Counters are plain ints incremented without the ledger lock: they sit
    on every binary-search probe, and the GIL already makes the increments
    adequate for the single-writer benchmark/test usage they serve.
    """

    entry_decodes: int = 0
    raw_key_probes: int = 0
    blob_copies: int = 0
    # Maintenance/write-path counters (PR 2).  ``evolve_blob_splices``
    # counts entries migrated across zones as raw RID/key splices (the
    # streaming evolve path), ``checksum_validations`` counts data blocks
    # re-validated by CRC instead of by decoding (recovery, journal), and
    # ``maintenance_entry_decodes`` counts full entry decodes incurred by
    # maintenance operations (evolve/recovery fallbacks) -- the number the
    # zero-decode write path drives to ~0.
    evolve_blob_splices: int = 0
    checksum_validations: int = 0
    maintenance_entry_decodes: int = 0

    def snapshot(self) -> "DecodeStats":
        return DecodeStats(
            entry_decodes=self.entry_decodes,
            raw_key_probes=self.raw_key_probes,
            blob_copies=self.blob_copies,
            evolve_blob_splices=self.evolve_blob_splices,
            checksum_validations=self.checksum_validations,
            maintenance_entry_decodes=self.maintenance_entry_decodes,
        )

    def diff(self, earlier: "DecodeStats") -> "DecodeStats":
        return DecodeStats(
            entry_decodes=self.entry_decodes - earlier.entry_decodes,
            raw_key_probes=self.raw_key_probes - earlier.raw_key_probes,
            blob_copies=self.blob_copies - earlier.blob_copies,
            evolve_blob_splices=self.evolve_blob_splices - earlier.evolve_blob_splices,
            checksum_validations=self.checksum_validations - earlier.checksum_validations,
            maintenance_entry_decodes=(
                self.maintenance_entry_decodes - earlier.maintenance_entry_decodes
            ),
        )

    def reset(self) -> None:
        self.entry_decodes = 0
        self.raw_key_probes = 0
        self.blob_copies = 0
        self.evolve_blob_splices = 0
        self.checksum_validations = 0
        self.maintenance_entry_decodes = 0


class IOStats:
    """Thread-safe ledger of per-tier I/O counters.

    A single ``IOStats`` instance is shared by all tiers of one
    :class:`~repro.storage.hierarchy.StorageHierarchy`, so end-to-end
    experiments can ask "how many simulated nanoseconds did this query
    cost, and on which tier".  The ``decode`` sub-ledger counts CPU-side
    entry materializations on the same hierarchy.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._tiers: Dict[str, TierStats] = {}
        self.decode = DecodeStats()

    def record_read(self, tier: str, nbytes: int, sim_ns: int) -> None:
        with self._lock:
            stats = self._tiers.setdefault(tier, TierStats())
            stats.reads += 1
            stats.bytes_read += nbytes
            stats.sim_ns += sim_ns

    def record_write(self, tier: str, nbytes: int, sim_ns: int) -> None:
        with self._lock:
            stats = self._tiers.setdefault(tier, TierStats())
            stats.writes += 1
            stats.bytes_written += nbytes
            stats.sim_ns += sim_ns

    def record_delete(self, tier: str, sim_ns: int) -> None:
        with self._lock:
            stats = self._tiers.setdefault(tier, TierStats())
            stats.deletes += 1
            stats.sim_ns += sim_ns

    def tier(self, tier: str) -> TierStats:
        """Return a snapshot of one tier's counters (zeros if untouched)."""
        with self._lock:
            return self._tiers.get(tier, TierStats()).snapshot()

    def snapshot(self) -> Dict[str, TierStats]:
        """Return a snapshot of all tiers' counters."""
        with self._lock:
            return {name: stats.snapshot() for name, stats in self._tiers.items()}

    @property
    def total_sim_ns(self) -> int:
        """Total simulated nanoseconds charged across all tiers."""
        with self._lock:
            return sum(stats.sim_ns for stats in self._tiers.values())

    def reset(self) -> None:
        with self._lock:
            self._tiers.clear()
        self.decode.reset()
