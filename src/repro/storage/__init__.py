"""Multi-tier storage substrate for the Umzi reproduction.

The paper runs Umzi against a three-tier hierarchy: local memory, a local
SSD cache, and distributed shared storage (GlusterFS / HDFS / S3).  None of
those are available here, so this package provides faithful simulations:

* :class:`~repro.storage.memory.MemoryTier` -- unbounded, cheapest tier.
* :class:`~repro.storage.ssd.SSDTier` -- capacity-bounded block cache with a
  mid-range latency model.
* :class:`~repro.storage.shared.SharedStorage` -- append-only object store
  that forbids in-place updates and partial reads, with the most expensive
  latency model (it stands in for network-attached storage).
* :class:`~repro.storage.hierarchy.StorageHierarchy` -- the read-through /
  write-through composition used by Umzi's cache manager.

Every tier charges deterministic *simulated* nanoseconds to a shared
:class:`~repro.storage.metrics.IOStats` ledger, so benchmark shapes are
reproducible run-to-run independent of host noise.
"""

from repro.storage.block import Block, BlockId
from repro.storage.hierarchy import StorageHierarchy
from repro.storage.memory import MemoryTier
from repro.storage.metrics import IntentStats, IOStats, ReadIntent, TierStats
from repro.storage.shared import SharedStorage, SharedStorageError
from repro.storage.ssd import SSDTier
from repro.storage.tier import LatencyModel, StorageTier, TierName

__all__ = [
    "Block",
    "BlockId",
    "IntentStats",
    "IOStats",
    "ReadIntent",
    "LatencyModel",
    "MemoryTier",
    "SSDTier",
    "SharedStorage",
    "SharedStorageError",
    "StorageHierarchy",
    "StorageTier",
    "TierName",
    "TierStats",
]
