"""Composition of the three tiers into the hierarchy Umzi runs against.

Read path (paper section 7): queries read runs from the SSD cache; on a
miss the block is transferred from shared storage to the SSD cache "on a
block-basis ... to facilitate future accesses".  Memory sits in front of
the SSD as the hottest layer for non-persisted runs and recently-touched
blocks.

Write paths (sections 6.1-6.2):

* ``write_persisted`` -- the durable path: shared storage always, plus
  write-through into the SSD cache when the cache manager says the run is
  below the current cached level.
* ``write_cached_only`` -- the non-persisted-level path: memory (and
  optionally SSD spill), never shared storage.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, List, Optional

from repro.storage.block import Block, BlockId
from repro.storage.memory import MemoryTier
from repro.storage.metrics import IntentStats, IOStats, ReadIntent
from repro.storage.retry import DEFAULT_RETRY_POLICY, RetryPolicy, TransientIOError
from repro.storage.shared import SharedStorage
from repro.storage.ssd import SSDTier
from repro.storage.tier import TierName

MAINTENANCE_READ_MODES = ("intent", "legacy")


class BlockNotFoundError(KeyError):
    """A block was requested that exists in no tier."""


class StorageHierarchy:
    """Memory + SSD + shared storage with Umzi's read/write policies.

    Every read carries a :class:`ReadIntent` that drives cache admission:

    * ``ReadIntent.QUERY`` (the default) -- a shared-storage miss promotes
      the block into the SSD cache (the paper's block-basis transfer), so
      repeated queries over the same purged run warm up;
    * ``ReadIntent.MAINTENANCE`` -- background machinery (streaming evolve,
      merges, the post-groomer, recovery validation) streams each block
      once; under the default ``maintenance_read_mode="intent"`` those
      reads **never** promote into the memory or SSD tiers and never evict
      query-hot blocks.  ``maintenance_read_mode="legacy"`` restores the
      promote-everything behaviour as an ablation baseline
      (``ShardConfig.maintenance_read_mode`` threads the flag down from the
      engine).

    The intent is either passed explicitly to :meth:`read`/:meth:`read_many`
    or installed for a whole call tree with the :meth:`reading_as` scope
    (thread-local), which is how deep paths like the post-groomer's
    index lookups inherit MAINTENANCE without plumbing a parameter through
    every search routine.  Per-intent hit/miss/promotion counters land in
    ``stats.intents`` (:class:`~repro.storage.metrics.IntentStats`).
    """

    def __init__(
        self,
        memory: Optional[MemoryTier] = None,
        ssd: Optional[SSDTier] = None,
        shared: Optional[SharedStorage] = None,
        stats: Optional[IOStats] = None,
        maintenance_read_mode: str = "intent",
        retry_policy: Optional[RetryPolicy] = DEFAULT_RETRY_POLICY,
    ) -> None:
        self.stats = stats if stats is not None else IOStats()
        # Transient shared-storage errors (TransientIOError) are retried
        # with capped exponential backoff on the simulated clock; ``None``
        # disables retries (the first transient error propagates).
        self.retry_policy = retry_policy
        self.memory = memory if memory is not None else MemoryTier(stats=self.stats)
        self.ssd = ssd if ssd is not None else SSDTier(stats=self.stats)
        self.shared = shared if shared is not None else SharedStorage(stats=self.stats)
        # Re-point tiers constructed by the caller at the shared ledger so
        # one hierarchy always produces one consistent set of counters.
        self.memory.stats = self.stats
        self.ssd.stats = self.stats
        self.shared.stats = self.stats
        self.set_maintenance_read_mode(maintenance_read_mode)
        self._intent_local = threading.local()
        self._attribution_local = threading.local()
        # Optional per-tier circuit breaker on the shared tier (ISSUE 7):
        # any object with check()/record_success()/record_failure()
        # (see repro.qos.breaker.CircuitBreaker).  Kept duck-typed so the
        # storage layer does not depend on the qos package.
        self._shared_breaker = None

    # -- read-intent policy ----------------------------------------------------

    @property
    def maintenance_read_mode(self) -> str:
        """``"intent"`` (maintenance never promotes) or ``"legacy"``."""
        return self._maintenance_read_mode

    def set_maintenance_read_mode(self, mode: str) -> None:
        if mode not in MAINTENANCE_READ_MODES:
            raise ValueError(
                f"maintenance_read_mode must be one of "
                f"{MAINTENANCE_READ_MODES}; got {mode!r}"
            )
        self._maintenance_read_mode = mode

    def current_read_intent(self) -> ReadIntent:
        """The effective intent for reads that do not pass one explicitly."""
        scoped = getattr(self._intent_local, "intent", None)
        return scoped if scoped is not None else ReadIntent.QUERY

    @contextmanager
    def reading_as(self, intent: ReadIntent) -> Iterator["StorageHierarchy"]:
        """Scope a default read intent over a call tree (thread-local).

        Used by maintenance drivers whose reads funnel through code shared
        with the query path (e.g. the post-groomer's ``post_groomed_lookup``
        runs an ordinary :class:`QueryExecutor`); everything under the scope
        that does not pass an explicit intent inherits this one.
        """
        previous = getattr(self._intent_local, "intent", None)
        self._intent_local.intent = intent
        try:
            yield self
        finally:
            self._intent_local.intent = previous

    def _admits(self, intent: ReadIntent) -> bool:
        """Does a shared-storage miss with this intent admit into the SSD?"""
        return (
            intent is ReadIntent.QUERY
            or self._maintenance_read_mode == "legacy"
        )

    # -- read attribution (ISSUE 9) --------------------------------------------

    @contextmanager
    def attributing(self, component: str) -> Iterator["StorageHierarchy"]:
        """Scope a read-attribution component over a call tree.

        The access-path executor wraps each plan step in a scope
        (``attributing("index:by_customer")``, ``attributing("records")``)
        so the planner ablation can assert exactly which component's
        blocks an index-only query did *not* read.  Thread-local, like
        :meth:`reading_as`; reads outside any scope charge nothing, so
        the attribution ledger stays empty (and byte-identical) for
        every pre-existing workload.
        """
        previous = getattr(self._attribution_local, "component", None)
        self._attribution_local.component = component
        try:
            yield self
        finally:
            self._attribution_local.component = previous

    # -- transient-fault retry (ISSUE 6) + circuit breaker (ISSUE 7) -----------

    def attach_shared_breaker(self, breaker) -> None:
        """Install a circuit breaker over the shared tier (or None).

        While the breaker is open, shared reads/writes fail fast with
        :class:`~repro.storage.retry.StorageBrownout` *before* touching
        the tier or burning retry budget; successes and transient
        failures feed the breaker so it trips during brownouts and
        re-closes after successful half-open probes.
        """
        self._shared_breaker = breaker

    @property
    def shared_breaker(self):
        return self._shared_breaker

    def _shared_read(
        self, block_id: BlockId, istats: Optional[IntentStats] = None
    ) -> Optional[Block]:
        """``shared.read`` with capped-exponential-backoff retry.

        Transient errors (:class:`TransientIOError`) are retried up to the
        policy's attempt budget, charging each wait to the shared tier's
        simulated clock; exhausting the budget counts a give-up and
        re-raises, so the caller sees an *error*, never a wrong answer.
        Retries and give-ups are attributed to ``istats`` (the read's
        intent) when given, and always to the aggregate fault ledger.
        With a breaker attached, consecutive failures can trip it
        mid-loop, in which case the next attempt fails fast with
        ``StorageBrownout`` instead of counting a give-up.
        """
        policy = self.retry_policy
        breaker = self._shared_breaker
        fstats = self.stats.faults
        attempt = 1
        while True:
            if breaker is not None:
                breaker.check()
            try:
                result = self.shared.read(block_id)
            except TransientIOError:
                if breaker is not None:
                    breaker.record_failure()
                if policy is None or attempt >= policy.max_attempts:
                    fstats.read_giveups += 1
                    if istats is not None:
                        istats.giveups += 1
                    raise
                fstats.read_retries += 1
                if istats is not None:
                    istats.retries += 1
                self.stats.record_backoff(
                    TierName.SHARED.value, policy.backoff_ns(attempt)
                )
                attempt += 1
            else:
                if breaker is not None:
                    breaker.record_success()
                return result

    def _shared_write(self, block: Block) -> None:
        """``shared.write`` with the same retry/backoff contract as reads.

        Write retries are safe against double-apply: shared storage is
        append-only, so a retried write either lands the block or fails
        again -- an in-place overwrite is impossible by construction.
        """
        policy = self.retry_policy
        breaker = self._shared_breaker
        fstats = self.stats.faults
        attempt = 1
        while True:
            if breaker is not None:
                breaker.check()
            try:
                self.shared.write(block)
            except TransientIOError:
                if breaker is not None:
                    breaker.record_failure()
                if policy is None or attempt >= policy.max_attempts:
                    fstats.write_giveups += 1
                    raise
                fstats.write_retries += 1
                self.stats.record_backoff(
                    TierName.SHARED.value, policy.backoff_ns(attempt)
                )
                attempt += 1
            else:
                if breaker is not None:
                    breaker.record_success()
                return

    # -- write paths ---------------------------------------------------------

    def write_persisted(self, block: Block, write_through_ssd: bool = True) -> None:
        """Durable write: shared storage, plus SSD write-through if asked.

        The SSD copy is a best-effort cache insertion: if the cache is full
        the durable write still succeeds and the block simply stays
        uncached until the cache manager frees space.
        """
        self._shared_write(block)
        if write_through_ssd and self.ssd.would_fit(block.size):
            self.ssd.write(block)

    def write_cached_only(self, block: Block, spill_to_ssd: bool = False) -> None:
        """Non-persisted write: memory only, optionally spilled to SSD."""
        self.memory.write(block)
        if spill_to_ssd:
            self.ssd.write(block)

    # -- read path -----------------------------------------------------------

    def read(
        self,
        block_id: BlockId,
        promote: bool = True,
        intent: Optional[ReadIntent] = None,
    ) -> Block:
        """Read through memory -> SSD -> shared storage.

        On a shared-storage hit the block is promoted into the SSD cache,
        reproducing the paper's block-basis transfer of purged runs --
        but only when ``promote`` is set *and* the read intent admits
        (QUERY always; MAINTENANCE only in ``maintenance_read_mode=
        "legacy"``).  ``intent=None`` resolves through the
        :meth:`reading_as` scope, defaulting to QUERY.  Raises
        :class:`BlockNotFoundError` if the block is absent everywhere.
        """
        if intent is None:
            intent = self.current_read_intent()
        istats = self.stats.intents[intent]
        istats.reads += 1
        component = getattr(self._attribution_local, "component", None)
        if component is not None:
            self.stats.record_attributed(component)
        block = self.memory.read(block_id)
        if block is not None:
            istats.memory_hits += 1
            return block
        block = self.ssd.read(block_id)
        if block is not None:
            istats.ssd_hits += 1
            return block
        block = self._shared_read(block_id, istats)
        if block is None:
            raise BlockNotFoundError(block_id)
        istats.shared_reads += 1
        if promote and self._admits(intent):
            if self.ssd.would_fit(block.size):
                self.ssd.write(block)
                istats.promotions += 1
        return block

    def read_many(
        self,
        block_ids: List[BlockId],
        promote: bool = True,
        intent: Optional[ReadIntent] = None,
    ) -> List[Block]:
        return [
            self.read(bid, promote=promote, intent=intent) for bid in block_ids
        ]

    def read_shared(
        self,
        block_id: BlockId,
        intent: ReadIntent = ReadIntent.MAINTENANCE,
    ) -> Optional[Block]:
        """Read the durable shared-storage copy only; never promotes.

        Recovery validation must check the copy that survives a node crash,
        not whatever a local tier happens to hold (and must *not* resurrect
        non-persisted runs whose only blocks live locally), so it bypasses
        the local tiers entirely.  The read is still attributed to
        ``intent`` in the per-intent counters.  Returns ``None`` when the
        shared copy is absent.
        """
        istats = self.stats.intents[intent]
        istats.reads += 1
        block = self._shared_read(block_id, istats)
        if block is not None:
            istats.shared_reads += 1
        return block

    # -- cache-management primitives ------------------------------------------

    def drop_from_cache(self, block_id: BlockId) -> bool:
        """Remove a block from the local tiers (purge); keeps shared copy."""
        in_mem = self.memory.delete(block_id)
        in_ssd = self.ssd.delete(block_id)
        return in_mem or in_ssd

    def load_into_cache(self, block_id: BlockId) -> bool:
        """Fetch a block from shared storage into the SSD cache (load)."""
        if self.ssd.contains(block_id):
            return True
        block = self._shared_read(block_id)
        if block is None:
            return False
        if not self.ssd.would_fit(block.size):
            return False
        self.ssd.write(block)
        return True

    def is_cached(self, block_id: BlockId) -> bool:
        return self.memory.contains(block_id) or self.ssd.contains(block_id)

    # -- deletion --------------------------------------------------------------

    def delete_everywhere(self, block_id: BlockId) -> None:
        self.memory.delete(block_id)
        self.ssd.delete(block_id)
        self.shared.delete(block_id)

    def delete_namespace(self, namespace: str) -> None:
        """Garbage-collect one logical object from every tier."""
        self.memory.delete_namespace(namespace)
        self.ssd.delete_namespace(namespace)
        self.shared.delete_namespace(namespace)

    # -- failure injection -------------------------------------------------------

    def crash_local_tiers(self) -> None:
        """Simulate a node crash: lose memory and SSD, keep shared storage.

        This is the recovery scenario of paper section 5.5 -- the indexer
        process loses all local state and must rebuild run lists from runs
        persisted in shared storage.
        """
        for bid in list(self.memory.block_ids()):
            self.memory.delete(bid)
        for bid in list(self.ssd.block_ids()):
            self.ssd.delete(bid)
