"""Composition of the three tiers into the hierarchy Umzi runs against.

Read path (paper section 7): queries read runs from the SSD cache; on a
miss the block is transferred from shared storage to the SSD cache "on a
block-basis ... to facilitate future accesses".  Memory sits in front of
the SSD as the hottest layer for non-persisted runs and recently-touched
blocks.

Write paths (sections 6.1-6.2):

* ``write_persisted`` -- the durable path: shared storage always, plus
  write-through into the SSD cache when the cache manager says the run is
  below the current cached level.
* ``write_cached_only`` -- the non-persisted-level path: memory (and
  optionally SSD spill), never shared storage.
"""

from __future__ import annotations

from typing import List, Optional

from repro.storage.block import Block, BlockId
from repro.storage.memory import MemoryTier
from repro.storage.metrics import IOStats
from repro.storage.shared import SharedStorage
from repro.storage.ssd import SSDTier


class BlockNotFoundError(KeyError):
    """A block was requested that exists in no tier."""


class StorageHierarchy:
    """Memory + SSD + shared storage with Umzi's read/write policies."""

    def __init__(
        self,
        memory: Optional[MemoryTier] = None,
        ssd: Optional[SSDTier] = None,
        shared: Optional[SharedStorage] = None,
        stats: Optional[IOStats] = None,
    ) -> None:
        self.stats = stats if stats is not None else IOStats()
        self.memory = memory if memory is not None else MemoryTier(stats=self.stats)
        self.ssd = ssd if ssd is not None else SSDTier(stats=self.stats)
        self.shared = shared if shared is not None else SharedStorage(stats=self.stats)
        # Re-point tiers constructed by the caller at the shared ledger so
        # one hierarchy always produces one consistent set of counters.
        self.memory.stats = self.stats
        self.ssd.stats = self.stats
        self.shared.stats = self.stats

    # -- write paths ---------------------------------------------------------

    def write_persisted(self, block: Block, write_through_ssd: bool = True) -> None:
        """Durable write: shared storage, plus SSD write-through if asked.

        The SSD copy is a best-effort cache insertion: if the cache is full
        the durable write still succeeds and the block simply stays
        uncached until the cache manager frees space.
        """
        self.shared.write(block)
        if write_through_ssd and self.ssd.would_fit(block.size):
            self.ssd.write(block)

    def write_cached_only(self, block: Block, spill_to_ssd: bool = False) -> None:
        """Non-persisted write: memory only, optionally spilled to SSD."""
        self.memory.write(block)
        if spill_to_ssd:
            self.ssd.write(block)

    # -- read path -----------------------------------------------------------

    def read(self, block_id: BlockId, promote: bool = True) -> Block:
        """Read through memory -> SSD -> shared storage.

        On a shared-storage hit the block is promoted into the SSD cache
        (when ``promote``), reproducing the paper's block-basis transfer of
        purged runs.  Raises :class:`BlockNotFoundError` if absent everywhere.
        """
        block = self.memory.read(block_id)
        if block is not None:
            return block
        block = self.ssd.read(block_id)
        if block is not None:
            return block
        block = self.shared.read(block_id)
        if block is None:
            raise BlockNotFoundError(block_id)
        if promote:
            if self.ssd.would_fit(block.size):
                self.ssd.write(block)
        return block

    def read_many(self, block_ids: List[BlockId], promote: bool = True) -> List[Block]:
        return [self.read(bid, promote=promote) for bid in block_ids]

    # -- cache-management primitives ------------------------------------------

    def drop_from_cache(self, block_id: BlockId) -> bool:
        """Remove a block from the local tiers (purge); keeps shared copy."""
        in_mem = self.memory.delete(block_id)
        in_ssd = self.ssd.delete(block_id)
        return in_mem or in_ssd

    def load_into_cache(self, block_id: BlockId) -> bool:
        """Fetch a block from shared storage into the SSD cache (load)."""
        if self.ssd.contains(block_id):
            return True
        block = self.shared.read(block_id)
        if block is None:
            return False
        if not self.ssd.would_fit(block.size):
            return False
        self.ssd.write(block)
        return True

    def is_cached(self, block_id: BlockId) -> bool:
        return self.memory.contains(block_id) or self.ssd.contains(block_id)

    # -- deletion --------------------------------------------------------------

    def delete_everywhere(self, block_id: BlockId) -> None:
        self.memory.delete(block_id)
        self.ssd.delete(block_id)
        self.shared.delete(block_id)

    def delete_namespace(self, namespace: str) -> None:
        """Garbage-collect one logical object from every tier."""
        self.memory.delete_namespace(namespace)
        self.ssd.delete_namespace(namespace)
        self.shared.delete_namespace(namespace)

    # -- failure injection -------------------------------------------------------

    def crash_local_tiers(self) -> None:
        """Simulate a node crash: lose memory and SSD, keep shared storage.

        This is the recovery scenario of paper section 5.5 -- the indexer
        process loses all local state and must rebuild run lists from runs
        persisted in shared storage.
        """
        for bid in list(self.memory.block_ids()):
            self.memory.delete(bid)
        for bid in list(self.ssd.block_ids()):
            self.ssd.delete(bid)
