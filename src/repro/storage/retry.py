"""Transient-fault classification and retry/backoff policy (ISSUE 6).

Shared storage is a remote, distributed service: writes and reads can fail
*transiently* (a datanode hiccup, a network blip) without the block being
lost.  The paper's recovery story (section 5.5) only covers hard crashes;
production shared-storage clients additionally retry transient errors with
capped exponential backoff.  This module defines the storage-layer half of
that contract:

* :class:`TransientIOError` -- the retryable error class.  The fault
  injector (``repro.faults``) raises it; real adapters would translate
  their SDK's retryable error codes into it.
* :class:`RetryPolicy` -- capped exponential backoff, expressed on the
  *simulated* clock (nanoseconds charged to the tier ledger, never
  ``time.sleep``), so retry behaviour is deterministic and assertable.

:class:`~repro.storage.hierarchy.StorageHierarchy` wraps every shared-tier
read/write in a retry loop driven by this policy and counts retries and
give-ups per read intent (``IntentStats``) and in the aggregate fault
ledger (``FaultStats``).
"""

from __future__ import annotations

from dataclasses import dataclass


class TransientIOError(IOError):
    """A retryable shared-storage failure (the op may succeed if retried).

    Distinct from :class:`~repro.storage.hierarchy.BlockNotFoundError`
    (the block is definitively absent) and from
    :class:`~repro.storage.shared.SharedStorageError` (a semantic
    violation): a transient error says nothing about the block at all.
    """


class StorageBrownout(TransientIOError):
    """A shared-tier operation rejected because its circuit breaker is open.

    Raised *without* touching the tier: once
    :class:`~repro.qos.breaker.CircuitBreaker` has tripped, further
    operations fail fast instead of burning the retry budget against a
    storage service that is known to be browning out.  Subclasses
    :class:`TransientIOError` because the condition is transient -- the
    breaker re-probes after its open window -- but callers that care (the
    cluster serving path) can distinguish it and degrade to local tiers
    instead of erroring.
    """

    def __init__(self, tier: str, retry_at_ns: int) -> None:
        super().__init__(
            f"{tier} breaker open; retry at simulated t={retry_at_ns}ns"
        )
        self.tier = tier
        self.retry_at_ns = retry_at_ns


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff for transient shared-storage errors.

    ``max_attempts`` bounds total tries (first attempt included); attempt
    ``n`` failing waits ``backoff_ns(n)`` simulated nanoseconds before
    attempt ``n+1``.  The delay doubles per attempt (``multiplier``) from
    ``base_delay_ns`` up to the ``max_delay_ns`` cap -- the standard
    shape, made deterministic by running on the simulated clock.
    """

    max_attempts: int = 4
    base_delay_ns: int = 1_000_000  # 1 simulated ms, ~ one shared read
    multiplier: float = 2.0
    max_delay_ns: int = 16_000_000

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_ns < 0 or self.max_delay_ns < 0:
            raise ValueError("backoff delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1.0")

    def backoff_ns(self, attempt: int) -> int:
        """Simulated-ns delay after failed attempt ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        delay = self.base_delay_ns * (self.multiplier ** (attempt - 1))
        return int(min(delay, self.max_delay_ns))

    def total_backoff_ns(self, failures: int) -> int:
        """Total simulated backoff charged for ``failures`` consecutive
        failed attempts (what a successful op that failed ``failures``
        times cost in waiting)."""
        return sum(self.backoff_ns(n) for n in range(1, failures + 1))


DEFAULT_RETRY_POLICY = RetryPolicy()


__all__ = [
    "DEFAULT_RETRY_POLICY",
    "RetryPolicy",
    "StorageBrownout",
    "TransientIOError",
]
