"""The shared storage tier: append-only, block-granularity, expensive.

Simulates HDFS / GlusterFS / cloud object storage.  The semantics the paper
leans on are enforced here, not merely documented:

* **No in-place updates** -- writing an existing block id raises.
* **Whole-block access** -- reads return full blocks only.
* **File-count pressure** -- the tier counts live objects (namespaces), so
  benchmarks can show why Umzi prefers a small number of large files.
* **High, network-like latency** -- the most expensive tier by far.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional

from repro.storage.block import Block, BlockId
from repro.storage.metrics import IOStats
from repro.storage.tier import LatencyModel, StorageTier, TierName

DEFAULT_SHARED_READ = LatencyModel(fixed_ns=2_000_000, per_byte_ns=2.0)
DEFAULT_SHARED_WRITE = LatencyModel(fixed_ns=3_000_000, per_byte_ns=3.0)


class SharedStorageError(RuntimeError):
    """Violation of shared-storage semantics (e.g. in-place update)."""


class SharedStorage(StorageTier):
    """Append-only distributed-storage simulation.

    Durability is assumed: anything written here survives "node crashes"
    (deleting local tiers), which is exactly the recovery contract of
    paper section 5.5.
    """

    def __init__(
        self,
        stats: Optional[IOStats] = None,
        read_latency: LatencyModel = DEFAULT_SHARED_READ,
        write_latency: LatencyModel = DEFAULT_SHARED_WRITE,
    ) -> None:
        super().__init__(TierName.SHARED, read_latency, write_latency, stats)
        self._blocks: Dict[BlockId, Block] = {}
        self._lock = threading.Lock()
        self._total_bytes_ever_written = 0

    def write(self, block: Block) -> None:
        with self._lock:
            if block.block_id in self._blocks:
                raise SharedStorageError(
                    f"in-place update of {block.block_id} is not supported by "
                    "shared storage; write a new block instead"
                )
            self._blocks[block.block_id] = block
            self._total_bytes_ever_written += block.size
        self._charge_write(block.size)

    def read(self, block_id: BlockId) -> Optional[Block]:
        with self._lock:
            block = self._blocks.get(block_id)
        if block is not None:
            self._charge_read(block.size)
        return block

    def delete(self, block_id: BlockId) -> bool:
        with self._lock:
            present = self._blocks.pop(block_id, None) is not None
        if present:
            self._charge_delete()
        return present

    def contains(self, block_id: BlockId) -> bool:
        with self._lock:
            return block_id in self._blocks

    def block_ids(self) -> Iterable[BlockId]:
        with self._lock:
            return list(self._blocks.keys())

    def namespaces(self) -> List[str]:
        """Live logical objects -- the 'number of files' metadata pressure."""
        with self._lock:
            return sorted({bid.namespace for bid in self._blocks})

    def namespace_block_ids(self, namespace: str) -> List[BlockId]:
        """All block ids of one object, sorted by ordinal."""
        with self._lock:
            ids = [bid for bid in self._blocks if bid.namespace == namespace]
        return sorted(ids, key=lambda b: b.ordinal)

    @property
    def object_count(self) -> int:
        with self._lock:
            return len({bid.namespace for bid in self._blocks})

    @property
    def used_bytes(self) -> int:
        with self._lock:
            return sum(b.size for b in self._blocks.values())

    @property
    def write_amplification_bytes(self) -> int:
        """Total bytes ever written -- numerator of write amplification."""
        with self._lock:
            return self._total_bytes_ever_written
