"""Block abstraction shared by every storage tier.

Umzi stores an index run as one header block plus fixed-size data blocks
(paper section 4.2).  Shared storage moves data at block granularity only
(section 7: purged runs are fetched "on a block-basis"), so the block is the
unit of every read, write, transfer, and cache decision in this codebase.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class BlockId:
    """Globally unique identifier of a stored block.

    ``namespace`` groups the blocks of one logical object (e.g. one index
    run or one groomed data block file); ``ordinal`` is the block's position
    within that object.  Ordinal 0 is conventionally the header block of an
    index run.
    """

    namespace: str
    ordinal: int

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.namespace}#{self.ordinal}"


@dataclass(frozen=True)
class Block:
    """An immutable block of bytes.

    Blocks are immutable by design: shared storage (HDFS, S3, ...) does not
    support in-place updates, and Umzi never needs them -- new data always
    goes into new runs.
    """

    block_id: BlockId
    payload: bytes

    @property
    def size(self) -> int:
        return len(self.payload)
