"""Per-index access-path statistics, zero-decode (ISSUE 9, layer 1).

Everything the cost model consumes is already sitting in run headers:
entry counts, levels, Bloom availability, and the per-key-column
min/max synopses the paper's run-pruning uses (section 4.3).  This
module folds the current version's headers into one
:class:`AccessPathSynopsis` per index -- no entry is decoded, no block
is read (headers are resident after publication) -- and caches the
result keyed on the index's versionset publication sequence, so the
statistics refresh themselves across every groom/evolve/merge exactly
when the run lists change and never otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.definition import ColumnType
from repro.core.run import ColumnRange


@dataclass(frozen=True)
class AccessPathSynopsis:
    """One index's planner-facing statistics at one version.

    ``key_ranges`` is the position-wise union of the visible runs'
    synopsis ranges over the index's key columns (equality then sort
    order); ``distinct_prefix[i]`` estimates the distinct count of the
    first ``i`` key columns (``[0] == 1``), derived from INT64 range
    spans and the bounded string-prefix sketch of
    :func:`_string_prefix_span`, capped at the entry count -- a
    deliberately cheap estimate whose only job is ranking candidate
    paths.
    """

    index_name: str
    version_seq: int
    run_count: int
    entry_count: int
    level_entry_counts: Tuple[Tuple[int, int], ...]
    bloom_runs: int
    key_ranges: Tuple[Optional[ColumnRange], ...]
    key_types: Tuple[ColumnType, ...]
    distinct_prefix: Tuple[int, ...]
    # Secondary entries ghosted by key-column updates (ISSUE 10): any
    # nonzero count disqualifies this index from index-only plans unless
    # the query opts into stale included columns.
    pending_ghosts: int = 0

    def all_runs_bloomed(self) -> bool:
        """Every visible run carries a Bloom filter (point-probe discount)."""
        return self.run_count > 0 and self.bloom_runs == self.run_count


def _string_prefix_span(
    low: str, high: str, observed: int, cap: int
) -> int:
    """Distinct-count sketch for a STRING key column, zero decodes.

    The old fallback pinned string columns at the entry-count cap, which
    made every string-keyed secondary look maximally selective per
    column and priced realistic scans absurdly low (ISSUE 10).  This
    sketch reads only the merged min/max bounds the run headers already
    carry: strip the common prefix, interpret the next (at most) two
    characters of each bound as a big-endian integer, and use the span
    between them.  ``c0``/``c4`` gives exactly 5; ``c00``/``c15`` gives
    262 -- an overestimate, but orders of magnitude closer than the cap.
    ``observed`` (distinct boundary values actually seen across run
    headers) supplies a floor, and the entry count a ceiling.
    """
    prefix = 0
    limit = min(len(low), len(high))
    while prefix < limit and low[prefix] == high[prefix]:
        prefix += 1
    tail = min(2, limit - prefix)
    if tail <= 0:
        span = 1 if low == high else 2
    else:
        low_num = high_num = 0
        for pos in range(prefix, prefix + tail):
            low_num = (low_num << 8) + ord(low[pos])
            high_num = (high_num << 8) + ord(high[pos])
        span = high_num - low_num + 1
    return max(1, min(cap, max(span, observed)))


def build_synopsis(shard_index, version_seq: int) -> AccessPathSynopsis:
    """Fold one index's visible run headers into an AccessPathSynopsis."""
    index = shard_index.index
    key_specs = index.definition.key_columns
    width = len(key_specs)
    runs = index.visible_runs()
    entry_count = 0
    bloom_runs = 0
    levels: Dict[int, int] = {}
    merged: List[Optional[ColumnRange]] = [None] * width
    bounds_seen: List[set] = [set() for _ in range(width)]
    for run in runs:
        header = run.header
        entry_count += header.entry_count
        levels[header.level] = levels.get(header.level, 0) + header.entry_count
        if header.bloom_blob is not None:
            bloom_runs += 1
        ranges = header.synopsis.ranges
        for pos in range(min(width, len(ranges))):
            found = ranges[pos]
            if found is None:
                continue
            bounds_seen[pos].add(found.min_value)
            bounds_seen[pos].add(found.max_value)
            current = merged[pos]
            merged[pos] = found if current is None else ColumnRange(
                min(current.min_value, found.min_value),
                max(current.max_value, found.max_value),
            )
    cap = max(1, entry_count)
    distinct: List[int] = [1]
    running = 1
    for pos, spec in enumerate(key_specs):
        column_range = merged[pos]
        if spec.ctype is ColumnType.INT64 and column_range is not None:
            span = int(column_range.max_value) - int(column_range.min_value) + 1
            per_column = max(1, min(cap, span))
        elif spec.ctype is ColumnType.STRING and column_range is not None:
            per_column = _string_prefix_span(
                str(column_range.min_value),
                str(column_range.max_value),
                len(bounds_seen[pos]),
                cap,
            )
        else:
            per_column = cap
        running = min(cap, running * per_column)
        distinct.append(running)
    return AccessPathSynopsis(
        index_name=shard_index.name,
        version_seq=version_seq,
        run_count=len(runs),
        entry_count=entry_count,
        level_entry_counts=tuple(sorted(levels.items())),
        bloom_runs=bloom_runs,
        key_ranges=tuple(merged),
        key_types=tuple(spec.ctype for spec in key_specs),
        distinct_prefix=tuple(distinct),
        pending_ghosts=getattr(shard_index, "ghost_entries", 0),
    )


class SynopsisCatalog:
    """Shard-level cache of per-index synopses, version-seq refreshed.

    The versionset publication hook already increments
    ``lifecycle.version_seq`` on *every* run-list mutation, so freshness
    is one integer compare: a cached synopsis is served while its
    sequence matches, and rebuilt (again zero-decode) the first time a
    planner call observes a newer publication.  The sequence is read
    *before* the headers are collected, so a publication racing the
    rebuild at worst re-stamps the cache with an already-stale sequence
    and the next call rebuilds again -- conservative, never wrong.
    """

    def __init__(self, indexes) -> None:
        # Duck-typed ShardIndexes: needs .get(name) -> ShardIndex and
        # .names(); keeps the planner package free of wildfire imports.
        self._indexes = indexes
        self._cache: Dict[str, AccessPathSynopsis] = {}

    def synopsis(self, name: str) -> AccessPathSynopsis:
        shard_index = self._indexes.get(name)
        seq = shard_index.index.lifecycle.version_seq
        cached = self._cache.get(name)
        if cached is not None and cached.version_seq == seq:
            return cached
        built = build_synopsis(shard_index, seq)
        self._cache[name] = built
        return built

    def snapshot(self) -> Dict[str, AccessPathSynopsis]:
        """Fresh synopses for every index of the shard (tests, tools)."""
        return {name: self.synopsis(name) for name in self._indexes.names()}


__all__ = ["AccessPathSynopsis", "SynopsisCatalog", "build_synopsis"]
