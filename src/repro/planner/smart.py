"""The cost-based planner (ISSUE 9, layer 2).

Candidate paths: the primary point/scan, each secondary's prefix scan
with RID fetch-back against the primary, and **index-only** variants
when the index's entry columns (key + included) cover the projection
and every residual predicate is entry-checkable.  Costs come entirely
from :class:`~repro.planner.stats.AccessPathSynopsis` -- run counts,
Bloom availability, entry counts, and the distinct-prefix estimate --
so planning reads no blocks and decodes no entries.

The constants are relative weights, not nanoseconds: a run probe is a
few block reads of binary search, a Bloom-gated probe mostly skips
runs, an entry scanned in bulk is cheap, and a record fetch is the
expensive step the paper's included columns exist to avoid (section
4.1: included columns "enable index-only plans").  Ties break
deterministically: primary first, then index name.

**Index-only staleness** (fixed in ISSUE 10): secondary entries carry
no endTS, so an index-only answer is exact only when the row's
*secondary key columns* are stable across versions (included columns
may change freely -- versions of one row share the full entry key and
reconcile newest-wins).  Shards track ghosted entries at groom time
(:meth:`ShardIndexes._track_ghosts`) and surface the count through the
synopsis; any nonzero ``pending_ghosts`` disqualifies that secondary
from index-only plans unless the query sets ``allow_stale_included``
(the ablation flag preserving the old fast-but-stale behavior).
Fetch-back plans re-check every predicate on the fetched record and
are always exact.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.definition import ColumnType
from repro.planner.plan import (
    AccessPlan,
    CandidateShape,
    PlanError,
    Query,
    candidate_shape,
    shape_to_plan,
)
from repro.planner.stats import AccessPathSynopsis, SynopsisCatalog

RUN_PROBE_COST = 2.0  # binary-search a run (header + a couple of blocks)
BLOOM_PROBE_COST = 0.5  # point probe when every run is Bloom-gated
ENTRY_SCAN_COST = 0.05  # one entry streamed through a range scan
RECORD_FETCH_COST = 4.0  # resolve a RID through the block catalog
FETCH_BACK_PROBE_COST = 2.0  # one primary point lookup per secondary hit


def _range_fraction(
    shape: CandidateShape, synopsis: AccessPathSynopsis
) -> float:
    """Estimated selectivity of the consumed range predicate (1.0 if none)."""
    if shape.range_column is None:
        return 1.0
    position = shape.bound_prefix
    if (
        position < len(synopsis.key_types)
        and synopsis.key_types[position] is ColumnType.INT64
        and synopsis.key_ranges[position] is not None
    ):
        column_range = synopsis.key_ranges[position]
        domain_low = int(column_range.min_value)
        domain_high = int(column_range.max_value)
        low = domain_low if shape.range_low is None else int(shape.range_low)
        high = (
            domain_high if shape.range_high is None else int(shape.range_high)
        )
        low = max(low, domain_low)
        high = min(high, domain_high)
        if high < low:
            return 0.0
        return min(1.0, (high - low + 1) / (domain_high - domain_low + 1))
    return 0.5  # non-integer or unknown domain: the classic fallback


def _estimate_rows(
    shape: CandidateShape, synopsis: AccessPathSynopsis
) -> float:
    cap = max(1, synopsis.entry_count)
    prefix = min(shape.bound_prefix, len(synopsis.distinct_prefix) - 1)
    rows = cap / synopsis.distinct_prefix[prefix]
    return rows * _range_fraction(shape, synopsis)


def _cost(
    shape: CandidateShape,
    synopsis: AccessPathSynopsis,
    rows_est: float,
    index_only: bool,
) -> float:
    if shape.mode == "point" and synopsis.all_runs_bloomed():
        probe = synopsis.run_count * BLOOM_PROBE_COST
    else:
        probe = synopsis.run_count * RUN_PROBE_COST
    scan = rows_est * ENTRY_SCAN_COST
    if index_only:
        fetch = 0.0
    elif shape.is_primary:
        fetch = rows_est * RECORD_FETCH_COST
    else:
        fetch = rows_est * (FETCH_BACK_PROBE_COST + RECORD_FETCH_COST)
    return probe + scan + fetch


def plan_smart(
    query: Query, schema, indexes, catalog: SynopsisCatalog
) -> AccessPlan:
    """Compile ``query`` to the cheapest candidate access path."""
    names = list(indexes.names())
    if query.index_hint is not None:
        if query.index_hint not in names:
            raise PlanError(f"index_hint names unknown index "
                            f"{query.index_hint!r} (have {names})")
        names = [query.index_hint]
    scored: List[
        Tuple[float, int, str, CandidateShape, bool, float]
    ] = []
    considered: List[Dict[str, object]] = []
    for name in names:
        shard_index = indexes.get(name)
        is_primary = name == "primary"
        shape = candidate_shape(
            query, schema, shard_index, is_primary=is_primary
        )
        if shape is None:
            continue
        synopsis = catalog.synopsis(name)
        rows_est = _estimate_rows(shape, synopsis)
        variants = [False]
        if shape.covers_projection and not shape.record_residuals:
            # ISSUE 10 bugfix: a secondary holding ghost entries (a key
            # column changed across versions, leaving the old entry
            # visible under its old key) cannot serve index-only answers
            # -- only the fetch-back's record re-check filters ghosts.
            ghosted = (
                not is_primary
                and synopsis.pending_ghosts > 0
                and not query.allow_stale_included
            )
            if not ghosted:
                variants.append(True)
        for index_only in variants:
            cost = _cost(shape, synopsis, rows_est, index_only)
            scored.append(
                (cost, 0 if is_primary else 1, name, shape,
                 index_only, rows_est)
            )
            considered.append({
                "index": name,
                "mode": shape.mode,
                "index_only": index_only,
                "cost": round(cost, 4),
                "rows_est": round(rows_est, 4),
            })
    if not scored:
        raise PlanError(
            "no index can serve the query: every index leaves some "
            "equality column unbound "
            f"(predicates: {list(query.predicate_columns())})"
        )
    scored.sort(key=lambda item: (item[0], item[1], item[2], not item[4]))
    cost, _, name, shape, index_only, rows_est = scored[0]
    return shape_to_plan(
        shape,
        query,
        schema,
        indexes.get(name),
        planner="smart",
        index_only=index_only,
        cost=cost,
        rows_est=rows_est,
        considered=tuple(considered),
    )


__all__ = [
    "BLOOM_PROBE_COST",
    "ENTRY_SCAN_COST",
    "FETCH_BACK_PROBE_COST",
    "RECORD_FETCH_COST",
    "RUN_PROBE_COST",
    "plan_smart",
]
