"""Cost-based access-path planning over a shard's indexes (ISSUE 9).

The paper's Umzi design maintains multiple LSM-style indexes per table
(section 10 names secondary-index maintenance as the extension point);
this package decides *which* index answers a typed :class:`Query` and
*how* -- primary point/batch/range, secondary prefix scan with RID
fetch-back against the primary, or an **index-only** answer served
entirely from a covering index's entry columns.

Layers (mirroring DevilsDatabase's ``planner/baseline.py`` vs
``planner/smart.py`` split, per ROADMAP):

* :mod:`repro.planner.stats` -- :class:`AccessPathSynopsis` per index,
  assembled from run headers without a single entry decode and kept
  fresh across evolve/merge via the versionset publication sequence;
* :mod:`repro.planner.plan` -- the typed :class:`Query`, the executable
  :class:`AccessPlan` (every plan renders an ``explain()`` dict), and
  the hinted-plan path the legacy wrapper methods ride;
* :mod:`repro.planner.baseline` -- always the primary index, never
  index-only: today's behaviour, kept as the ablation arm;
* :mod:`repro.planner.smart` -- the cost model over all candidate
  paths (benchmarks/bench_access_path.py counter-asserts its savings).
"""

from repro.planner.baseline import plan_baseline
from repro.planner.plan import (
    AccessPlan,
    PlanError,
    Predicate,
    Query,
    plan_hinted,
)
from repro.planner.smart import plan_smart
from repro.planner.stats import AccessPathSynopsis, SynopsisCatalog

__all__ = [
    "AccessPathSynopsis",
    "AccessPlan",
    "PlanError",
    "Predicate",
    "Query",
    "SynopsisCatalog",
    "plan_baseline",
    "plan_hinted",
    "plan_smart",
]
