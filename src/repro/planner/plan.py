"""Typed queries and executable access plans (ISSUE 9, layer 2).

A :class:`Query` describes *what* is wanted -- per-column equality and
range predicates plus a projection -- without naming an index or an
access mode; the planners (:mod:`repro.planner.baseline`,
:mod:`repro.planner.smart`) compile it into an :class:`AccessPlan`
describing *how*: which index, point vs scan, which predicates bind the
key prefix, which remain as entry-level residuals (checkable on index
entries without fetching a record) or record-level residuals (forcing a
record fetch), whether the answer is index-only, and whether secondary
hits must be resolved against the primary by RID (the fetch-back path).

The legacy wrapper methods (``index_lookup``/``range_query``/
``secondary_*``) ride the *hinted* path: they construct a Query carrying
``index_hint`` + ``mode`` + raw lexicographic sort bounds, and
:func:`plan_hinted` passes everything through verbatim -- same index
calls, same arity errors, same counters as before the refactor, and no
statistics work on the hot path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.encoding import KeyValue

QUERY_MODES = ("point", "scan", "batch")


class PlanError(ValueError):
    """The query cannot be planned (unbound key columns, bad hint...)."""


@dataclass(frozen=True)
class Predicate:
    """One residual predicate, pre-resolved for the executor.

    ``slot`` locates the column inside an index entry (``("eq", i)`` /
    ``("sort", i)`` / ``("incl", i)``) for entry-level checks; ``position``
    is the column's table-schema position for record-level re-checks.
    """

    column: str
    kind: str  # "eq" | "range"
    value: Optional[KeyValue] = None
    low: Optional[KeyValue] = None
    high: Optional[KeyValue] = None
    slot: Optional[Tuple[str, int]] = None
    position: Optional[int] = None

    def matches(self, value: KeyValue) -> bool:
        if self.kind == "eq":
            return value == self.value
        if self.low is not None and value < self.low:
            return False
        if self.high is not None and value > self.high:
            return False
        return True


@dataclass(frozen=True)
class Query:
    """A typed query over one table: predicates + projection.

    ``equalities`` and ``ranges`` (both inclusive) name columns; a column
    may appear in at most one of them.  ``projection=None`` means the
    full row.  The remaining fields exist for the *hinted* wrapper path
    only: ``mode`` pins the access mode, ``sort_lower``/``sort_upper``
    carry raw lexicographic sort-key prefix bounds (not expressible as
    per-column predicates), and ``batch_keys`` carries a batched point
    lookup's key list.  Hinted fields require ``index_hint``; a bare
    ``index_hint`` without ``mode`` restricts the smart planner's
    candidates to that index instead.
    """

    equalities: Tuple[Tuple[str, KeyValue], ...] = ()
    ranges: Tuple[Tuple[str, Optional[KeyValue], Optional[KeyValue]], ...] = ()
    projection: Optional[Tuple[str, ...]] = None
    query_ts: Optional[int] = None
    index_hint: Optional[str] = None
    mode: Optional[str] = None
    sort_lower: Optional[Tuple[KeyValue, ...]] = None
    sort_upper: Optional[Tuple[KeyValue, ...]] = None
    batch_keys: Optional[
        Tuple[Tuple[Tuple[KeyValue, ...], Tuple[KeyValue, ...]], ...]
    ] = None
    fetch_records: bool = True
    # Ablation escape hatch (ISSUE 10): a secondary that has accumulated
    # ghost entries (a key-column update left the old entry visible under
    # its old key) is disqualified from index-only plans, because only a
    # record re-check can filter the ghosts.  Setting this True restores
    # the old fast-but-stale behavior for measurement.
    allow_stale_included: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "equalities", tuple(
            (str(c), v) for c, v in self.equalities
        ))
        object.__setattr__(self, "ranges", tuple(
            (str(c), lo, hi) for c, lo, hi in self.ranges
        ))
        if self.projection is not None:
            object.__setattr__(self, "projection", tuple(self.projection))
        named = [c for c, _ in self.equalities] + [c for c, _, _ in self.ranges]
        if len(set(named)) != len(named):
            raise PlanError(f"column bound more than once: {sorted(named)}")
        if self.mode is not None:
            if self.mode not in QUERY_MODES:
                raise PlanError(
                    f"mode must be one of {QUERY_MODES}; got {self.mode!r}"
                )
            if self.index_hint is None:
                raise PlanError("mode requires index_hint (wrapper path)")
        else:
            for label, value in (
                ("sort_lower", self.sort_lower),
                ("sort_upper", self.sort_upper),
                ("batch_keys", self.batch_keys),
            ):
                if value is not None:
                    raise PlanError(
                        f"{label} is a hinted-path field and requires mode"
                    )
        if self.batch_keys is not None and self.mode != "batch":
            raise PlanError("batch_keys requires mode='batch'")

    def predicate_columns(self) -> Tuple[str, ...]:
        return tuple(
            [c for c, _ in self.equalities] + [c for c, _, _ in self.ranges]
        )


@dataclass(frozen=True)
class AccessPlan:
    """An executable access path, ready for the shard executor.

    ``equality_values``/``sort_values``/``sort_lower``/``sort_upper`` are
    positional arguments for ``UmziIndex.lookup``/``scan`` on
    ``index_name``.  ``entry_residuals`` filter entries before any record
    work; ``record_checks`` are re-applied to every fetched record (for
    fetch-back plans they are *all* the query's predicates, which is what
    makes secondary answers byte-identical to the primary path even when
    a stale secondary entry surfaces a since-changed row).  ``pk_slots``
    extract the primary-key tuple from an entry; ``projection_slots``
    (index-only) and ``projection_positions`` (record plans) render the
    output row.
    """

    index_name: str
    mode: str
    planner: str
    equality_values: Tuple[KeyValue, ...] = ()
    sort_values: Tuple[KeyValue, ...] = ()
    sort_lower: Optional[Tuple[KeyValue, ...]] = None
    sort_upper: Optional[Tuple[KeyValue, ...]] = None
    batch_keys: Optional[
        Tuple[Tuple[Tuple[KeyValue, ...], Tuple[KeyValue, ...]], ...]
    ] = None
    index_only: bool = False
    fetch_back: bool = False
    fetch_records: bool = True
    entry_residuals: Tuple[Predicate, ...] = ()
    record_checks: Tuple[Predicate, ...] = ()
    pk_slots: Tuple[Tuple[str, int], ...] = ()
    projection: Tuple[str, ...] = ()
    projection_slots: Tuple[Tuple[str, int], ...] = ()
    projection_positions: Tuple[int, ...] = ()
    cost: float = 0.0
    rows_est: float = 0.0
    bound_prefix: int = 0
    range_column: Optional[str] = None
    hinted: bool = False
    considered: Tuple[Mapping[str, object], ...] = ()

    def explain(self) -> Dict[str, object]:
        """Render the plan for tests, golden files, and the dev helper."""
        return {
            "planner": self.planner,
            "index": self.index_name,
            "mode": self.mode,
            "index_only": self.index_only,
            "fetch_back": self.fetch_back,
            "bound_prefix": self.bound_prefix,
            "range_column": self.range_column,
            "entry_residuals": [p.column for p in self.entry_residuals],
            "record_checks": [p.column for p in self.record_checks],
            "rows_est": round(self.rows_est, 4),
            "cost": round(self.cost, 4),
            "hinted": self.hinted,
            "candidates": [dict(c) for c in self.considered],
        }


# ---------------------------------------------------------------------------
# entry-slot resolution
# ---------------------------------------------------------------------------


def entry_slot(spec, column: str) -> Optional[Tuple[str, int]]:
    """Locate ``column`` inside entries of an index with ``spec``.

    Secondary specs are stored primary-key-suffixed (see
    ``ShardIndexes.add_secondary``), so every primary-key column of the
    table resolves to a slot on every index -- the invariant the
    fetch-back path and entry tagging rely on.
    """
    if column in spec.equality_columns:
        return ("eq", spec.equality_columns.index(column))
    if column in spec.sort_columns:
        return ("sort", spec.sort_columns.index(column))
    if column in spec.included_columns:
        return ("incl", spec.included_columns.index(column))
    return None


def entry_value(entry, slot: Tuple[str, int]) -> KeyValue:
    kind, i = slot
    if kind == "eq":
        return entry.equality_values[i]
    if kind == "sort":
        return entry.sort_values[i]
    return entry.include_values[i]


# ---------------------------------------------------------------------------
# candidate construction (shared by baseline and smart)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CandidateShape:
    """How one index can serve a query, before costing."""

    index_name: str
    is_primary: bool
    mode: str  # "point" | "scan"
    equality_values: Tuple[KeyValue, ...]
    sort_values: Tuple[KeyValue, ...]
    sort_lower: Optional[Tuple[KeyValue, ...]]
    sort_upper: Optional[Tuple[KeyValue, ...]]
    bound_prefix: int
    range_column: Optional[str]
    range_low: Optional[KeyValue]
    range_high: Optional[KeyValue]
    entry_residuals: Tuple[Predicate, ...]
    record_residuals: Tuple[Predicate, ...]
    covers_projection: bool


def _predicate(query: Query, schema, spec, column: str) -> Predicate:
    for name, value in query.equalities:
        if name == column:
            return Predicate(
                column=column, kind="eq", value=value,
                slot=entry_slot(spec, column),
                position=schema.position(column),
            )
    for name, low, high in query.ranges:
        if name == column:
            return Predicate(
                column=column, kind="range", low=low, high=high,
                slot=entry_slot(spec, column),
                position=schema.position(column),
            )
    raise PlanError(f"column {column!r} is not bound by the query")


def candidate_shape(
    query: Query, schema, shard_index, is_primary: bool
) -> Optional[CandidateShape]:
    """Shape one index as a candidate path, or None if unusable.

    An index is usable when every equality column is equality-bound;
    sort columns then consume an equality prefix plus at most one range
    predicate (``compute_scan_bounds`` makes a bound-prefix upper bound
    inclusive of all extensions, so prefix bounds need no padding).
    Unconsumed predicates become entry-level residuals when the column
    lives in the entry (key or included columns) and record-level
    residuals otherwise.
    """
    spec = shard_index.spec
    eq_map = dict(query.equalities)
    range_map = {c: (lo, hi) for c, lo, hi in query.ranges}
    for column in query.predicate_columns():
        schema.position(column)  # raises SchemaError on unknown columns
    used: set = set()
    equality_values: List[KeyValue] = []
    for column in spec.equality_columns:
        if column not in eq_map:
            return None
        equality_values.append(eq_map[column])
        used.add(column)
    prefix: List[KeyValue] = []
    range_column: Optional[str] = None
    range_low: Optional[KeyValue] = None
    range_high: Optional[KeyValue] = None
    for column in spec.sort_columns:
        if column in eq_map:
            prefix.append(eq_map[column])
            used.add(column)
            continue
        if column in range_map:
            range_column = column
            range_low, range_high = range_map[column]
            used.add(column)
        break
    residual_columns = [
        c for c in query.predicate_columns() if c not in used
    ]
    entry_residuals: List[Predicate] = []
    record_residuals: List[Predicate] = []
    for column in residual_columns:
        predicate = _predicate(query, schema, spec, column)
        if predicate.slot is not None:
            entry_residuals.append(predicate)
        else:
            record_residuals.append(predicate)
    is_point = (
        range_column is None and len(prefix) == len(spec.sort_columns)
    )
    if is_point:
        mode = "point"
        sort_lower = sort_upper = None
        sort_values = tuple(prefix)
    else:
        mode = "scan"
        sort_values = ()
        if range_column is not None:
            sort_lower = (
                tuple(prefix) + (range_low,) if range_low is not None
                else (tuple(prefix) or None)
            )
            sort_upper = (
                tuple(prefix) + (range_high,) if range_high is not None
                else (tuple(prefix) or None)
            )
        else:
            sort_lower = sort_upper = tuple(prefix) or None
    projection = (
        query.projection if query.projection is not None
        else schema.column_names
    )
    covers = all(entry_slot(spec, c) is not None for c in projection)
    return CandidateShape(
        index_name=shard_index.name,
        is_primary=is_primary,
        mode=mode,
        equality_values=tuple(equality_values),
        sort_values=sort_values,
        sort_lower=sort_lower,
        sort_upper=sort_upper,
        bound_prefix=len(equality_values) + len(prefix),
        range_column=range_column,
        range_low=range_low,
        range_high=range_high,
        entry_residuals=tuple(entry_residuals),
        record_residuals=tuple(record_residuals),
        covers_projection=covers,
    )


def shape_to_plan(
    shape: CandidateShape,
    query: Query,
    schema,
    shard_index,
    *,
    planner: str,
    index_only: bool,
    cost: float = 0.0,
    rows_est: float = 0.0,
    considered: Tuple[Mapping[str, object], ...] = (),
) -> AccessPlan:
    """Materialize a costed shape into an executable AccessPlan."""
    spec = shard_index.spec
    projection = (
        query.projection if query.projection is not None
        else schema.column_names
    )
    pk_slots = tuple(
        entry_slot(spec, column) for column in schema.primary_key
    )
    if any(slot is None for slot in pk_slots):
        raise PlanError(
            f"index {shape.index_name!r} cannot recover the primary key"
        )
    fetch_back = (not shape.is_primary) and not index_only
    if index_only:
        record_checks: Tuple[Predicate, ...] = ()
        projection_slots = tuple(
            entry_slot(spec, column) for column in projection
        )
    elif fetch_back:
        # Re-check EVERY predicate on the fetched record: a secondary
        # entry has no endTS, so a since-changed row can surface under
        # its old key; the record re-check drops it, keeping fetch-back
        # answers byte-identical to the primary path.
        record_checks = tuple(
            _predicate(query, schema, spec, column)
            for column in query.predicate_columns()
        )
        projection_slots = ()
    else:
        record_checks = shape.record_residuals
        projection_slots = ()
    return AccessPlan(
        index_name=shape.index_name,
        mode=shape.mode,
        planner=planner,
        equality_values=shape.equality_values,
        sort_values=shape.sort_values,
        sort_lower=shape.sort_lower,
        sort_upper=shape.sort_upper,
        index_only=index_only,
        fetch_back=fetch_back,
        entry_residuals=shape.entry_residuals,
        record_checks=record_checks,
        pk_slots=pk_slots,
        projection=projection,
        projection_slots=projection_slots,
        projection_positions=schema.positions(projection),
        cost=cost,
        rows_est=rows_est,
        bound_prefix=shape.bound_prefix,
        range_column=shape.range_column,
        considered=considered,
    )


# ---------------------------------------------------------------------------
# the hinted path (legacy wrappers)
# ---------------------------------------------------------------------------


def plan_hinted(query: Query, schema, indexes) -> AccessPlan:
    """Pass-through plan for the wrapper methods (``mode`` is set).

    Everything is forwarded verbatim -- equality values in the order the
    caller gave them, raw sort bounds untouched -- so arity mismatches
    and type errors still surface from ``UmziIndex.lookup``/``scan``
    exactly as they did before the refactor, and the hot path does no
    statistics work at all.
    """
    if query.index_hint is None or query.mode is None:
        raise PlanError("plan_hinted requires index_hint and mode")
    try:
        indexes.get(query.index_hint)
    except KeyError as exc:
        raise PlanError(str(exc)) from exc
    return AccessPlan(
        index_name=query.index_hint,
        mode=query.mode,
        planner="hinted",
        equality_values=tuple(v for _, v in query.equalities),
        sort_values=query.sort_lower or () if query.mode == "point" else (),
        sort_lower=query.sort_lower if query.mode == "scan" else None,
        sort_upper=query.sort_upper if query.mode == "scan" else None,
        batch_keys=query.batch_keys,
        fetch_records=query.fetch_records,
        hinted=True,
    )


__all__ = [
    "AccessPlan",
    "CandidateShape",
    "PlanError",
    "Predicate",
    "Query",
    "candidate_shape",
    "entry_slot",
    "entry_value",
    "plan_hinted",
    "shape_to_plan",
]
