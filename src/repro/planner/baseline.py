"""The baseline planner: always the primary index (ISSUE 9, layer 2).

Pre-planner behaviour, preserved as the ablation arm (DevilsDatabase's
``planner/baseline.py`` role): every query runs against the primary
index, every answer fetches records, and no plan is ever index-only.
Predicates that bind the primary key prefix are used for the
point/scan bounds (exactly what a caller hand-picking
``index_lookup``/``range_query`` would have done); everything else is
re-checked on the fetched records.  No statistics are consulted.
"""

from __future__ import annotations

from dataclasses import replace

from repro.planner.plan import (
    AccessPlan,
    PlanError,
    Query,
    candidate_shape,
    shape_to_plan,
)


def plan_baseline(query: Query, schema, indexes) -> AccessPlan:
    """Compile ``query`` against the primary index only."""
    primary = indexes.get("primary")
    shape = candidate_shape(query, schema, primary, is_primary=True)
    if shape is None:
        raise PlanError(
            "baseline planner requires every primary equality column to be "
            f"bound; primary equality columns: "
            f"{list(primary.spec.equality_columns)}"
        )
    # Baseline never trusts entry columns: every residual -- entry-level
    # or not -- is re-checked on the fetched record, and the entry-level
    # prefilter is dropped so the executor does exactly the legacy work.
    shape = replace(
        shape,
        entry_residuals=(),
        record_residuals=shape.entry_residuals + shape.record_residuals,
    )
    return shape_to_plan(
        shape, query, schema, primary, planner="baseline", index_only=False
    )


__all__ = ["plan_baseline"]
