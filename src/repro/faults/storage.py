"""FaultyTier: a SharedStorage that executes a FaultPlan (ISSUE 6).

Drop-in replacement for :class:`~repro.storage.shared.SharedStorage`
(same class, subclassed) that injects the plan's storage faults at the
tier boundary, so *all* production code above it -- builder, journal,
recovery, queries -- runs unmodified against a hostile store:

* **Torn writes** are *silent*: ``write`` returns normally but the block
  never lands.  That is the realistic failure -- a process that dies
  mid-upload gets no error either; the loss is only discoverable by
  reading back (which is exactly what recovery validation does).  The
  local write-through copy still lands, so the writing "process" keeps
  functioning until it crashes -- the paper's durability story is about
  what *shared storage* holds afterwards.
* **Bit rot** mutates an already-stored data block after a later write
  completes; the v3 per-block CRC32 must catch it during recovery.
* **Transient faults** raise :class:`TransientIOError` for a bounded
  number of consecutive attempts; the hierarchy's retry loop absorbs
  them.  ``set_outage(True)`` makes every op fail until cleared, for
  give-up and degraded-mode tests.

Every injected fault increments the ``IOStats.faults`` ledger, so tests
assert injection really happened (a schedule that never fires proves
nothing).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.faults.plan import BrownoutWindow, FaultPlan, TornWrite
from repro.storage.block import Block, BlockId
from repro.storage.metrics import IOStats
from repro.storage.retry import TransientIOError
from repro.storage.shared import (
    DEFAULT_SHARED_READ,
    DEFAULT_SHARED_WRITE,
    SharedStorage,
)
from repro.storage.tier import LatencyModel


class FaultyTier(SharedStorage):
    """Shared storage driven by a seeded :class:`FaultPlan`.

    ``run_prefix`` scopes structural faults (torn writes, bit rot) to
    index-run namespaces (``"<name>-run"`` matches ``<name>-run-g-...``
    and ``<name>-run-p-...``); transient faults hit every namespace,
    including the metadata journal.
    """

    def __init__(
        self,
        plan: FaultPlan,
        run_prefix: str,
        stats: Optional[IOStats] = None,
        read_latency: LatencyModel = DEFAULT_SHARED_READ,
        write_latency: LatencyModel = DEFAULT_SHARED_WRITE,
    ) -> None:
        super().__init__(stats, read_latency, write_latency)
        self.plan = plan
        self.run_prefix = run_prefix
        self._outage = False
        # Torn writes by target persist ordinal; a persist is observed
        # as a header (ordinal 0) write to a fresh run namespace.
        self._tears_by_persist: Dict[int, TornWrite] = {
            t.persist_ordinal: t for t in plan.torn_writes
        }
        self._persist_seq = 0
        self._active_tears: Dict[str, TornWrite] = {}  # namespace -> tear
        self._data_kept: Dict[str, int] = {}  # torn namespace -> kept blocks
        # Transient faults by trigger op ordinal -> consecutive failures.
        self._transient_by_op: Dict[int, int] = {
            t.op_ordinal: t.failures for t in plan.transient
        }
        self._op_seq = 0
        self._pending_failures = 0
        # Brownout windows (ISSUE 7): active windows as (anchor_op,
        # failing-offset set, length) triples.  Absolute windows
        # (start_op set) self-anchor when their start op arrives;
        # relative ones are anchored by start_brownout().
        self._brownouts_pending: List[BrownoutWindow] = [
            w for w in plan.brownouts if w.start_op is not None
        ]
        self._brownouts_active: List[Tuple[int, frozenset, int]] = []
        # Bit rot by data-block-write ordinal (run namespaces only).
        self._rot_by_write = {r.after_write_ordinal: r for r in plan.bit_rot}
        self._data_write_seq = 0

    # -- transient faults ------------------------------------------------------

    def set_outage(self, outage: bool) -> None:
        """Hard outage: every op fails until cleared (give-up testing)."""
        self._outage = outage

    def start_brownout(self, window: BrownoutWindow) -> None:
        """Open a brownout window anchored at the *next* tier operation.

        Relative activation: the caller says "brown out now" and the
        window's pregenerated failing-offset table applies to the
        following ``window.length_ops`` operations, whatever their
        absolute ordinals -- one seed still reproduces the whole storm.
        """
        with self._lock:
            self._brownouts_active.append(
                (self._op_seq + 1, frozenset(window.failing_offsets), window.length_ops)
            )

    def brownout_active(self) -> bool:
        """True while a window can still cover a *future* tier operation."""
        with self._lock:
            return any(
                self._op_seq + 1 < anchor + length
                for anchor, _, length in self._brownouts_active
            )

    def _transient_gate(self, is_write: bool) -> None:
        """Raise TransientIOError if this op is scheduled to fail."""
        with self._lock:
            self._op_seq += 1
            failures = self._transient_by_op.pop(self._op_seq, None)
            if failures is not None:
                self._pending_failures += failures
            # Absolute brownout windows self-anchor at their start op.
            for window in list(self._brownouts_pending):
                if window.start_op == self._op_seq:
                    self._brownouts_pending.remove(window)
                    self._brownouts_active.append(
                        (
                            self._op_seq,
                            frozenset(window.failing_offsets),
                            window.length_ops,
                        )
                    )
            in_brownout = any(
                0 <= self._op_seq - anchor < length
                and (self._op_seq - anchor) in offsets
                for anchor, offsets, length in self._brownouts_active
            )
            self._brownouts_active = [
                (anchor, offsets, length)
                for anchor, offsets, length in self._brownouts_active
                if self._op_seq < anchor + length
            ]
            fail = self._outage or self._pending_failures > 0 or in_brownout
            if fail:
                if self._pending_failures > 0 and not self._outage and not in_brownout:
                    self._pending_failures -= 1
                if is_write:
                    self.stats.faults.transient_write_errors += 1
                else:
                    self.stats.faults.transient_read_errors += 1
        if fail:
            raise TransientIOError(
                f"injected transient {'write' if is_write else 'read'} "
                f"failure (op #{self._op_seq})"
            )

    # -- structural faults -----------------------------------------------------

    def _is_run_namespace(self, namespace: str) -> bool:
        return namespace.startswith(self.run_prefix)

    def _tear_decision(self, block_id: BlockId) -> bool:
        """True iff this block of a torn persist must be silently dropped."""
        if not self._is_run_namespace(block_id.namespace):
            return False
        with self._lock:
            if block_id.ordinal == 0:
                # A header write opens a new persist.
                self._persist_seq += 1
                tear = self._tears_by_persist.pop(self._persist_seq, None)
                if tear is None:
                    return False
                self._active_tears[block_id.namespace] = tear
                self._data_kept[block_id.namespace] = 0
                self.stats.faults.torn_writes += 1
                if tear.drop_header:
                    self.stats.faults.dropped_headers += 1
                    return True
                return False
            tear = self._active_tears.get(block_id.namespace)
            if tear is None:
                return False
            kept = self._data_kept[block_id.namespace]
            if kept < tear.keep_data_blocks:
                self._data_kept[block_id.namespace] = kept + 1
                return False
            return True

    def _maybe_rot(self, block_id: BlockId) -> None:
        """After a data-block write lands, maybe rot a stored sibling."""
        if block_id.ordinal == 0 or not self._is_run_namespace(
            block_id.namespace
        ):
            return
        with self._lock:
            self._data_write_seq += 1
            rot = self._rot_by_write.pop(self._data_write_seq, None)
            if rot is None:
                return
            victims = sorted(
                (
                    bid
                    for bid in self._blocks
                    if bid.namespace == block_id.namespace and bid.ordinal > 0
                ),
                key=lambda b: b.ordinal,
            )
            if not victims:
                return
            victim = victims[rot.victim_index % len(victims)]
            payload = self._blocks[victim].payload
            if not payload:
                return
            pos = rot.pos_seed % len(payload)
            rotten = (
                payload[:pos]
                + bytes([payload[pos] ^ rot.xor_mask])
                + payload[pos + 1 :]
            )
            self._blocks[victim] = Block(victim, rotten)
            self.stats.faults.bit_flips += 1

    # -- faulted tier operations -----------------------------------------------

    def write(self, block: Block) -> None:
        self._transient_gate(is_write=True)
        if self._tear_decision(block.block_id):
            return  # silently dropped: the "process" believes it wrote
        super().write(block)
        self._maybe_rot(block.block_id)

    def read(self, block_id: BlockId) -> Optional[Block]:
        self._transient_gate(is_write=False)
        return super().read(block_id)


__all__ = ["FaultyTier"]
