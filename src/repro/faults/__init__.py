"""Seeded fault injection for crash-recovery testing (ISSUE 6).

Public surface:

* :class:`FaultPlan` / :class:`TornWrite` / :class:`BitRot` /
  :class:`TransientFault` / :class:`BrownoutWindow` -- the seeded
  schedule (``plan``).
* :class:`FaultyTier` -- shared storage executing a plan (``storage``).
* :class:`CrashSchedule` / :func:`crash_point` /
  :func:`install_crash_schedule` / ``CRASH_SITES`` -- named process
  crash points (``crash``).
* :class:`SimulatedCrash` / :class:`TransientIOError` -- error types
  (``errors``; ``TransientIOError`` canonically lives in
  ``repro.storage.retry`` so the storage layer never imports this
  package).

``repro.faults.harness`` (the crash/recovery driver + workload
generator used by the property suite) is deliberately *not* imported
here: it pulls in ``repro.core.index``, and importing it eagerly would
create a cycle for any core module that wants ``crash_point``.
"""

from repro.faults.crash import (
    CRASH_SITES,
    CrashSchedule,
    active_schedule,
    crash_point,
    install_crash_schedule,
)
from repro.faults.errors import SimulatedCrash, TransientIOError
from repro.faults.plan import (
    BitRot,
    BrownoutWindow,
    FaultPlan,
    TornWrite,
    TransientFault,
)
from repro.faults.storage import FaultyTier
from repro.storage.retry import DEFAULT_RETRY_POLICY, RetryPolicy

__all__ = [
    "BitRot",
    "BrownoutWindow",
    "CRASH_SITES",
    "CrashSchedule",
    "DEFAULT_RETRY_POLICY",
    "FaultPlan",
    "FaultyTier",
    "RetryPolicy",
    "SimulatedCrash",
    "TornWrite",
    "TransientFault",
    "TransientIOError",
    "active_schedule",
    "crash_point",
    "install_crash_schedule",
]
