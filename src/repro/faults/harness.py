"""Crash/recovery harness: drive one index through a hostile universe.

The byte-identity property (ISSUE 6 tentpole) is checked end to end here:

1. :func:`generate_workload` derives a deterministic op sequence from a
   seed -- groomed ingests over an overlapping key space (so keys
   accumulate multiple versions), evolves in PSN order, maintenance
   passes -- plus the ``beginTS -> post-groomed RID`` map the evolves
   use.
2. :class:`CrashRecoveryDriver` applies the ops against an index whose
   shared tier is a :class:`~repro.faults.storage.FaultyTier` and whose
   crash points follow the plan's :class:`CrashSchedule`.  Every
   simulated crash drops the local tiers *and* the in-memory index (a
   brand-new :class:`UmziIndex` is built over the same storage, exactly
   a fresh process), runs recovery, and **catches up**: ops whose
   effects recovery could not restore (torn persists, lost checkpoints)
   are re-applied from the workload -- the stand-in for Wildfire's
   upstream groomed data blocks, which the paper's recovery story
   re-derives the index from.
3. :func:`collect_answers` snapshots query results -- point, batch,
   range, AS-OF -- as raw entry blobs.  The same workload replayed on a
   fault-free twin (the *oracle*) must produce byte-identical answers.

Crash-at-every-site replay safety is what the catch-up loop proves: no
matter where the process died, re-applying the suffix of un-restored ops
converges to the oracle state (duplicate post-groomed runs from replayed
evolves are reconciled away at query time, section 5.4).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.definition import IndexDefinition
from repro.core.entry import IndexEntry, RID, Zone
from repro.core.index import UmziConfig, UmziIndex
from repro.core.levels import LevelConfig
from repro.core.query import MAX_QUERY_TS, PointLookup
from repro.faults.crash import install_crash_schedule
from repro.faults.errors import SimulatedCrash
from repro.faults.plan import FaultPlan
from repro.faults.storage import FaultyTier
from repro.storage.hierarchy import StorageHierarchy
from repro.storage.memory import MemoryTier
from repro.storage.metrics import IOStats
from repro.storage.shared import SharedStorage
from repro.storage.ssd import SSDTier

# Local tiers big enough that write-through always caches: a torn shared
# write must stay *silent* (the writing process keeps serving from its
# local copy) until a crash wipes the local tiers -- that is the fault
# being modelled, and recovery validates against shared storage only.
_LOCAL_TIER_BYTES = 1 << 30


# -- workload ------------------------------------------------------------------


@dataclass(frozen=True)
class IngestOp:
    """One groom's index build: a groomed run for ``gid``."""

    gid: int
    keys: Tuple[int, ...]
    first_ts: int  # entry i carries beginTS first_ts + i


@dataclass(frozen=True)
class EvolveOp:
    """One post-groom's index evolve over ``[min_gid, max_gid]``."""

    min_gid: int
    max_gid: int


@dataclass(frozen=True)
class MaintainOp:
    """A maintenance pass (merges + cache)."""


@dataclass
class Workload:
    """Deterministic op sequence plus the evolve RID map."""

    seed: int
    ops: List[object]
    rid_by_ts: Dict[int, RID]
    key_space: int

    @property
    def ingest_ops(self) -> List[IngestOp]:
        return [op for op in self.ops if isinstance(op, IngestOp)]


def generate_workload(
    seed: int,
    gids: int = 8,
    keys_per_gid: int = 12,
    key_space: int = 40,
    evolve_every: int = 3,
    maintain_every: int = 4,
) -> Workload:
    """Derive a workload from ``seed`` alone.

    Keys are sampled from a small space so most keys accumulate several
    versions across groom cycles (the reconciliation-sensitive case);
    every entry gets a globally unique ``beginTS``.  Every ``evolve_every``
    ingests an evolve covers the pending gid range, assigning each
    covered ``beginTS`` its post-groomed RID.  Groomed ids start at 1.
    """
    rng = random.Random(seed ^ 0x5EED)
    ops: List[object] = []
    rid_by_ts: Dict[int, RID] = {}
    next_ts = 1
    pending_min: Optional[int] = None
    for gid in range(1, gids + 1):
        keys = tuple(rng.randrange(key_space) for _ in range(keys_per_gid))
        ops.append(IngestOp(gid=gid, keys=keys, first_ts=next_ts))
        for i in range(len(keys)):
            # Post-groomed RID for this version, used when an evolve
            # covers it: deterministic from (gid, i) alone.
            rid_by_ts[next_ts + i] = RID(Zone.POST_GROOMED, 1_000 + gid, i)
        next_ts += len(keys)
        if pending_min is None:
            pending_min = gid
        if gid % evolve_every == 0:
            ops.append(EvolveOp(min_gid=pending_min, max_gid=gid))
            pending_min = None
        if gid % maintain_every == 0:
            ops.append(MaintainOp())
    if pending_min is not None:
        ops.append(EvolveOp(min_gid=pending_min, max_gid=gids))
    ops.append(MaintainOp())
    return Workload(seed=seed, ops=ops, rid_by_ts=rid_by_ts, key_space=key_space)


def _entry(
    definition: IndexDefinition, key: int, begin_ts: int, rid: RID
) -> IndexEntry:
    """tests/conftest.make_entry's shape, importable from src."""
    eq = tuple(key + i for i in range(len(definition.equality_columns)))
    sort = tuple(key + i for i in range(len(definition.sort_columns)))
    incl = tuple(
        key * 10 + i for i in range(len(definition.included_columns))
    )
    return IndexEntry.create(definition, eq, sort, incl, begin_ts, rid)


def _ingest_entries(
    definition: IndexDefinition, op: IngestOp
) -> List[IndexEntry]:
    return [
        _entry(
            definition, key, op.first_ts + i, RID(Zone.GROOMED, op.gid, i)
        )
        for i, key in enumerate(op.keys)
    ]


def _evolve_entries(
    definition: IndexDefinition, workload: Workload, op: EvolveOp
) -> List[IndexEntry]:
    """Post-groomed entries for every version the evolve covers."""
    entries: List[IndexEntry] = []
    for ingest in workload.ingest_ops:
        if not (op.min_gid <= ingest.gid <= op.max_gid):
            continue
        for i, key in enumerate(ingest.keys):
            ts = ingest.first_ts + i
            entries.append(_entry(definition, key, ts, workload.rid_by_ts[ts]))
    return entries


# -- answer collection ---------------------------------------------------------

Blob = Optional[Tuple[bytes, bytes]]


def collect_answers(
    index: UmziIndex, workload: Workload, asof_samples: int = 6
) -> Dict[object, object]:
    """Query results over the whole key space as raw ``(sort_key, blob)``
    bytes -- the byte-identity comparand.

    Covers all four query shapes: point lookups per key, one batch over
    the full space, a full range scan per sampled key, and AS-OF point
    lookups at seeded historical timestamps.
    """
    definition = index.definition
    rng = random.Random(workload.seed ^ 0xA50F)
    max_ts = max(workload.rid_by_ts, default=1)

    def blob(entry: Optional[IndexEntry]) -> Blob:
        return None if entry is None else entry.to_blob(definition)

    def key_tuples(key: int) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        return (
            tuple(key + i for i in range(len(definition.equality_columns))),
            tuple(key + i for i in range(len(definition.sort_columns))),
        )

    answers: Dict[object, object] = {}
    lookups = []
    for key in range(workload.key_space):
        eq, sort = key_tuples(key)
        answers[("point", key)] = blob(index.lookup(eq, sort))
        lookups.append(PointLookup(eq, sort, MAX_QUERY_TS))
    answers["batch"] = tuple(blob(e) for e in index.batch_lookup(lookups))
    for key in sorted(rng.sample(range(workload.key_space), 5)):
        eq, _sort = key_tuples(key)
        answers[("range", key)] = tuple(
            blob(e) for e in index.scan(eq, None, None)
        )
    for _ in range(asof_samples):
        key = rng.randrange(workload.key_space)
        ts = rng.randint(1, max_ts)
        eq, sort = key_tuples(key)
        answers[("asof", key, ts)] = blob(index.lookup(eq, sort, query_ts=ts))
    return answers


# -- the driver ----------------------------------------------------------------


def _default_config(name: str) -> UmziConfig:
    return UmziConfig(
        name=name,
        levels=LevelConfig(
            groomed_levels=3,
            post_groomed_levels=2,
            max_runs_per_level=2,
            size_ratio=2,
        ),
        data_block_bytes=512,  # several blocks per run => torn prefixes
    )


@dataclass
class DriveResult:
    """What one driven universe did."""

    crashes: int = 0
    recoveries: int = 0
    replayed_ingests: int = 0
    replayed_evolves: int = 0
    clamped_checkpoints: int = 0
    answers: Dict[object, object] = field(default_factory=dict)


class CrashRecoveryDriver:
    """Apply a workload under a fault plan, recovering after each crash.

    With ``plan=None`` this is the *oracle*: same workload, plain shared
    storage, no crash schedule -- the ground truth the faulted universe
    must converge to byte-for-byte.
    """

    def __init__(
        self,
        definition: IndexDefinition,
        workload: Workload,
        plan: Optional[FaultPlan] = None,
        config: Optional[UmziConfig] = None,
        name: str = "fx",
    ) -> None:
        self.definition = definition
        self.workload = workload
        self.plan = plan
        self.config = config if config is not None else _default_config(name)
        stats = IOStats()
        run_prefix = f"{self.config.name}-run"
        if plan is not None:
            shared: SharedStorage = FaultyTier(plan, run_prefix, stats=stats)
        else:
            shared = SharedStorage(stats=stats)
        self.hierarchy = StorageHierarchy(
            memory=MemoryTier(stats=stats),
            ssd=SSDTier(capacity_bytes=_LOCAL_TIER_BYTES, stats=stats),
            shared=shared,
            stats=stats,
        )
        self.index = UmziIndex(
            definition, hierarchy=self.hierarchy, config=self.config
        )
        self.result = DriveResult()

    # -- lifecycle ------------------------------------------------------------

    def _fresh_process(self) -> None:
        """Simulate process death + restart: lose local tiers and every
        in-memory structure, then recover from shared storage alone."""
        self.hierarchy.crash_local_tiers()
        self.index = UmziIndex(
            self.definition, hierarchy=self.hierarchy, config=self.config
        )
        state = self.index.recover()
        self.result.recoveries += 1
        if state.clamped_from is not None:
            self.result.clamped_checkpoints += 1

    def recover_again(self):
        """One more crash+recover (idempotence checks); returns the state."""
        self.hierarchy.crash_local_tiers()
        self.index = UmziIndex(
            self.definition, hierarchy=self.hierarchy, config=self.config
        )
        return self.index.recover()

    # -- visibility (what recovery restored) ----------------------------------

    def _intervals(self) -> Tuple[List[Tuple[int, int]], List[Tuple[int, int]]]:
        """(visible groomed intervals, post-groomed intervals) right now."""
        watermark = self.index.watermark.value
        groomed = [
            (r.min_groomed_id, r.max_groomed_id)
            for r in self.index.run_lists[Zone.GROOMED].snapshot()
            if r.max_groomed_id > watermark
        ]
        post = [
            (r.min_groomed_id, r.max_groomed_id)
            for r in self.index.run_lists[Zone.POST_GROOMED].snapshot()
        ]
        return groomed, post

    @staticmethod
    def _chains(intervals: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
        chains: List[Tuple[int, int]] = []
        for lo, hi in sorted(intervals):
            if chains and lo <= chains[-1][1] + 1:
                chains[-1] = (chains[-1][0], max(chains[-1][1], hi))
            else:
                chains.append((lo, hi))
        return chains

    def _gid_visible(self, gid: int) -> bool:
        groomed, post = self._intervals()
        return any(lo <= gid <= hi for lo, hi in groomed + post)

    def _range_post_covered(self, min_gid: int, max_gid: int) -> bool:
        _groomed, post = self._intervals()
        return any(
            lo <= min_gid and max_gid <= hi for lo, hi in self._chains(post)
        )

    # -- op application -------------------------------------------------------

    def _apply(self, op: object) -> None:
        if isinstance(op, IngestOp):
            self.index.add_groomed_run(
                _ingest_entries(self.definition, op), op.gid, op.gid
            )
        elif isinstance(op, EvolveOp):
            # PSN = next expected, not a precomputed number: replays after
            # a crash may have consumed PSNs the original sequence did not
            # (e.g. an evolve that published but lost its checkpoint).
            self.index.evolve(
                self.index.indexed_psn + 1,
                _evolve_entries(self.definition, self.workload, op),
                op.min_gid,
                op.max_gid,
            )
        elif isinstance(op, MaintainOp):
            self.index.run_maintenance()
        else:  # pragma: no cover - workload generator invariant
            raise TypeError(f"unknown op {op!r}")

    def _catch_up(self, applied: int) -> None:
        """Re-establish "every applied op is visible" after a recovery.

        Walks the applied prefix in order and re-applies whatever the
        recovered state does not show: an ingest whose gid no surviving
        run covers is re-built from the workload (the stand-in for
        re-grooming upstream data blocks), an evolve whose gid range the
        post-groomed zone does not fully cover is re-run with the same
        entries.  Replayed evolves may duplicate surviving coverage;
        query-time reconciliation discards the duplicates (section 5.4),
        and the next recovery's overlap resolution deletes them.
        """
        for op in self.workload.ops[:applied]:
            if isinstance(op, IngestOp):
                if not self._gid_visible(op.gid):
                    self._apply(op)
                    self.result.replayed_ingests += 1
            elif isinstance(op, EvolveOp):
                if not self._range_post_covered(op.min_gid, op.max_gid):
                    self._apply(op)
                    self.result.replayed_evolves += 1

    # -- the drive loop -------------------------------------------------------

    def run(self) -> DriveResult:
        ops = self.workload.ops
        schedule = self.plan.crash_schedule() if self.plan is not None else None

        def drive() -> None:
            applied = 0
            need_catch_up = False
            while True:
                try:
                    if need_catch_up:
                        self._catch_up(applied)
                        need_catch_up = False
                    if applied == len(ops):
                        return
                    self._apply(ops[applied])
                    applied += 1
                except SimulatedCrash:
                    self.result.crashes += 1
                    self._fresh_process()
                    need_catch_up = True

        if schedule is not None:
            with install_crash_schedule(schedule):
                drive()
        else:
            drive()

        # Final clean restart: surface every torn write that was still
        # being papered over by the local write-through copies, then
        # catch up one last time.  The schedule is uninstalled, so this
        # pass cannot crash (recovery itself contains no crash sites).
        if self.plan is not None:
            self._fresh_process()
            self._catch_up(len(ops))
            self.index.run_maintenance()

        self.result.answers = collect_answers(self.index, self.workload)
        return self.result


def run_oracle(
    definition: IndexDefinition, workload: Workload, name: str = "fx"
) -> DriveResult:
    """Replay the workload fault-free; its answers are the ground truth."""
    return CrashRecoveryDriver(definition, workload, plan=None, name=name).run()


__all__ = [
    "CrashRecoveryDriver",
    "DriveResult",
    "EvolveOp",
    "IngestOp",
    "MaintainOp",
    "Workload",
    "collect_answers",
    "generate_workload",
    "run_oracle",
]
