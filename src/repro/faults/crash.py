"""Named crash points and seeded crash schedules (ISSUE 6 tentpole).

A *crash point* is a named site in production code where a simulated
process may die: ``crash_point("evolve.pre_publish")`` is a no-op unless
a test has installed a :class:`CrashSchedule` that targets that site, in
which case it raises :class:`~repro.faults.errors.SimulatedCrash`.  The
hook is a module-global ``None`` check, so the production cost is one
attribute load per site -- there is no registry lookup and no locking on
the fast path.

Sites are chosen at the boundaries the paper's recovery argument
(section 5.5) must survive: between writing a run's blocks, around the
evolve publish/GC/checkpoint steps, around a merge splice, and at the
daemons' loop heads.  ``CRASH_SITES`` is the authoritative list; the
property suite draws from it.

Schedules count *hits*: ``{"evolve.pre_publish": {2}}`` crashes the
second time that site is reached, letting one seed explore "survive the
first evolve, die mid-second".  Crashing a site disarms that hit (each
ordinal fires at most once), so the post-crash replay of the same logical
operation runs to completion instead of dying in a loop.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Set

from repro.faults.errors import SimulatedCrash

# The authoritative site list.  Keep docs/architecture.md's table in sync.
CRASH_SITES = (
    # RunBuilder._write_blocks: before the header block, between data
    # blocks (leaves a decodable header pointing at missing blocks), and
    # after the last block but before the run object is returned.
    "builder.pre_persist",
    "builder.data_block",
    "builder.post_persist",
    # EvolveController.evolve / evolve_streaming: after the post-groomed
    # run is built but before it is published into the run list; after
    # publish but before the watermark advances; before groomed-run GC;
    # and before the checkpoint is journaled.
    "evolve.pre_publish",
    "evolve.post_publish",
    "evolve.pre_gc",
    "evolve.pre_checkpoint",
    # Merge: around the run-list splice (new run persisted either way).
    "merge.pre_splice",
    "merge.post_splice",
    # MetadataJournal.append: before the checkpoint block is written.
    "journal.pre_append",
    # Daemon loop heads (wildfire + core maintenance).
    "maintenance.step",
    "groom.enter",
    "groom.pre_index",
    "postgroom.pre_publish",
    "indexer.pre_evolve",
    # Online shard split (ISSUE 8).  ``pre_copy`` fires before anything is
    # published (recovery rolls back to fully-old routing); ``mid_copy``
    # fires between the two successors' run builds; ``pre_publish`` after
    # the copy but before the final split map; ``post_publish`` after the
    # final map but before the source shard is decommissioned.  Everything
    # from the write cutover on recovers by rolling *forward* to fully-new
    # routing -- never a torn map.
    "split.pre_copy",
    "split.mid_copy",
    "split.pre_publish",
    "split.post_publish",
    # Online shard merge (ISSUE 10) -- the split run backwards, with the
    # same semantics: ``pre_copy`` fires before anything is published
    # (recovery rolls back, the slot keeps its split route); everything
    # after the "merging" cutover rolls forward to the fused route.
    "merge.pre_copy",
    "merge.mid_copy",
    "merge.pre_publish",
    "merge.post_publish",
)


class CrashSchedule:
    """Which (site, hit-ordinal) pairs kill the simulated process.

    ``triggers`` maps a site name to the 1-based hit ordinals that crash;
    hit counting is global across the schedule's lifetime (it survives
    the crash itself, so replayed work keeps counting up -- ordinal 3 of
    a site means the third time *ever* that site is reached).
    """

    def __init__(self, triggers: Mapping[str, Iterable[int]]) -> None:
        unknown = sorted(set(triggers) - set(CRASH_SITES))
        if unknown:
            raise ValueError(f"unknown crash site(s): {unknown}")
        self._triggers: Dict[str, Set[int]] = {
            site: set(ordinals) for site, ordinals in triggers.items()
        }
        self._hits: Dict[str, int] = {}
        self._lock = threading.Lock()
        self.fired: List[SimulatedCrash] = []

    def visit(self, site: str) -> None:
        """Record one arrival at ``site``; raise if this hit is targeted."""
        with self._lock:
            hit = self._hits.get(site, 0) + 1
            self._hits[site] = hit
            ordinals = self._triggers.get(site)
            if ordinals is None or hit not in ordinals:
                return
            # Disarm so the post-recovery replay of the same operation
            # passes this site instead of dying forever.
            ordinals.discard(hit)
            crash = SimulatedCrash(site, hit)
            self.fired.append(crash)
        raise crash

    def hits(self, site: str) -> int:
        with self._lock:
            return self._hits.get(site, 0)

    @property
    def crash_count(self) -> int:
        with self._lock:
            return len(self.fired)


_active: Optional[CrashSchedule] = None


def crash_point(site: str) -> None:
    """Production-side hook: dies here iff the active schedule says so.

    Cost when no schedule is installed (i.e. always, outside fault
    tests): one global load and one ``is None`` check.
    """
    schedule = _active
    if schedule is not None:
        schedule.visit(site)


def active_schedule() -> Optional[CrashSchedule]:
    return _active


@contextmanager
def install_crash_schedule(schedule: CrashSchedule) -> Iterator[CrashSchedule]:
    """Install ``schedule`` as the process-wide crash schedule.

    Process-wide (not thread-local) on purpose: maintenance daemons run
    on their own threads and must die by the same schedule.  Nested
    installs are rejected -- overlapping schedules would make hit counts
    meaningless.
    """
    global _active
    if _active is not None:
        raise RuntimeError("a crash schedule is already installed")
    _active = schedule
    try:
        yield schedule
    finally:
        _active = None


__all__ = [
    "CRASH_SITES",
    "CrashSchedule",
    "active_schedule",
    "crash_point",
    "install_crash_schedule",
]
