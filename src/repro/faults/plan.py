"""Seeded fault plans: one integer reproduces one fault universe.

A :class:`FaultPlan` is the deterministic schedule that drives both the
storage-fault injector (:class:`~repro.faults.storage.FaultyTier`) and
the process-crash schedule (:class:`~repro.faults.crash.CrashSchedule`).
All randomness happens *here*, at generation time, from one
``random.Random(seed)`` -- execution is pure table lookup, so the same
seed over the same workload produces byte-identical fault behaviour on
every run and every host.  That is what lets the property suite shrink a
failing universe to "seed 17".

Fault taxonomy (docs/architecture.md has the table):

* :class:`TornWrite` -- a multi-block run persist stops partway: some
  data blocks (and optionally the header) silently never reach shared
  storage.  Models a process dying mid-upload.  Targeted by *persist
  ordinal* (the Nth run-persist the tier observes).
* :class:`BitRot` -- one byte of an already-stored data block is
  XOR-flipped after the write completes.  Models media corruption; the
  v3 per-block CRC32 must detect it during recovery validation.
* :class:`TransientFault` -- the Nth shared-storage operation raises
  :class:`TransientIOError` ``failures`` consecutive times before
  succeeding.  Models network blips; the hierarchy's
  :class:`~repro.storage.retry.RetryPolicy` must absorb it.
* :class:`BrownoutWindow` -- a *window* of elevated transient-error
  rates: many failure bursts packed into a span of consecutive ops, some
  long enough to exhaust the retry budget.  Models a shared-storage
  service browning out; the qos circuit breaker (ISSUE 7) must trip and
  queries must degrade instead of erroring.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.faults.crash import CRASH_SITES, CrashSchedule


@dataclass(frozen=True)
class TornWrite:
    """Tear the ``persist_ordinal``-th run persist (1-based).

    ``keep_data_blocks`` data blocks land before the tear; when
    ``drop_header`` the header block (ordinal 0) is also lost, which is
    the "no header -> run invisible to recovery" arm of section 5.5.
    """

    persist_ordinal: int
    keep_data_blocks: int
    drop_header: bool


@dataclass(frozen=True)
class BitRot:
    """Flip one byte of a stored data block.

    Fires after the ``after_write_ordinal``-th data-block write to a run
    namespace; ``victim_index`` picks which already-stored data block of
    that namespace rots (modulo the count), ``pos_seed`` picks the byte
    offset (modulo the payload length) and ``xor_mask`` is the non-zero
    flip.  Headers are never rotted: the header carries no self-checksum
    (its integrity story is the journal + decode validation), so header
    rot would be indistinguishable from a format bug rather than a
    detectable data fault.
    """

    after_write_ordinal: int
    victim_index: int
    pos_seed: int
    xor_mask: int


@dataclass(frozen=True)
class TransientFault:
    """Make the ``op_ordinal``-th shared-storage op (1-based, reads and
    writes counted together) fail ``failures`` times before succeeding."""

    op_ordinal: int
    failures: int


@dataclass(frozen=True)
class BrownoutWindow:
    """A seeded window of elevated transient-error rates (ISSUE 7).

    The window spans ``length_ops`` consecutive shared-storage operations;
    ``failing_offsets`` lists the 0-based op offsets *within the window*
    that raise :class:`TransientIOError`, pregenerated from the seed as
    bursts of consecutive failing ops so execution stays pure table
    lookup.  Unlike :class:`TransientFault`, bursts may exceed the
    default retry budget (``RetryPolicy.max_attempts = 4``): an
    unprotected client gives up mid-window, which is precisely the
    behaviour the circuit breaker exists to prevent.  The window ends
    crisply -- op ``length_ops`` onward is healthy again.

    Activation is either absolute (``start_op`` -- the 1-based tier op
    ordinal at which the window opens) or relative: ``start_op=None``
    windows are anchored at the current op sequence by
    :meth:`~repro.faults.storage.FaultyTier.start_brownout`, so a bench
    can open a brownout "now" without knowing absolute op counts.
    """

    length_ops: int
    failing_offsets: Tuple[int, ...]
    start_op: Optional[int] = None

    @staticmethod
    def generate(
        seed: int,
        length_ops: int = 120,
        error_rate: float = 0.4,
        min_burst: int = 2,
        max_burst: int = 6,
        start_op: Optional[int] = None,
    ) -> "BrownoutWindow":
        """Derive a window from ``seed`` alone.

        Walking the window, each healthy op starts a failure burst with
        probability ``error_rate``; burst lengths are uniform in
        ``[min_burst, max_burst]`` consecutive ops.  With the defaults a
        majority of the window's ops fail and some bursts exceed the
        retry budget -- a hostile but bounded storm.
        """
        rng = random.Random(seed)
        failing: List[int] = []
        offset = 0
        while offset < length_ops:
            if rng.random() < error_rate:
                burst = rng.randint(min_burst, max_burst)
                failing.extend(
                    o for o in range(offset, offset + burst) if o < length_ops
                )
                offset += burst
            else:
                offset += 1
        return BrownoutWindow(
            length_ops=length_ops,
            failing_offsets=tuple(failing),
            start_op=start_op,
        )

    @property
    def total_failures(self) -> int:
        return len(self.failing_offsets)


@dataclass
class FaultPlan:
    """Everything one seed decided: storage faults + crash schedule."""

    seed: int
    torn_writes: Tuple[TornWrite, ...] = ()
    bit_rot: Tuple[BitRot, ...] = ()
    transient: Tuple[TransientFault, ...] = ()
    crash_triggers: Dict[str, FrozenSet[int]] = field(default_factory=dict)
    # Brownout windows (ISSUE 7).  Not produced by :meth:`generate` -- their
    # bursts may exceed the retry budget, which would break the
    # byte-identity property suite; overload tests/benches attach them
    # explicitly (absolute ``start_op`` here, or relatively via
    # ``FaultyTier.start_brownout``).
    brownouts: Tuple[BrownoutWindow, ...] = ()

    def crash_schedule(self) -> CrashSchedule:
        """A fresh (mutable, hit-counting) schedule for this plan."""
        return CrashSchedule(self.crash_triggers)

    @staticmethod
    def generate(
        seed: int,
        max_crashes: int = 3,
        max_torn_writes: int = 2,
        max_bit_rot: int = 2,
        max_transient: int = 3,
        max_hit_ordinal: int = 4,
        max_op_ordinal: int = 400,
    ) -> "FaultPlan":
        """Derive a plan from ``seed`` alone (no ambient randomness).

        The knobs bound how hostile a universe can get; transient-fault
        ``failures`` stays strictly below the default retry budget
        (``RetryPolicy.max_attempts = 4``) so injected blips are always
        absorbable -- give-ups are exercised by dedicated outage tests,
        not by the byte-identity property (where an op that errors out
        would be a legitimate failure, not a wrong answer).
        """
        rng = random.Random(seed)

        torn: List[TornWrite] = []
        used_persists: set = set()
        for _ in range(rng.randint(0, max_torn_writes)):
            ordinal = rng.randint(1, 12)
            if ordinal in used_persists:
                continue
            used_persists.add(ordinal)
            torn.append(
                TornWrite(
                    persist_ordinal=ordinal,
                    keep_data_blocks=rng.randint(0, 3),
                    drop_header=rng.random() < 0.5,
                )
            )

        rot: List[BitRot] = []
        for _ in range(rng.randint(0, max_bit_rot)):
            rot.append(
                BitRot(
                    after_write_ordinal=rng.randint(1, 20),
                    victim_index=rng.randint(0, 7),
                    pos_seed=rng.randint(0, 1 << 30),
                    xor_mask=rng.randint(1, 255),
                )
            )

        transient: List[TransientFault] = []
        used_ops: set = set()
        for _ in range(rng.randint(0, max_transient)):
            ordinal = rng.randint(1, max_op_ordinal)
            if ordinal in used_ops:
                continue
            used_ops.add(ordinal)
            transient.append(
                TransientFault(
                    op_ordinal=ordinal,
                    failures=rng.randint(1, 2),
                )
            )

        triggers: Dict[str, FrozenSet[int]] = {}
        for _ in range(rng.randint(0, max_crashes)):
            site = rng.choice(CRASH_SITES)
            ordinal = rng.randint(1, max_hit_ordinal)
            triggers[site] = frozenset(triggers.get(site, frozenset()) | {ordinal})

        return FaultPlan(
            seed=seed,
            torn_writes=tuple(sorted(torn, key=lambda t: t.persist_ordinal)),
            bit_rot=tuple(rot),
            transient=tuple(sorted(transient, key=lambda t: t.op_ordinal)),
            crash_triggers=triggers,
        )

    def describe(self) -> str:
        """One line for failure messages: what this universe contains."""
        sites = {s: sorted(o) for s, o in sorted(self.crash_triggers.items())}
        return (
            f"FaultPlan(seed={self.seed}, torn={len(self.torn_writes)}, "
            f"rot={len(self.bit_rot)}, transient={len(self.transient)}, "
            f"brownouts={len(self.brownouts)}, crashes={sites})"
        )


__all__ = [
    "BitRot",
    "BrownoutWindow",
    "FaultPlan",
    "TornWrite",
    "TransientFault",
]
