"""Fault-injection error types (ISSUE 6).

:class:`TransientIOError` lives in the storage layer
(``repro.storage.retry``) because the hierarchy's retry loop must catch
it without importing this package; it is re-exported here so fault-side
code has one import surface.

:class:`SimulatedCrash` deliberately derives from ``BaseException`` --
the codebase (like most) contains broad ``except Exception`` handlers on
background paths, and a simulated process death must not be swallowed by
one of them and turned into "the daemon logged an error and carried on".
A real ``kill -9`` does not flow through exception handlers either.
"""

from __future__ import annotations

from repro.storage.retry import TransientIOError

__all__ = ["SimulatedCrash", "TransientIOError"]


class SimulatedCrash(BaseException):
    """The simulated process died at a named crash point.

    Raised by :func:`repro.faults.crash.crash_point` when the active
    :class:`~repro.faults.crash.CrashSchedule` triggers.  The harness
    catches it at the top of its drive loop, drops all local state
    (local storage tiers + in-memory index objects), and re-runs
    recovery -- exactly the paper's section 5.5 scenario.
    """

    def __init__(self, site: str, hit: int) -> None:
        super().__init__(f"simulated crash at {site} (hit #{hit})")
        self.site = site
        self.hit = hit
