"""Reproduction of *Umzi: Unified Multi-Zone Indexing for Large-Scale HTAP*
(Luo et al., EDBT 2019).

Packages
--------
``repro.core``
    The Umzi index itself: multi-zone LSM run lists, hybrid merge policy,
    evolve operation, multi-tier cache management, lock-free queries.
``repro.storage``
    The simulated storage hierarchy (memory / SSD / shared storage).
``repro.wildfire``
    A single-shard simulation of the Wildfire HTAP engine Umzi lives in:
    live zone, groomer, post-groomer, indexer daemon, MVCC snapshots.
``repro.baselines``
    Comparators: classic fixed-RID LSM index, per-zone separate indexes,
    a sorted in-memory index.
``repro.workloads``
    Synthetic generators from the paper's evaluation (sequential/random
    keys, the IoT update-rate model).
``repro.bench``
    The experiment harness regenerating every figure of section 8.
"""

from repro.core import (
    ColumnSpec,
    ColumnType,
    IndexDefinition,
    IndexEntry,
    PointLookup,
    RangeScanQuery,
    ReconcileStrategy,
    RID,
    UmziConfig,
    UmziIndex,
    Zone,
)
from repro.storage import StorageHierarchy

__version__ = "1.0.0"

__all__ = [
    "ColumnSpec",
    "ColumnType",
    "IndexDefinition",
    "IndexEntry",
    "PointLookup",
    "RangeScanQuery",
    "ReconcileStrategy",
    "RID",
    "StorageHierarchy",
    "UmziConfig",
    "UmziIndex",
    "Zone",
    "__version__",
]
