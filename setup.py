"""Legacy entry point for environments without the ``wheel`` package.

All real metadata lives in ``pyproject.toml``; this file only enables
``pip install -e .`` via the setuptools legacy editable path.
"""

from setuptools import setup

setup()
