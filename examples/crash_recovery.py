"""Operations tour: crash recovery and multi-tier cache management.

Demonstrates the operational side of Umzi (paper sections 5.5 and 6):

1. an indexer-node crash that wipes memory and the SSD cache, followed by
   recovery purely from shared storage -- including a crash injected
   *between* evolve sub-operations;
2. the SSD cache manager under space pressure: level-based purging (old
   runs first, headers retained), query-driven block-basis refetches, and
   re-loading when space frees up;
3. non-persisted levels: merges into memory-only levels with ancestor
   retention, surviving a crash.

Run:  python examples/crash_recovery.py
"""

from repro.core.definition import ColumnSpec
from repro.core.entry import Zone
from repro.core.levels import LevelConfig
from repro.core.index import UmziConfig, UmziIndex
from repro.core.definition import IndexDefinition
from repro.core.entry import RID
from repro.storage.hierarchy import StorageHierarchy
from repro.storage.ssd import SSDTier


def build_index(non_persisted=frozenset(), ssd_capacity=None) -> UmziIndex:
    definition = IndexDefinition(
        equality_columns=(ColumnSpec("device"),),
        sort_columns=(ColumnSpec("msg"),),
        included_columns=(ColumnSpec("reading"),),
    )
    levels = LevelConfig(
        groomed_levels=3, post_groomed_levels=2,
        max_runs_per_level=2, size_ratio=2,
        non_persisted_levels=non_persisted,
    )
    hierarchy = StorageHierarchy(ssd=SSDTier(capacity_bytes=ssd_capacity))
    return UmziIndex(
        definition, hierarchy,
        UmziConfig(name="ops", levels=levels, data_block_bytes=4096),
    )


def feed(index: UmziIndex, runs: int, per_run: int = 200) -> None:
    ts = 1
    for gid in range(runs):
        entries = []
        for i in range(per_run):
            key = gid * per_run + i
            entries.append(index.make_entry(
                (key % 16,), (key,), (key * 10,), ts, RID(Zone.GROOMED, gid, i)
            ))
            ts += 1
        index.add_groomed_run(entries, gid, gid)


def scenario_crash_mid_evolve() -> None:
    print("== crash between evolve sub-operations ==")
    index = build_index()
    feed(index, 4)
    index.run_maintenance()

    # The indexer starts an evolve: sub-operation 1 publishes the
    # post-groomed run ...
    pg_entries = [
        index.make_entry((k % 16,), (k,), (k * 10,), k + 1,
                         RID(Zone.POST_GROOMED, 100, k))
        for k in range(400)
    ]
    index.evolver.step1_build_run(pg_entries, 0, 1)
    print("  evolve step 1 done (post-groomed run published)")
    # ... and the node dies before the watermark advances.
    index.hierarchy.crash_local_tiers()
    print("  CRASH: memory and SSD lost")

    state = index.recover()
    print(f"  recovered {sum(len(v) for v in state.runs_by_zone.values())} "
          f"runs; deleted {len(state.deleted_run_ids)} superseded, "
          f"{len(state.incomplete_run_ids)} incomplete")
    hit = index.lookup((3,), (3,))
    scan = index.scan((3,), (3,), (3,))
    assert hit is not None and len(scan) == 1
    print(f"  key (3,3) answered exactly once after recovery: rid={hit.rid}\n")


def scenario_cache_pressure() -> None:
    print("== SSD cache pressure ==")
    index = build_index(ssd_capacity=120_000)
    feed(index, 6)
    index.run_maintenance()
    cache = index.cache
    print(f"  SSD utilization {index.hierarchy.ssd.utilization():.0%} "
          f"(the maintenance pass inside run_maintenance already purged "
          f"under pressure)")
    cache.maintain()
    print(f"  steady state: utilization "
          f"{index.hierarchy.ssd.utilization():.0%}, cached level "
          f"{cache.current_cached_level}, cached fraction "
          f"{cache.cached_fraction():.2f}")

    # Queries against purged runs still work -- blocks stream back from
    # shared storage on a block basis and are released afterwards.
    before = index.hierarchy.stats.tier("shared").reads
    hit = index.lookup((5,), (5,))
    after = index.hierarchy.stats.tier("shared").reads
    print(f"  lookup on (possibly purged) data: found={hit is not None}, "
          f"shared-storage reads during query: {after - before}")

    # Manual purge-level control (the Figure 14 experiment's knob).
    cache.set_cache_level(-1)
    print(f"  set_cache_level(-1): cached fraction "
          f"{cache.cached_fraction():.2f} (headers only)")
    cache.set_cache_level(index.config.levels.total_levels - 1)
    print(f"  set_cache_level(max): cached fraction "
          f"{cache.cached_fraction():.2f}\n")


def scenario_non_persisted_levels() -> None:
    print("== non-persisted levels + crash ==")
    index = build_index(non_persisted=frozenset({1}))
    # Two level-0 runs merge into level 1 (memory-only) and stay there.
    feed(index, 2)
    index.run_maintenance()
    stats = index.stats()
    np_runs = [lv for lv in stats.levels if not lv.persisted and lv.run_count]
    print(f"  memory-only levels holding runs: "
          f"{[lv.level for lv in np_runs] or 'none'}")
    for run in index.all_runs():
        if not run.header.persisted:
            print(f"  {run.run_id} (level {run.level}) retains ancestors: "
                  f"{list(run.header.ancestor_run_ids)}")
    answers_before = {
        k: index.lookup((k % 16,), (k,)).begin_ts for k in (0, 250, 399)
    }
    index.hierarchy.crash_local_tiers()
    index.recover()
    answers_after = {
        k: index.lookup((k % 16,), (k,)).begin_ts for k in (0, 250, 399)
    }
    assert answers_before == answers_after
    print(f"  all probes identical after crash+recovery: {answers_after}\n")


def main() -> None:
    scenario_crash_mid_evolve()
    scenario_cache_pressure()
    scenario_non_persisted_levels()
    print("all scenarios passed")


if __name__ == "__main__":
    main()
