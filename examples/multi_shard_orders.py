"""Sharded order processing with a secondary index.

Combines the two extensions this reproduction builds on top of the paper:

* a **multi-shard table** (section 3's deployment shape: one Umzi index
  instance per shard, independent indexer daemons, hash routing by the
  sharding key);
* a **secondary Umzi index** (section 10's future work) over the customer
  column, maintained in lockstep with the primary through every groom and
  evolve on every shard.

Run:  python examples/multi_shard_orders.py
"""

import random

from repro.core.definition import ColumnSpec
from repro.wildfire.cluster import ShardedTable
from repro.wildfire.engine import ShardConfig
from repro.wildfire.schema import IndexSpec, TableSchema

NUM_SHARDS = 4
CUSTOMERS = 20
ORDERS = 600


def main() -> None:
    schema = TableSchema(
        name="orders",
        columns=(
            ColumnSpec("order_id"),
            ColumnSpec("customer"),
            ColumnSpec("amount"),
        ),
        primary_key=("order_id",),
        sharding_key=("order_id",),
        partition_key=("customer",),
    )
    table = ShardedTable(
        schema,
        IndexSpec(equality_columns=("order_id",),
                  included_columns=("customer", "amount")),
        num_shards=NUM_SHARDS,
        config=ShardConfig(
            post_groom_every=3,
            secondary_indexes={
                "by_customer": IndexSpec(
                    equality_columns=("customer",),
                    included_columns=("amount",),
                ),
            },
        ),
    )

    rng = random.Random(2024)
    print(f"ingesting {ORDERS} orders into {NUM_SHARDS} shards ...")
    batch = []
    for order_id in range(ORDERS):
        batch.append((order_id, rng.randrange(CUSTOMERS), rng.randrange(5, 500)))
        if len(batch) == 50:
            distribution = table.ingest(batch)
            table.tick()
            batch = []
    if batch:
        table.ingest(batch)
    table.run_cycles(4)

    stats = table.stats()
    print(f"total indexed entries: {stats['total_entries']}")
    for shard_id, shard in enumerate(table.shards):
        s = shard.stats()["index"]
        print(f"  shard {shard_id}: {s.total_entries:>4} entries, "
              f"{s.total_runs} runs, indexed PSN "
              f"{shard.index.indexed_psn}")

    # Routed point read: the sharding key (order_id) is the primary key.
    order = table.point_query((123,))
    print(f"\norder 123 -> customer={order.values[1]} amount={order.values[2]}")

    # Secondary-index fan-out: per-customer order history on every shard.
    customer = order.values[1]
    total = 0.0
    order_count = 0
    for shard in table.shards:
        hits = shard.secondary_lookup("by_customer", (customer,))
        order_count += len(hits)
        total += sum(h.include_values[0] for h in hits)
    print(f"customer {customer}: {order_count} orders, lifetime value {total:.0f} "
          "(index-only, via the secondary index on every shard)")

    # Update an order; the secondary view follows the newest version.
    table.ingest([(123, customer, 9_999)])
    table.run_cycles(4)
    shard = table.shards[table.shard_of_row((123, customer, 0))]
    hits = shard.secondary_lookup("by_customer", (customer,))
    amounts = sorted(h.include_values[0] for h in hits)
    assert 9_999 in amounts
    print(f"after updating order 123: customer {customer} amounts now "
          f"max={max(amounts)}")

    # One shard's node crashes; the others keep serving, it recovers.
    victim = table.shard_of_row((123, customer, 0))
    table.crash_and_recover_shard(victim)
    order = table.point_query((123,))
    print(f"shard {victim} crashed and recovered; order 123 amount = "
          f"{order.values[2]}")


if __name__ == "__main__":
    main()
