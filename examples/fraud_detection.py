"""Real-time fraud analytics -- HTAP over a payments stream.

The paper's introduction motivates HTAP with "risk analysis, online
recommendations, and fraud detection": high-speed transactional ingest
with analytical queries running concurrently *over freshly ingested data*.

This example runs a payments shard with real background daemons (groomer,
post-groomer, indexer, merge maintenance as threads) while the foreground
performs the fraud checks:

* per-account point lookups on the hottest (just-committed) data;
* account-history range scans that span the groomed and post-groomed
  zones through the single unified index;
* a repeatable-snapshot audit: the same query at the same timestamp gives
  the same answer while ingest keeps running underneath.

Run:  python examples/fraud_detection.py
"""

import random
import time

from repro.core.definition import ColumnSpec
from repro.wildfire import IndexSpec, ShardConfig, TableSchema, WildfireShard

ACCOUNTS = 50
SECONDS = 2.0


def main() -> None:
    schema = TableSchema(
        name="payments",
        columns=(
            ColumnSpec("account"),
            ColumnSpec("seq"),       # per-account payment sequence
            ColumnSpec("amount"),
        ),
        primary_key=("account", "seq"),
        sharding_key=("account",),
        partition_key=("seq",),
    )
    index_spec = IndexSpec(
        equality_columns=("account",),
        sort_columns=("seq",),
        included_columns=("amount",),
    )
    shard = WildfireShard(
        schema, index_spec, config=ShardConfig(post_groom_every=5)
    )

    rng = random.Random(99)
    seq_per_account = {a: 0 for a in range(ACCOUNTS)}

    def next_payment():
        account = rng.randrange(ACCOUNTS)
        seq_per_account[account] += 1
        amount = rng.randrange(1, 2_000)
        return (account, seq_per_account[account], amount)

    print("starting background daemons (groomer / post-groomer / indexer / "
          "merger) ...")
    shard.start_daemons(groom_interval_s=0.02)
    flagged = []
    try:
        deadline = time.time() + SECONDS
        payments = 0
        while time.time() < deadline:
            batch = [next_payment() for _ in range(25)]
            shard.ingest(batch)
            payments += len(batch)

            # Fraud rule: flag accounts whose recent payments exceed a
            # velocity threshold -- an analytical scan over *fresh* data.
            suspect = rng.randrange(ACCOUNTS)
            history = shard.range_query((suspect,), None, None)
            recent = [e.include_values[0] for e in history[-10:]]
            if len(recent) >= 5 and sum(recent) / len(recent) > 1_400:
                flagged.append(suspect)
            time.sleep(0.005)

        print(f"ingested {payments} payments across {ACCOUNTS} accounts")
        # Give the pipeline a moment to groom the tail of the stream.
        time.sleep(0.2)
    finally:
        shard.stop_daemons()
    shard.run_cycles(2)  # drain anything still in the live zone

    stats = shard.stats()
    print(f"grooms={shard.groomer.grooms_done} "
          f"post-grooms={shard.post_groomer.max_psn} "
          f"evolves={shard.indexer.evolves_applied} "
          f"background merges={shard.maintenance.merges_done}")
    print(f"index: {stats['index'].total_runs} runs, "
          f"{stats['index'].total_entries} entries "
          f"(groomed zone {stats['index'].groomed_run_count}, "
          f"post-groomed {stats['index'].post_groomed_run_count})")
    print(f"velocity-flagged accounts: {sorted(set(flagged)) or 'none'}")

    # Unified-view check: one index answers across both zones.
    account = max(seq_per_account, key=seq_per_account.get)
    history = shard.range_query((account,), None, None)
    zones = {e.rid.zone.name for e in history}
    print(f"\naccount {account}: {len(history)} payments via ONE index; "
          f"rows live in zones {sorted(zones)}")
    assert len({e.sort_values for e in history}) == len(history), \
        "unified view must not duplicate rows across zones"

    # Repeatable audit snapshot while the data keeps changing.
    audit_ts = shard.current_snapshot_ts()
    before = [e.include_values[0] for e in
              shard.range_query((account,), None, None, query_ts=audit_ts)]
    shard.ingest([(account, seq_per_account[account] + 1, 123_456)])
    shard.run_cycles(6)
    after = [e.include_values[0] for e in
             shard.range_query((account,), None, None, query_ts=audit_ts)]
    assert before == after, "audit snapshot must be repeatable"
    print(f"audit snapshot at ts={audit_ts}: {len(before)} rows, repeatable "
          "under concurrent ingest")
    live_now = shard.range_query((account,), None, None)
    print(f"live view now sees {len(live_now)} rows (audit still sees "
          f"{len(after)})")


if __name__ == "__main__":
    main()
