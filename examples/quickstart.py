"""Quickstart: the Umzi index API in five minutes.

Builds an index directly (no engine), exercises the full maintenance
lifecycle -- groomed-run builds, merges, an evolve into the post-groomed
zone, a crash, and recovery -- and queries at every stage.

Run:  python examples/quickstart.py
"""

from repro import (
    ColumnSpec,
    IndexDefinition,
    PointLookup,
    RangeScanQuery,
    RID,
    UmziConfig,
    UmziIndex,
    Zone,
)
from repro.core.levels import LevelConfig


def main() -> None:
    # 1. Declare the index shape (paper section 4.1): equality column for
    #    point predicates, sort column for ranges, an included column for
    #    index-only reads.
    definition = IndexDefinition(
        equality_columns=(ColumnSpec("device"),),
        sort_columns=(ColumnSpec("msg"),),
        included_columns=(ColumnSpec("reading"),),
    )
    levels = LevelConfig(
        groomed_levels=3, post_groomed_levels=2,
        max_runs_per_level=2, size_ratio=2,
    )
    index = UmziIndex(definition, config=UmziConfig(name="quick", levels=levels))
    print(f"created {definition.describe()}")

    # 2. Each groom cycle produces one run of index entries.  Entries carry
    #    (equality values, sort values, includes, beginTS, RID).
    ts = 1
    for groomed_block in range(4):
        entries = []
        for offset in range(100):
            device, msg = offset % 10, groomed_block * 100 + offset
            entries.append(
                index.make_entry(
                    equality_values=(device,),
                    sort_values=(msg,),
                    include_values=(device * 1000 + msg,),
                    begin_ts=ts,
                    rid=RID(Zone.GROOMED, groomed_block, offset),
                )
            )
            ts += 1
        index.add_groomed_run(
            entries, min_groomed_id=groomed_block, max_groomed_id=groomed_block
        )
    print(f"after 4 grooms: {index.stats().total_runs} runs")

    # 3. Point lookup and range scan.  Queries are snapshot reads: only the
    #    newest version with beginTS <= query_ts is returned per key.
    hit = index.lookup(equality_values=(3,), sort_values=(13,))
    print(f"lookup(device=3, msg=13) -> reading={hit.include_values[0]} "
          f"rid={hit.rid}")
    scan = index.scan(equality_values=(3,), sort_lower=(0,), sort_upper=(250,))
    print(f"scan(device=3, msg in [0, 250]) -> {len(scan)} keys")

    # 4. Background merging keeps the run count bounded (section 5.3).
    merges = index.run_maintenance()
    print(f"maintenance ran {len(merges)} merges -> "
          f"{index.stats().total_runs} runs")

    # 5. Data evolves: the post-groomer rewrote groomed blocks 0..3 into
    #    partitioned post-groomed blocks, so records have *new RIDs*.  The
    #    evolve operation migrates the index (section 5.4).
    evolved_entries = []
    ts = 1
    for groomed_block in range(4):
        for offset in range(100):
            device, msg = offset % 10, groomed_block * 100 + offset
            evolved_entries.append(
                index.make_entry(
                    (device,), (msg,), (device * 1000 + msg,), ts,
                    RID(Zone.POST_GROOMED, 50 + device % 2, offset),
                )
            )
            ts += 1
    result = index.evolve(1, evolved_entries, 0, 3)
    print(f"evolve(PSN=1): built {result.new_run_id} "
          f"({result.new_run_entries} entries), watermark -> "
          f"{result.watermark_after}, collected {len(result.collected_run_ids)} "
          "obsolete groomed runs")
    hit = index.lookup((3,), (13,))
    print(f"lookup after evolve -> rid={hit.rid}  (now post-groomed)")

    # 6. Crash the node: all local state is lost; runs persisted in shared
    #    storage bring the index back (section 5.5).
    index.hierarchy.crash_local_tiers()
    state = index.recover()
    hit = index.lookup((3,), (13,))
    print(f"after crash+recover: lookup -> rid={hit.rid}, "
          f"checkpoint PSN={state.checkpoint.indexed_psn}")

    print("\nfinal index state:")
    print(index.stats().format_table())


if __name__ == "__main__":
    main()
