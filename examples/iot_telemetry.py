"""IoT telemetry -- the paper's motivating workload, end to end.

"An IoT application handling large volumes of sensor readings could use
the device ID as the sharding key, but the date column as the partition
key to speed up time-based analytical queries" (section 2.1).

This example drives a full Wildfire shard: high-rate sensor upserts with
the paper's update model, grooming every cycle, post-grooming every 10
cycles, asynchronous index evolution, and three query patterns on top --
device point reads (OLTP), per-device message-range scans (OLAP on fresh
data), and time travel over a sensor's version history.

Run:  python examples/iot_telemetry.py
"""

import random

from repro.core.definition import ColumnSpec
from repro.wildfire import IndexSpec, ShardConfig, TableSchema, WildfireShard
from repro.workloads.generator import IoTUpdateWorkload

DEVICES = 32
CYCLES = 40
READINGS_PER_CYCLE = 400


def main() -> None:
    schema = TableSchema(
        name="sensor_readings",
        columns=(
            ColumnSpec("device"),   # sharding key: balances transactions
            ColumnSpec("msg"),      # message number within a device
            ColumnSpec("reading"),  # payload, carried as an included column
        ),
        primary_key=("device", "msg"),
        sharding_key=("device",),
        partition_key=("msg",),     # analytics-friendly organization
    )
    index_spec = IndexSpec(
        equality_columns=("device",),   # paper's I1 shape
        sort_columns=("msg",),
        included_columns=("reading",),
    )
    shard = WildfireShard(
        schema, index_spec, config=ShardConfig(post_groom_every=10)
    )

    # The section 8.4 update model: each cycle updates p% of the previous
    # cycle, 0.1*p% of the last 50, 0.01*p% of the last 100.
    workload = IoTUpdateWorkload(
        records_per_cycle=READINGS_PER_CYCLE, update_percent=10, seed=42
    )
    rng = random.Random(7)

    print(f"ingesting {CYCLES} cycles x {READINGS_PER_CYCLE} readings ...")
    for cycle in range(1, CYCLES + 1):
        keys = workload.next_cycle()
        rows = [(k % DEVICES, k // DEVICES, rng.randrange(10_000)) for k in keys]
        shard.ingest(rows)
        shard.tick()  # groom; post-groom every 10th; evolve; merge

    stats = shard.stats()
    print(f"cycles={stats['cycle']} max_psn={stats['max_psn']} "
          f"indexed_psn={stats['indexed_psn']}")
    print(stats["index"].format_table())

    # -- OLTP: point read of one sensor message ------------------------------
    device = 5
    latest = shard.range_query((device,), None, None)
    msg = latest[-1].sort_values[0]
    record = shard.point_query((device,), (msg,))
    print(f"\npoint read device={device} msg={msg}: reading={record.values[2]}")

    # -- OLAP on fresh data: a message-range scan per device ------------------
    for d in (0, DEVICES // 2):
        entries = shard.range_query((d,), (0,), (200,))
        newest = max(e.begin_ts for e in entries) if entries else 0
        print(f"scan device={d} msg in [0, 200]: {len(entries)} rows "
              f"(newest beginTS {newest})")

    # -- index-only aggregation: no record fetches needed ---------------------
    entries = shard.range_query((device,), None, None)
    total = sum(e.include_values[0] for e in entries)
    print(f"index-only SUM(reading) over device {device}: {total} "
          f"({len(entries)} messages, zero block fetches for records)")

    # -- time travel: update one sensor and read its history ------------------
    target_msg = latest[0].sort_values[0]
    for value in (111, 222, 333):
        shard.ingest([(device, target_msg, value)])
        shard.run_cycles(10)  # let it groom, post-groom and evolve
    versions = shard.time_travel(
        (device,), (target_msg,), shard.current_snapshot_ts()
    )
    print(f"\nversion chain for device={device} msg={target_msg} "
          f"(newest first):")
    for v in versions[:4]:
        closed = "current" if v.end_ts is None else f"ended at {v.end_ts}"
        print(f"  reading={v.values[2]:>6}  beginTS={v.begin_ts}  {closed}")

    # Reading at an old snapshot returns the old value -- repeatable reads.
    old_ts = versions[-1].begin_ts
    old = shard.point_query((device,), (target_msg,), query_ts=old_ts)
    print(f"read at snapshot {old_ts}: reading={old.values[2]}")

    io = shard.hierarchy.stats.snapshot()
    print("\nsimulated I/O by tier:")
    for tier, t in sorted(io.items()):
        print(f"  {tier:>7}: {t.reads:>6} reads {t.writes:>6} writes "
              f"{t.sim_ns/1e6:>10.1f} simulated ms")


if __name__ == "__main__":
    main()
