"""Ablation A2: the hash offset array (paper section 4.2).

"When processing index queries, the offset array can be used to provide a
more compact start and end offset for binary search."  This ablation
quantifies that: random lookups with the offset array enabled vs plain
binary search over the whole run.

The assertion is on **simulated probe counts** (``DecodeStats.
raw_key_probes``), not wall-clock ratios: probe counts are deterministic,
so the test cannot flake on a noisy host, while the wall-time series is
still produced for the figure.
"""

from repro.bench.ablations import ablation_offset_array
from repro.bench.fixtures import build_single_run
from repro.core.definition import i1_definition
from repro.core.query import QueryExecutor
from repro.workloads.generator import KeyMapper
from repro.workloads.queries import QueryBatchGenerator


def test_ablation_offset_array(benchmark, reporter):
    result = ablation_offset_array(
        run_sizes=(1_000, 10_000, 50_000), batch_size=300, repeat=2
    )
    reporter(result)

    # Deterministic claim: narrowing binary search with the offset array
    # must strictly cut raw key probes at every run size.  The counts are
    # exact (fixed seed, simulated counters), so strict inequality cannot
    # flake the way the old wall-clock ratio assertion did.
    with_oa = result.series_by_label("offset array (probes)").ys()
    without = result.series_by_label("binary search only (probes)").ys()
    for n, (a, b) in enumerate(zip(with_oa, without)):
        assert a < b, (
            f"offset array must reduce simulated probes at size index {n}: "
            f"{a} vs {b}"
        )
    # The headline metrics must carry the same ordering (guards against a
    # series/metric wiring mix-up in the ablation harness).
    assert (
        0
        < result.metrics["raw_key_probes_with_offset_array"]
        < result.metrics["raw_key_probes_without_offset_array"]
    )

    # Benchmark the primitive: offset-array lookups on the largest run.
    definition = i1_definition()
    mapper = KeyMapper(definition)
    run, _ = build_single_run(definition, 50_000, mapper)
    executor = QueryExecutor(definition, lambda: [run])
    batch = QueryBatchGenerator(mapper, 50_000, seed=67).random_batch(300)
    benchmark(lambda: executor.batch_lookup(batch))
