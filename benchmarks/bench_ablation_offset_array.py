"""Ablation A2: the hash offset array (paper section 4.2).

"When processing index queries, the offset array can be used to provide a
more compact start and end offset for binary search."  This ablation
quantifies that: random lookups with the offset array enabled vs plain
binary search over the whole run.
"""

from repro.bench.ablations import ablation_offset_array
from repro.bench.fixtures import build_single_run
from repro.core.definition import i1_definition
from repro.core.query import QueryExecutor
from repro.workloads.generator import KeyMapper
from repro.workloads.queries import QueryBatchGenerator


def test_ablation_offset_array(benchmark, reporter):
    result = ablation_offset_array(
        run_sizes=(1_000, 10_000, 50_000), batch_size=300, repeat=2
    )
    reporter(result)

    with_oa = result.series_by_label("offset array").ys()
    without = result.series_by_label("binary search only").ys()
    # The offset array should never lose, and should win clearly on the
    # largest runs where it skips the most probe levels.
    assert with_oa[-1] < without[-1], (
        "offset array must beat plain binary search on large runs"
    )

    # Benchmark the primitive: offset-array lookups on the largest run.
    definition = i1_definition()
    mapper = KeyMapper(definition)
    run, _ = build_single_run(definition, 50_000, mapper)
    executor = QueryExecutor(definition, lambda: [run])
    batch = QueryBatchGenerator(mapper, 50_000, seed=67).random_batch(300)
    benchmark(lambda: executor.batch_lookup(batch))
