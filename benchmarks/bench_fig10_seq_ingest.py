"""Figure 10: multi-run queries, sequentially ingested keys.

Paper: (a) sequential query batches beat random ones because the run
synopsis prunes irrelevant runs, and batching amortizes block fetches;
(b) the number of runs barely affects sequential queries but grows random
ones roughly linearly; (c) range-scan time grows linearly with the range,
with sequential ~ random ranges.

The shape assertions run on deterministic counters -- simulated I/O ns
for the batch/run-count sweeps (those claims are about block fetches)
and decode-probe counts for the scan sweep (linearity in entries
examined) -- so this bench no longer needs a wall-clock waiver; wall
time stays plot-only in the result metrics.
"""

from repro.bench.experiments import fig10_sequential_ingest
from repro.bench.fixtures import build_index_with_runs
from repro.bench.harness import (
    assert_dominates,
    assert_roughly_linear,
)
from repro.core.definition import i1_definition
from repro.workloads.generator import KeyMapper, KeyMode
from repro.workloads.queries import QueryBatchGenerator

NUM_RUNS = 20
ENTRIES_PER_RUN = 3_000
BATCH_SIZES = (1, 10, 100, 1_000)
RUN_COUNTS = (1, 5, 10, 20)
SCAN_RANGES = (1, 10, 100, 1_000, 10_000)


def test_fig10_sequential_ingest(benchmark, reporter):
    fig_a, fig_b, fig_c = fig10_sequential_ingest(
        batch_sizes=BATCH_SIZES, run_counts=RUN_COUNTS,
        scan_ranges=SCAN_RANGES, num_runs=NUM_RUNS,
        entries_per_run=ENTRIES_PER_RUN, repeat=1,  # counter-asserted
    )
    for result in (fig_a, fig_b, fig_c):
        reporter(result)

    # (a) batching amortizes per-key cost.  The comparison anchors at
    # batch 10: a single random key is unrepresentatively cheap (it
    # probes one block per unpruned run, paying none of the fan-out a
    # real batch amortizes), so batch 1 stays plot-only.
    for label in ("sequential query", "random query"):
        ys = fig_a.series_by_label(label).ys()
        assert ys[-1] < ys[1], (
            f"fig10a {label}: batching should amortize per-key cost"
        )
    # (a) at large batches, sequential <= random (synopsis pruning).
    seq_a = fig_a.series_by_label("sequential query").ys()
    rnd_a = fig_a.series_by_label("random query").ys()
    assert seq_a[-1] <= rnd_a[-1] * 1.2

    # (b) random grows with run count; sequential stays much flatter.
    seq_b = fig_b.series_by_label("sequential query").ys()
    rnd_b = fig_b.series_by_label("random query").ys()
    assert rnd_b[-1] / rnd_b[0] > (seq_b[-1] / seq_b[0]) * 1.5, (
        "fig10b: random queries should degrade faster with more runs"
    )

    # (c) scan time ~ linear in range (endpoints, generous tolerance).
    for label in ("sequential query", "random query"):
        series = fig_c.series_by_label(label)
        xs = [x for x, _ in series.points]
        # linearity only emerges once ranges dominate fixed costs
        assert_roughly_linear(
            xs[2:], series.ys()[2:], tolerance=6.0, label=f"fig10c {label}"
        )

    # Benchmark the primitive: a 1000-key random batch over 20 runs.
    definition = i1_definition()
    mapper = KeyMapper(definition)
    index = build_index_with_runs(
        definition, NUM_RUNS, ENTRIES_PER_RUN, KeyMode.SEQUENTIAL, mapper
    )
    qgen = QueryBatchGenerator(mapper, NUM_RUNS * ENTRIES_PER_RUN, seed=29)
    batch = qgen.random_batch(1_000)
    benchmark(lambda: index.batch_lookup(batch))
