"""Figure 12: concurrent readers vs lookup performance.

Paper: "more concurrent readers have small impact on the query
performance, which demonstrates the advantages of Umzi's lock-free design
for the readers."

Measured as per-lookup *thread CPU time* (CPython's GIL serializes wall
time across threads no matter how an index locks, so wall latency would
measure the interpreter, not Umzi; CPU per lookup is precisely what
lock-free readers keep flat -- see repro/bench/endtoend.py).
"""

import statistics

from repro.bench.endtoend import fig12_concurrent_readers, make_iot_shard
from repro.bench.harness import assert_flat_within

READERS = (1, 2, 4)


def test_fig12_concurrent_readers(benchmark, reporter):
    result = fig12_concurrent_readers(
        reader_counts=READERS,
        warmup_cycles=20,
        records_per_cycle=200,
        batches_per_reader=8,
        batch_size=50,
    )
    reporter(result)

    # Shape: mean per-lookup CPU cost stays within a small factor across
    # reader counts (lock-free readers do not interfere with each other).
    means = []
    for readers in READERS:
        ys = result.series_by_label(f"{readers} readers").ys()
        means.append(statistics.mean(ys))
    assert_flat_within(means, factor=3.0, label="fig12 reader scaling")

    # Benchmark the primitive: one lookup batch against a warm shard with
    # background daemons running.
    shard = make_iot_shard(post_groom_every=10)
    from repro.bench.endtoend import _iot_rows, _lookup_batch_for
    from repro.workloads.generator import IoTUpdateWorkload

    workload = IoTUpdateWorkload(200, update_percent=10, seed=5)
    for _ in range(20):
        shard.ingest(_iot_rows(workload.next_cycle()))
        shard.tick()
    import random

    rng = random.Random(3)
    population = workload.keys_ingested
    batch = _lookup_batch_for(
        shard, [rng.randrange(population) for _ in range(100)]
    )
    benchmark(lambda: shard.index_batch_lookup(batch))
