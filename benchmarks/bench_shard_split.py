"""Ablation A14: online shard split under closed-loop Zipfian load (ISSUE 8).

A :class:`~repro.bench.driver.ClosedLoopDriver` pushes thousands of
simulated clients -- Zipfian-skewed over a million-device keyspace, 85/5/10
point/range/ingest mix -- through a grid of ``{1, 2, 4, 8}`` shards x
``{1, 2, 4}`` maintenance daemons.  Each arm runs two equal phases of
traffic with an **online split of the hottest shard between them**: the
shard serving device 0 (the Zipfian head) is drained into two successors
by :meth:`~repro.wildfire.cluster.ShardedTable.split_shard` while the
workload's keys keep answering.

The demonstration the ISSUE asks for, asserted per arm:

* **zero query errors across the split** -- no misses on warm keys, no
  wrong payloads, no transient errors, no partial results, in either
  phase;
* the routing epoch advanced exactly twice (cutover publish + final
  publish) and the source shard retired;
* the whole run replays decision-for-decision from its seed (one arm is
  run twice and the two :class:`~repro.bench.driver.DriverReport`\\ s,
  latency tuples included, must be equal).

Every persisted number is simulated-ns or a ledger counter -- no
wall-clock anywhere -- so ``BENCH_shard_split.json`` is byte-stable and
CI diffs it against the committed artifact (same full-size run
everywhere, like A13).
"""

from repro.bench.driver import ClosedLoopDriver, DriverReport
from repro.bench.harness import ExperimentResult, Series
from repro.core.definition import ColumnSpec
from repro.wildfire.cluster import ShardedTable
from repro.wildfire.engine import ShardConfig
from repro.wildfire.schema import IndexSpec, TableSchema

SEED = 14
KEYSPACE = 1_000_000
CLIENTS = 2_000
WARM_DEVICES = 1_024
WARM_MSGS = 2
OPS_PER_PHASE = 2_500
MAINT_EVERY = 250  # ops between maintenance rounds
SHARD_COUNTS = (1, 2, 4, 8)
DAEMON_COUNTS = (1, 2, 4)
REPLAY_ARM = (2, 2)  # (shards, daemons) arm that is run twice


def make_table(num_shards: int) -> ShardedTable:
    schema = TableSchema(
        name="iot",
        columns=(ColumnSpec("device"), ColumnSpec("msg"), ColumnSpec("reading")),
        primary_key=("device", "msg"),
        sharding_key=("device",),
        partition_key=("msg",),
    )
    return ShardedTable(
        schema,
        IndexSpec(("device",), ("msg",), ("reading",)),
        num_shards=num_shards,
        config=ShardConfig(post_groom_every=2),
    )


def _combine(reports) -> DriverReport:
    """Sum chunked reports into one phase-level report."""
    latencies = []
    for report in reports:
        latencies.extend(report.latencies_ns)
    return DriverReport(
        ops=sum(r.ops for r in reports),
        points=sum(r.points for r in reports),
        hits=sum(r.hits for r in reports),
        misses=sum(r.misses for r in reports),
        cold=sum(r.cold for r in reports),
        wrong=sum(r.wrong for r in reports),
        ranges=sum(r.ranges for r in reports),
        range_rows=sum(r.range_rows for r in reports),
        ingests=sum(r.ingests for r in reports),
        ingested_rows=sum(r.ingested_rows for r in reports),
        shed=sum(r.shed for r in reports),
        errors=sum(r.errors for r in reports),
        partials=sum(r.partials for r in reports),
        sim_elapsed_ns=sum(r.sim_elapsed_ns for r in reports),
        latencies_ns=tuple(latencies),
    )


def run_phase(driver, table, ops: int, daemons: int, rr: list) -> DriverReport:
    """One traffic phase with ``daemons`` round-robin maintenance workers.

    Every ``MAINT_EVERY`` client operations, each daemon ticks the next
    live shard in round-robin order -- the "number of indexer daemons"
    dimension of the grid, scaled down to the simulation's cooperative
    scheduler.
    """
    reports = []
    done = 0
    while done < ops:
        chunk = min(MAINT_EVERY, ops - done)
        reports.append(driver.run(chunk))
        done += chunk
        live = table.live_shard_ids()
        for _ in range(daemons):
            table.shards[live[rr[0] % len(live)]].tick()
            rr[0] += 1
    return _combine(reports)


def run_arm(num_shards: int, daemons: int):
    """Warm, serve, split the hottest shard mid-run, serve again."""
    table = make_table(num_shards)
    driver = ClosedLoopDriver(
        table,
        clients=CLIENTS,
        keyspace=KEYSPACE,
        seed=SEED,
    )
    driver.warm(WARM_DEVICES, msgs_per_device=WARM_MSGS)
    table.run_cycles(4)  # groom the warm set down before timing anything
    rr = [0]

    before = run_phase(driver, table, OPS_PER_PHASE, daemons, rr)
    victim = table.shard_of_key((0,))  # the Zipfian head's shard
    split = table.split_shard(victim)
    after = run_phase(driver, table, OPS_PER_PHASE, daemons, rr)

    return table, split, before, after


def _assert_clean(label: str, report: DriverReport) -> None:
    assert report.errors == 0, f"A14 {label}: transient errors leaked"
    assert report.partials == 0, f"A14 {label}: partial results leaked"
    assert report.shed == 0, f"A14 {label}: nothing should shed without qos"
    assert report.misses == 0, f"A14 {label}: a warm key went missing"
    assert report.wrong == 0, f"A14 {label}: a warm key answered wrongly"
    assert report.hits > 0, f"A14 {label}: no traffic reached warm keys"


def test_shard_split_closed_loop(reporter):
    qps_series = {d: Series(f"qps (daemons={d})") for d in DAEMON_COUNTS}
    p99_series = {d: Series(f"post-split p99 sim-us (daemons={d})") for d in DAEMON_COUNTS}
    metrics = {}

    for num_shards in SHARD_COUNTS:
        for daemons in DAEMON_COUNTS:
            table, split, before, after = run_arm(num_shards, daemons)

            _assert_clean(f"{num_shards}x{daemons} pre-split", before)
            _assert_clean(f"{num_shards}x{daemons} post-split", after)
            # The split really happened, online: two epoch publishes
            # (cutover + final), the source retired, two successors live.
            assert split["phase"] == "done"
            assert table.routing_epoch() == 2
            assert len(table.stats()["retired_shards"]) == 1
            assert len(table.live_shard_ids()) == num_shards + 1
            assert split["copied_entries"] > 0
            # The Zipfian head survived the move with its payload intact.
            head = table.point_query((0,), (1,))
            assert head is not None and head.values == (0, 1, 1)

            arm = f"s{num_shards}_d{daemons}"
            qps_series[daemons].add(num_shards, round(after.qps, 3))
            p99_series[daemons].add(num_shards, after.latency_ns(99) / 1e3)
            metrics[f"{arm}_qps_before"] = round(before.qps, 3)
            metrics[f"{arm}_qps_after"] = round(after.qps, 3)
            metrics[f"{arm}_p50_ns_before"] = before.latency_ns(50)
            metrics[f"{arm}_p50_ns_after"] = after.latency_ns(50)
            metrics[f"{arm}_p99_ns_before"] = before.latency_ns(99)
            metrics[f"{arm}_p99_ns_after"] = after.latency_ns(99)
            metrics[f"{arm}_hits"] = float(before.hits + after.hits)
            metrics[f"{arm}_copied_entries"] = float(split["copied_entries"])
            metrics[f"{arm}_quiesce_grooms"] = float(split["quiesce_grooms"])

    # Replay determinism: the same arm twice, byte-for-byte -- latency
    # tuples, split summary, everything.
    _, split_a, before_a, after_a = run_arm(*REPLAY_ARM)
    _, split_b, before_b, after_b = run_arm(*REPLAY_ARM)
    assert split_a == split_b
    assert before_a == before_b
    assert after_a == after_b

    result = ExperimentResult(
        figure="Ablation A14",
        title="Online shard split under closed-loop Zipfian load",
        x_label="shards (pre-split)",
        y_label="qps / p99 (simulated)",
        series=[qps_series[d] for d in DAEMON_COUNTS]
        + [p99_series[d] for d in DAEMON_COUNTS],
        notes=(
            f"seed {SEED}: {CLIENTS} closed-loop clients, Zipfian(0.99) "
            f"over {KEYSPACE} devices, 85/5/10 point/range/ingest; the "
            "hottest shard splits online between two equal traffic "
            "phases with zero query errors, misses, or partials"
        ),
        metrics=metrics,
    )
    reporter(result, "shard_split")
