"""Figure 14: cached vs purged runs.

Paper: "the latency of the lookup queries is much lower when all the index
runs are cached (none) compared to the cases where the half or all of the
runs are purged"; purged runs cause latency spikes on first access because
data blocks stream back from shared storage.

y is deterministic simulated tier latency (the SSD/shared-storage gap is
the entire subject of this figure; see repro/bench/endtoend.py).
"""

import statistics

from repro.bench.endtoend import fig14_purge_levels, make_iot_shard
from repro.bench.harness import assert_dominates


def test_fig14_purge_levels(benchmark, reporter):
    # 35 cycles with post-groom every 10: the last 5 cycles are still in
    # the groomed zone, so "half" (groomed cached, post-groomed purged) is
    # genuinely cheaper than "all".
    result = fig14_purge_levels(
        purge_modes=("none", "half", "all"),
        cycles=35,
        records_per_cycle=200,
        batch_size=50,
        sample_every=5,
    )
    reporter(result)

    none_mean = statistics.mean(result.series_by_label("none").ys())
    half_mean = statistics.mean(result.series_by_label("half").ys())
    all_mean = statistics.mean(result.series_by_label("all").ys())

    # Shape: fully cached is far cheaper than purged; more purging is worse.
    assert all_mean > none_mean * 3, (
        f"purged lookups must be much slower: all={all_mean:.1f} vs "
        f"none={none_mean:.1f}"
    )
    assert all_mean > half_mean  # recent (groomed) data still cached
    assert half_mean > none_mean * 2

    # Benchmark the primitive: a batch against the fully-purged shard
    # (dominated by simulated shared-storage transfers; wall time measures
    # the Python transfer path).
    from repro.bench.endtoend import _iot_rows, _lookup_batch_for
    from repro.workloads.generator import IoTUpdateWorkload

    shard = make_iot_shard(post_groom_every=10)
    workload = IoTUpdateWorkload(200, update_percent=10, seed=5)
    for _ in range(20):
        shard.ingest(_iot_rows(workload.next_cycle()))
        shard.tick()
    shard.index.cache.set_cache_level(-1)
    import random

    rng = random.Random(11)
    population = workload.keys_ingested
    batch = _lookup_batch_for(
        shard, [rng.randrange(population) for _ in range(50)]
    )
    benchmark(lambda: shard.index_batch_lookup(batch))
