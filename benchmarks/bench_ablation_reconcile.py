"""Ablation A1: set vs priority-queue reconciliation (paper section 7.1.2).

The paper describes both but does not compare them.  Expectations: both
return identical results (tested in tests/core/test_query.py); the set
approach must materialize intermediate results, so the priority-queue
approach stays competitive as ranges grow.
"""

from repro.bench.ablations import ablation_reconcile_strategies
from repro.bench.fixtures import build_index_with_runs
from repro.core.definition import i1_definition
from repro.core.query import ReconcileStrategy
from repro.workloads.generator import KeyMapper, KeyMode
from repro.workloads.queries import QueryBatchGenerator


def test_ablation_reconcile(benchmark, reporter):
    result = ablation_reconcile_strategies(
        scan_ranges=(10, 100, 1_000, 10_000),
        num_runs=10,
        entries_per_run=3_000,
        repeat=1,
    )
    reporter(result)

    set_ys = result.series_by_label("set").ys()
    pq_ys = result.series_by_label("priority_queue").ys()
    # Both must scale with range; neither pathologically worse.
    for s, p in zip(set_ys, pq_ys):
        ratio = max(s, p) / max(min(s, p), 1e-12)
        assert ratio < 6.0, f"strategies diverged {ratio:.1f}x"

    # Benchmark the primitive: a large PQ scan.
    definition = i1_definition()
    total = 10 * 3_000
    mapper = KeyMapper(definition, spread=total)
    index = build_index_with_runs(
        definition, 10, 3_000, KeyMode.RANDOM, mapper
    )
    scan = QueryBatchGenerator(mapper, total, seed=61).sequential_scan(5_000)
    benchmark(
        lambda: index.range_scan(scan, ReconcileStrategy.PRIORITY_QUEUE)
    )
