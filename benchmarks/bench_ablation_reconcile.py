"""Ablation A1: set vs priority-queue reconciliation (paper section 7.1.2).

The paper describes both but does not compare them.  Expectations: both
return identical results, and both drive exactly the same run-search work
-- the strategies differ only in reconciliation structure (materialized
per-key dict vs streaming heap merge).

Assertions are on deterministic simulated counters, never on wall-clock
ratios: this test used to assert a timing ratio with ``repeat=1`` and
flaked on busy hosts exactly the way A2 once did (ROADMAP flagged it;
``tools/check_flaky.py`` now guards the whole benchmark tree against the
pattern).  Wall time is still *plotted* for the figure.
"""

from repro.bench.ablations import ablation_reconcile_strategies
from repro.bench.fixtures import build_index_with_runs
from repro.core.definition import i1_definition
from repro.core.query import ReconcileStrategy
from repro.workloads.generator import KeyMapper, KeyMode
from repro.workloads.queries import QueryBatchGenerator

SCAN_RANGES = (10, 100, 1_000, 10_000)


def test_ablation_reconcile(benchmark, reporter):
    result = ablation_reconcile_strategies(
        scan_ranges=SCAN_RANGES,
        num_runs=10,
        entries_per_run=3_000,
        repeat=1,  # counter-asserted: wall time is plotted, never asserted
    )
    reporter(result)

    # Deterministic claim 1: both strategies reconcile to the exact same
    # answer at every range.
    for scan_range in SCAN_RANGES:
        assert result.metrics[f"results_identical_range{scan_range}"] == 1.0

    # Deterministic claim 2: the run-search cost is strategy-independent
    # -- identical raw sort-key probe counts at every range (reconciling
    # differently must not change which slices are probed).
    for scan_range in SCAN_RANGES:
        set_probes = result.metrics[f"raw_key_probes_set_range{scan_range}"]
        pq_probes = result.metrics[
            f"raw_key_probes_priority_queue_range{scan_range}"
        ]
        assert set_probes == pq_probes, (
            f"range {scan_range}: set probed {set_probes}, "
            f"priority_queue probed {pq_probes}"
        )

    # Deterministic claim 3: probe counts grow with the scan range (the
    # scaling the figure visualizes, asserted on the simulated counter).
    probes_by_range = [
        result.metrics[f"raw_key_probes_set_range{r}"] for r in SCAN_RANGES
    ]
    assert probes_by_range == sorted(probes_by_range)
    assert probes_by_range[-1] > probes_by_range[0]

    # Benchmark the primitive: a large PQ scan.
    definition = i1_definition()
    total = 10 * 3_000
    mapper = KeyMapper(definition, spread=total)
    index = build_index_with_runs(
        definition, 10, 3_000, KeyMode.RANDOM, mapper
    )
    scan = QueryBatchGenerator(mapper, total, seed=61).sequential_scan(5_000)
    benchmark(
        lambda: index.range_scan(scan, ReconcileStrategy.PRIORITY_QUEUE)
    )
