"""Ablation A8: zero-decode raw-key hot path (v2 block format).

Paper section 4.2 stores all ordering columns "in lexicographically
comparable formats ... so that keys can be compared by simply using memory
compare operations".  The v2 data-block format makes the reproduction
actually do that: binary-search probes, batched lookups, and K-way merges
compare raw sort-key slices and decode an ``IndexEntry`` only for entries
they emit.  ``use_raw_keys=False`` restores the legacy decode-per-probe
path, so this ablation reports entry-decodes-per-lookup and wall time for
both, plus the decode count of the blob-level merge (which must be zero).
"""

import heapq

from repro.bench.fixtures import build_single_run, entries_for_keys
from repro.bench.harness import ExperimentResult, Series, measure_wall_s
from repro.core.builder import RunBuilder
from repro.core.definition import i1_definition
from repro.core.entry import Zone
from repro.core.merge import merge_entry_blob_streams, merge_entry_streams
from repro.core.query import QueryExecutor
from repro.core.run import Synopsis
from repro.storage.hierarchy import StorageHierarchy
from repro.workloads.generator import KeyGenerator, KeyMapper, KeyMode
from repro.workloads.queries import QueryBatchGenerator

RUN_SIZE = 20_000
BATCH = 300
MERGE_RUN_SIZE = 5_000


def _measure_lookup_path(run, hierarchy, batch, use_raw_keys):
    definition = run.definition
    executor = QueryExecutor(
        definition, lambda: [run], use_raw_keys=use_raw_keys
    )
    decode = hierarchy.stats.decode

    def op():
        run.drop_decode_cache()
        return executor.batch_lookup(batch)

    # Decode accounting on a cold decode cache (one clean pass) ...
    run.drop_decode_cache()
    before = decode.snapshot()
    results = executor.batch_lookup(batch)
    delta = decode.diff(before)
    # ... then wall time over repeated passes.
    elapsed = measure_wall_s(op, repeat=2)
    return results, delta, elapsed


def test_ablation_zero_decode(benchmark, reporter):
    definition = i1_definition()
    mapper = KeyMapper(definition)
    run, hierarchy = build_single_run(definition, RUN_SIZE, mapper)
    batch = QueryBatchGenerator(mapper, RUN_SIZE, seed=29).random_batch(BATCH)

    legacy_results, legacy_delta, legacy_s = _measure_lookup_path(
        run, hierarchy, batch, use_raw_keys=False
    )
    raw_results, raw_delta, raw_s = _measure_lookup_path(
        run, hierarchy, batch, use_raw_keys=True
    )

    # Same answers on both paths.
    summarize = lambda entries: [
        None if e is None else (e.equality_values, e.begin_ts) for e in entries
    ]
    assert summarize(raw_results) == summarize(legacy_results)

    hits = sum(1 for e in raw_results if e is not None)
    # Duplicate keys in the random batch emit the same (memoized) entry,
    # so the decode floor is the number of *distinct* emitted entries.
    distinct_hits = len({e.rid for e in raw_results if e is not None})
    legacy_dpl = legacy_delta.entry_decodes / BATCH
    raw_dpl = raw_delta.entry_decodes / BATCH

    # The acceptance bar: the raw path decodes only the entries it emits.
    assert hits > 0
    assert raw_delta.entry_decodes == distinct_hits, (
        f"raw path decoded {raw_delta.entry_decodes} entries for "
        f"{distinct_hits} distinct hits; probes must be zero-decode"
    )
    assert raw_delta.raw_key_probes > 0
    # The legacy path decodes every probed entry -- strictly more than one
    # decode per lookup once binary-search probes are counted.
    assert legacy_delta.entry_decodes > BATCH

    series = [
        Series("legacy decode-per-probe", [
            ("decodes/lookup", legacy_dpl),
            ("time (normalized)", 1.0),
        ]),
        Series("raw memcmp slices", [
            ("decodes/lookup", raw_dpl),
            ("time (normalized)", raw_s / legacy_s),
        ]),
    ]
    result = ExperimentResult(
        figure="Ablation A8",
        title="Zero-decode raw-key probes vs legacy decode path",
        x_label="metric",
        y_label="value (time normalized to legacy path)",
        series=series,
        notes=(
            f"single {RUN_SIZE}-entry run, {BATCH} random point lookups; "
            f"legacy={legacy_delta.entry_decodes} decodes "
            f"({legacy_dpl:.1f}/lookup), raw={raw_delta.entry_decodes} "
            f"({raw_dpl:.2f}/lookup, = emitted hits)"
        ),
    )
    reporter(result)

    # No wall-clock gate: the deterministic decode counters above already
    # prove the zero-decode property, and 2-repeat timings of a 300-lookup
    # batch jitter too much on a loaded machine to assert on (the reported
    # normalized time typically lands around 0.35x).

    benchmark(lambda: (run.drop_decode_cache(),
                       QueryExecutor(definition, lambda: [run]).batch_lookup(batch)))


def test_merge_path_is_zero_decode(reporter):
    definition = i1_definition()
    hierarchy = StorageHierarchy()
    builder = RunBuilder(definition, hierarchy, data_block_bytes=4096)
    mapper = KeyMapper(definition)
    generator = KeyGenerator(KeyMode.RANDOM, seed=5, key_space=MERGE_RUN_SIZE * 4)
    runs = []
    for i in range(2):
        keys = generator.next_batch(MERGE_RUN_SIZE)
        entries = entries_for_keys(
            definition, keys, mapper, ts_start=1 + i * MERGE_RUN_SIZE, block_id=i
        )
        runs.append(
            builder.build(f"in{i}", entries, Zone.GROOMED, 0, i, i)
        )
    decode = hierarchy.stats.decode

    # Legacy merge (the seed's implementation): decode every input entry,
    # re-encode its sort key for heap ordering, re-serialize to build.
    def legacy_merge():
        def stream(run, recency):
            for entry in run.iter_entries():
                yield entry.sort_key(definition), recency, entry

        previous = None
        for sort_key, _recency, entry in heapq.merge(
            *[stream(r, i) for i, r in enumerate(runs)]
        ):
            if sort_key == previous:
                continue
            previous = sort_key
            yield entry

    before = decode.snapshot()
    legacy_entries = list(legacy_merge())
    builder.build("legacy-out", legacy_entries, Zone.GROOMED, 1, 0, 1, presorted=True)
    legacy_decodes = decode.diff(before).entry_decodes

    for run in runs:
        run.drop_decode_cache()

    # Blob merge: entry bytes stream through verbatim.
    before = decode.snapshot()
    merged = list(merge_entry_blob_streams(definition, runs))
    blob_run = builder.build_from_blobs(
        "blob-out",
        merged,
        Synopsis.union([r.header.synopsis for r in runs]),
        Zone.GROOMED,
        1,
        0,
        1,
    )
    blob_delta = decode.diff(before)

    assert blob_delta.entry_decodes == 0, (
        f"blob merge decoded {blob_delta.entry_decodes} entries; "
        "the K-way merge must be zero-decode"
    )
    assert blob_delta.blob_copies == len(merged)
    assert legacy_decodes >= len(legacy_entries)
    assert blob_run.entry_count == len(legacy_entries)
    # Byte-identical output entries either way.
    assert [blob for _sk, blob in merged] == [
        e.to_bytes(definition) for e in legacy_entries
    ]

    result = ExperimentResult(
        figure="Ablation A8b",
        title="K-way merge entry decodes: blob streaming vs decode+re-encode",
        x_label="merge path",
        y_label="entry decodes",
        series=[
            Series("legacy entry merge", [("decodes", float(legacy_decodes))]),
            Series("blob merge", [("decodes", float(blob_delta.entry_decodes))]),
        ],
        notes=(
            f"2 runs x {MERGE_RUN_SIZE} entries; blob path forwards "
            f"{blob_delta.blob_copies} pre-serialized blobs untouched"
        ),
    )
    reporter(result)
