"""Shared reporting helpers for the benchmark suite.

Each ``bench_figXX`` module regenerates one figure of the paper: it runs
the parameter sweep, prints and saves the normalized series (the same
normalization the figure uses), asserts the *shape* claims the paper makes,
and registers a pytest-benchmark timing for the figure's core operation.

Figure tables land in ``benchmarks/results/``.
"""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def report(result) -> None:
    """Print a figure table and persist it under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    table = result.format_table()
    print("\n" + table)
    slug = result.figure.lower().replace(" ", "_")
    result.save(os.path.join(RESULTS_DIR, f"{slug}.txt"))


@pytest.fixture
def reporter():
    return report
