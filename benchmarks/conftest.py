"""Shared reporting helpers for the benchmark suite.

Each ``bench_figXX`` module regenerates one figure of the paper: it runs
the parameter sweep, prints and saves the normalized series (the same
normalization the figure uses), asserts the *shape* claims the paper makes,
and registers a pytest-benchmark timing for the figure's core operation.

Figure tables land in ``benchmarks/results/`` as both a human-readable
``<slug>.txt`` table and a machine-readable ``BENCH_<slug>.json`` payload
(series points plus headline metrics) so the perf trajectory is trackable
across PRs.
"""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def report(result, slug=None) -> None:
    """Print a figure table; persist .txt and BENCH_*.json artifacts."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    table = result.format_table()
    print("\n" + table)
    if slug is None:
        slug = result.figure.lower().replace(" ", "_")
    result.save(os.path.join(RESULTS_DIR, f"{slug}.txt"))
    result.save_json(os.path.join(RESULTS_DIR, f"BENCH_{slug}.json"))


@pytest.fixture
def reporter():
    return report
