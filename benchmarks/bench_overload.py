"""Ablation A13: overload protection under a seeded brownout + spike (ISSUE 7).

A closed-loop driver pushes the same four-phase schedule through two
cluster arms:

* **protected** -- ``ShardedTable`` with the QoS stack (token-bucket
  admission, deadline shedding, maintenance backpressure, per-shard
  circuit breaker with degraded snapshot reads);
* **unprotected** -- the identical table with ``qos=None``.

The schedule is reproducible from one integer: ``SEED`` drives the
shard fault plans and the :class:`BrownoutWindow` storm on the victim
shard's shared tier.  Phases:

1. **warm**    -- ingest, groom, and serve a baseline working set;
2. **calm**    -- paced queries (the arrival clock advances between
   requests), everything admitted;
3. **storm**   -- the brownout window opens and maintenance trips the
   victim's breaker; then a burst of back-to-back queries arrives with
   no arrival-clock advance.  Protected: excess load sheds with typed
   errors, victim-shard queries degrade to the pinned snapshot, and the
   scheduler throttles maintenance.  Unprotected: maintenance errors
   crash through the serving loop (a real deployment's dead groomer
   daemon);
4. **recover** -- storage heals; idle simulated time lapses the breaker
   window, half-open probes re-run the requeued grooming, the breaker
   closes, and backpressure releases.

Every number asserted or persisted is a deterministic simulated-clock or
ledger counter -- there is no wall-clock measurement anywhere in this
module, so the checked-in ``BENCH_overload.json`` is byte-stable and CI
diffs it against the committed artifact.  The fixture is small enough to
run at full size everywhere (no ``UMZI_BENCH_SMOKE`` scaling, which is
what keeps the artifact identical between CI and local runs).
"""

from repro.bench.harness import ExperimentResult, Series
from repro.core.definition import ColumnSpec
from repro.faults.plan import BrownoutWindow, FaultPlan
from repro.faults.storage import FaultyTier
from repro.qos.admission import QosConfig
from repro.qos.breaker import BreakerConfig, BreakerState
from repro.qos.errors import QosError
from repro.storage.hierarchy import StorageHierarchy
from repro.storage.metrics import IOStats
from repro.storage.retry import TransientIOError
from repro.wildfire.cluster import ShardedTable
from repro.wildfire.engine import ShardConfig
from repro.wildfire.schema import IndexSpec, TableSchema

SEED = 11
NUM_SHARDS = 2
DEVICES = 24
CALM_QUERIES = 40
SPIKE_QUERIES = 60
CALM_SPACING_NS = 100_000  # arrival-clock advance between calm queries
MAX_RECOVERY_ROUNDS = 150
PHASES = ("warm", "calm", "storm", "recover")


def protected_qos() -> QosConfig:
    """Sized so calm traffic sails through and the spike sheds.

    The bucket refills one token per 50 us of arrival time; calm pacing
    (100 us/query) keeps it full, while the spike books queue slots until
    the wait tops ``max_queue_ns``.  ``open_ns`` exceeds the retry loop's
    accumulated backoff (1+2+4 simulated ms) so a tripping operation sees
    a solidly-open breaker, and ``high_water_ns`` sits below the maximum
    bookable queue so the spike itself also throttles maintenance.
    """
    return QosConfig(
        rate_per_sim_s=20_000.0,
        burst=16.0,
        max_queue_ns=400_000,
        deadline_ns=50_000_000,
        breaker=BreakerConfig(failure_threshold=3, open_ns=8_000_000),
        high_water_ns=200_000,
        low_water_ns=50_000,
        release_after=2,
    )


def make_table(protected: bool):
    schema = TableSchema(
        name="iot",
        columns=(ColumnSpec("device"), ColumnSpec("msg"), ColumnSpec("reading")),
        primary_key=("device", "msg"),
        sharding_key=("device",),
        partition_key=("msg",),
    )
    tiers = {}

    def factory(shard_id):
        stats = IOStats()
        tier = FaultyTier(
            FaultPlan(seed=SEED + shard_id), run_prefix="iot", stats=stats
        )
        tiers[shard_id] = tier
        return StorageHierarchy(shared=tier, stats=stats)

    table = ShardedTable(
        schema,
        IndexSpec(("device",), ("msg",), ("reading",)),
        num_shards=NUM_SHARDS,
        config=ShardConfig(post_groom_every=2),
        qos=protected_qos() if protected else None,
        hierarchy_factory=factory,
    )
    return table, tiers


def run_arm(protected: bool):
    """Drive the four-phase schedule; returns (phase records, summary)."""
    table, tiers = make_table(protected)
    phase_stats = {p: {"ok": 0, "shed": 0, "errors": 0} for p in PHASES}
    queue_waits = []

    def query(phase, device):
        qos = table.qos_stats() if protected else None
        queued_before = qos.queue_sim_ns if qos else 0
        try:
            record = table.point_query((device,), (1,))
            assert record.values == (device, 1, device * 10), (
                f"A13 {phase}: wrong answer for device {device}"
            )
            phase_stats[phase]["ok"] += 1
            if qos:
                queue_waits.append(qos.queue_sim_ns - queued_before)
        except QosError:
            phase_stats[phase]["shed"] += 1
        except TransientIOError:
            phase_stats[phase]["errors"] += 1

    def tick(phase):
        try:
            table.tick()
        except TransientIOError:
            phase_stats[phase]["errors"] += 1

    # Phase 1: warm.  Ingest the working set and groom it down.
    table.ingest([(d, 1, d * 10) for d in range(DEVICES)])
    table.run_cycles(2)
    table.advance_clock(10_000_000)
    for d in range(DEVICES):
        table.advance_clock(CALM_SPACING_NS)
        query("warm", d)

    # Phase 2: calm.  Paced traffic; the bucket refills between arrivals.
    for i in range(CALM_QUERIES):
        table.advance_clock(CALM_SPACING_NS)
        query("calm", i % DEVICES)

    # Phase 3: storm.  The seeded brownout window opens on the victim's
    # shared tier; fresh rows force a groom onto the browning tier.
    victim = table.shard_of_row((0, 0, 0))
    victim_device = next(
        d for d in range(DEVICES) if table.shard_of_row((d, 0, 0)) == victim
    )
    tiers[victim].start_brownout(BrownoutWindow.generate(SEED, length_ops=30))
    table.advance_clock(CALM_SPACING_NS)
    table.ingest([(victim_device, 99, 999)])
    tick("storm")  # groom hits the brownout; protected arm trips the breaker
    tick("storm")
    for i in range(SPIKE_QUERIES):  # back-to-back burst: no advance_clock
        query("storm", i % DEVICES)
    tick("storm")  # mid-spike maintenance: protected arm throttles

    # Phase 4: recover.  Idle simulated time lapses the breaker window;
    # a trickle of fresh rows keeps maintenance touching shared storage,
    # so half-open probes ride the groom path (burning off the brownout
    # window's tail) until the breaker closes and the committed log
    # drains (bounded, seeded round count).
    rounds = 0
    while rounds < MAX_RECOVERY_ROUNDS:
        rounds += 1
        table.advance_clock(protected_qos().breaker.open_ns)
        table.ingest([(victim_device, 100 + rounds, rounds)])
        tick("recover")
        breaker = table.breaker(victim)
        breaker_closed = breaker is None or breaker.state() is BreakerState.CLOSED
        if breaker_closed and table.shards[victim].committed_log.pending_rows() == 0:
            break
    for d in range(DEVICES):
        table.advance_clock(CALM_SPACING_NS)
        query("recover", d)
    table.advance_clock(CALM_SPACING_NS)
    assert table.point_query((victim_device,), (99,)).values == (
        victim_device, 99, 999,
    ), "A13: the storm-time ingest must land after recovery"

    summary = {
        "recovery_rounds": rounds,
        "sim_now_ns": table.sim_now(),
        "qos": table.qos_stats().snapshot() if protected else None,
        "queue_waits": tuple(queue_waits),
        "victim_degraded_after": table.shards[victim].degraded,
    }
    return phase_stats, summary


def _p99(values):
    ordered = sorted(values)
    return float(ordered[(99 * (len(ordered) - 1)) // 100]) if ordered else 0.0


def test_overload_protection(reporter):
    protected_phases, protected = run_arm(protected=True)
    unprotected_phases, unprotected = run_arm(protected=False)

    # Determinism: the whole storm replays from the seed, decision for
    # decision (admit/shed/breaker transitions and the clock they left).
    replay_phases, replay = run_arm(protected=True)
    assert replay_phases == protected_phases
    assert replay == protected

    qos = protected["qos"]

    # Protected arm: every admitted query answered correctly -- zero
    # errors in every phase -- while the spike sheds typed errors.
    assert all(p["errors"] == 0 for p in protected_phases.values())
    assert protected_phases["storm"]["shed"] > 0
    assert qos.shed == sum(p["shed"] for p in protected_phases.values())
    assert qos.deadline_misses == 0  # bounded: the shed path fires first
    # Degraded reads served the victim shard while its breaker was open.
    assert qos.degraded_reads > 0
    assert qos.breaker_opens >= 1
    assert qos.breaker_closes >= 1
    assert not protected["victim_degraded_after"]
    # Maintenance provably dropped under pressure, then recovered.
    assert qos.maintenance_throttled > 0
    assert qos.maintenance_cycles > 0
    assert qos.throttle_releases >= 1
    # Calm traffic never queued; the spike's booked waits are bounded by
    # the admission cap.
    spike_waits = [w for w in protected["queue_waits"] if w > 0]
    assert spike_waits and max(spike_waits) <= protected_qos().max_queue_ns

    # Unprotected arm: the same schedule crashes maintenance through the
    # serving loop (nonzero errors) and nothing sheds or degrades.
    assert unprotected_phases["storm"]["errors"] > 0
    assert all(p["shed"] == 0 for p in unprotected_phases.values())
    assert unprotected["qos"] is None

    goodput = Series("protected ok")
    goodput_un = Series("unprotected ok")
    shed = Series("protected shed")
    errors_un = Series("unprotected errors")
    for phase in PHASES:
        goodput.add(phase, float(protected_phases[phase]["ok"]))
        goodput_un.add(phase, float(unprotected_phases[phase]["ok"]))
        shed.add(phase, float(protected_phases[phase]["shed"]))
        errors_un.add(phase, float(unprotected_phases[phase]["errors"]))

    offered = qos.offered
    result = ExperimentResult(
        figure="Ablation A13",
        title="Overload protection: protected vs unprotected under brownout+spike",
        x_label="phase",
        y_label="queries (count)",
        series=[goodput, goodput_un, shed, errors_un],
        notes=(
            f"seed {SEED}: seeded brownout window on the victim shard's "
            "shared tier plus a back-to-back query burst; protected arm "
            "sheds typed errors and serves degraded snapshot reads, "
            "unprotected arm surfaces maintenance crashes"
        ),
        metrics={
            "protected_offered": float(offered),
            "protected_admitted": float(qos.admitted),
            "protected_shed_rate": qos.shed / offered,
            "protected_p99_queue_sim_ns": _p99(protected["queue_waits"]),
            "protected_deadline_misses": float(qos.deadline_misses),
            "protected_degraded_reads": float(qos.degraded_reads),
            "protected_breaker_opens": float(qos.breaker_opens),
            "protected_breaker_closes": float(qos.breaker_closes),
            "protected_maintenance_cycles": float(qos.maintenance_cycles),
            "protected_maintenance_throttled": float(qos.maintenance_throttled),
            "protected_recovery_rounds": float(protected["recovery_rounds"]),
            "protected_sim_now_ns": float(protected["sim_now_ns"]),
            "unprotected_errors": float(
                sum(p["errors"] for p in unprotected_phases.values())
            ),
            "unprotected_recovery_rounds": float(
                unprotected["recovery_rounds"]
            ),
        },
    )
    reporter(result, "overload")
