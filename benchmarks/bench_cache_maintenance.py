"""Ablation A10: maintenance-aware cache admission (`maintenance_read_mode`).

The scan-thrash scenario ROADMAP flagged after PR 2: streaming evolve reads
entire (purged) groomed runs through the normal hierarchy path.  Under the
legacy promote-everything policy those one-pass maintenance reads flood a
bounded SSD cache with blocks no query will touch again, so the query path
can no longer admit its own hot blocks and every lookup falls through to
shared storage.  With ``maintenance_read_mode="intent"`` (the default),
maintenance reads carry ``ReadIntent.MAINTENANCE`` and are never promoted:
the query working set warms once and then hits the cache.

The experiment pins the cache level to -1 (everything purged, Figure-14
style), interleaves two streaming evolves with rounds of hot point lookups
over the most recent runs, and compares the query-path cache hit rate and
the per-intent promotion counters between the two modes.

Acceptance (ISSUE 3): the query-path hit rate under concurrent evolve is
strictly higher with the intent mode than with the legacy mode, and
maintenance reads register **zero** SSD promotions in the intent mode.

Set ``UMZI_BENCH_SMOKE=1`` for the CI-sized fixture.
"""

import os
import time

from repro.bench.fixtures import entries_for_keys
from repro.bench.harness import ExperimentResult, Series
from repro.core.definition import i1_definition
from repro.core.entry import RID, Zone
from repro.core.index import UmziConfig, UmziIndex
from repro.core.levels import LevelConfig
from repro.storage.metrics import ReadIntent
from repro.workloads.generator import KeyMapper

_SMOKE = os.environ.get("UMZI_BENCH_SMOKE") == "1"
NUM_RUNS = 10
ENTRIES_PER_RUN = 300 if _SMOKE else 1_500
HOT_KEYS = 12 if _SMOKE else 24
QUERY_ROUNDS = 6 if _SMOKE else 10

DEF = i1_definition()


def _build_index(name, mode):
    levels = LevelConfig(
        groomed_levels=3, post_groomed_levels=2,
        max_runs_per_level=4, size_ratio=4,
    )
    index = UmziIndex(
        DEF,
        config=UmziConfig(
            name=name,
            levels=levels,
            data_block_bytes=2048,
            maintenance_read_mode=mode,
            # Query-driven caching: blocks a query promotes from purged
            # runs stay resident (the cache the evolve must not displace).
            release_purged_blocks_after_query=False,
        ),
    )
    mapper = KeyMapper(DEF)
    ts = 1
    for gid in range(NUM_RUNS):
        keys = list(range(gid * ENTRIES_PER_RUN, (gid + 1) * ENTRIES_PER_RUN))
        index.add_groomed_run(
            entries_for_keys(DEF, keys, mapper, ts_start=ts, block_id=gid),
            gid, gid,
        )
        ts += ENTRIES_PER_RUN
    # Merge level 0 down so the groomed zone holds two wide level-1 runs
    # (gids 0..3 and 4..7) plus the two newest level-0 runs (8, 9): the
    # wide runs are what the evolves stream, the newest runs are what the
    # hot queries touch.
    index.merger.merge_until_stable(Zone.GROOMED)
    return index, mapper


def _rid_mapper(lo_ts, hi_ts):
    """Post-groomed relocation for versions with beginTS in [lo_ts, hi_ts]."""
    def new_rid_of(begin_ts):
        if lo_ts <= begin_ts <= hi_ts:
            return RID(Zone.POST_GROOMED, begin_ts // 1000, begin_ts % 1000)
        return None
    return new_rid_of


def _hot_keys():
    # Keys living in the two newest groomed runs (gids 8 and 9) -- the
    # recent data real query traffic concentrates on.
    lo = 8 * ENTRIES_PER_RUN
    hi = NUM_RUNS * ENTRIES_PER_RUN
    step = max(1, (hi - lo) // HOT_KEYS)
    return list(range(lo, hi, step))[:HOT_KEYS]


def _run_mode(mode):
    index, mapper = _build_index(f"cache-maint-{mode}", mode)

    # Bound the SSD at half a wide groomed run: comfortably larger than the
    # hot query working set, but small enough that legacy maintenance
    # promotions exhaust it before the queries can admit anything.
    wide_runs = [
        run for run in index.run_lists[Zone.GROOMED].snapshot()
        if run.level == 1
    ]
    assert len(wide_runs) == 2, "fixture expects two merged level-1 runs"
    index.hierarchy.ssd.capacity_bytes = wide_runs[0].header.data_bytes // 2
    # Everything purged: all data blocks now live only in shared storage.
    index.cache.set_cache_level(-1)

    hot = _hot_keys()
    stats = index.hierarchy.stats
    query_before = stats.intents[ReadIntent.QUERY].snapshot()
    maint_before = stats.intents[ReadIntent.MAINTENANCE].snapshot()

    def query_round():
        # Each round models an independent query batch: the per-run decoded
        # view memoization is batch-lifetime state (release_after_query
        # clears it; it is disabled here to allow query-driven caching), so
        # reset it so every round's block touches go through the hierarchy
        # and the SSD hit rate is actually exercised.
        for run in index.all_runs():
            run.drop_decode_cache()
        for k in hot:
            entry = index.lookup(mapper.equality_values(k), mapper.sort_values(k))
            assert entry is not None

    start = time.perf_counter()
    # Both evolves cover only a prefix of the first wide run's 0..3 span,
    # so the run is never fully under the watermark and never collected --
    # the sustained-churn case where the blocks a legacy evolve promoted
    # are not cleaned up by garbage collection either.
    index.evolve_streaming(1, _rid_mapper(1, 2 * ENTRIES_PER_RUN), 0, 1)
    for round_no in range(QUERY_ROUNDS):
        query_round()
        if round_no == 0:
            # Evolve 2 lands mid-traffic and streams the wide run again.
            index.evolve_streaming(
                2,
                _rid_mapper(2 * ENTRIES_PER_RUN + 1, 3 * ENTRIES_PER_RUN),
                2, 2,
            )
    wall_s = time.perf_counter() - start

    query_delta = stats.intents[ReadIntent.QUERY].diff(query_before)
    maint_delta = stats.intents[ReadIntent.MAINTENANCE].diff(maint_before)
    return {
        "mode": mode,
        "query_hit_rate": query_delta.local_hit_rate(),
        "query_reads": query_delta.reads,
        "query_promotions": query_delta.promotions,
        "maintenance_reads": maint_delta.reads,
        "maintenance_promotions": maint_delta.promotions,
        "wall_s": wall_s,
        "ssd_used_bytes": index.hierarchy.ssd.used_bytes,
        "query_sim_ns": None,  # filled below if needed
    }


def test_cache_hit_rate_under_concurrent_evolve(reporter):
    intent = _run_mode("intent")
    legacy = _run_mode("legacy")

    # Both modes streamed the maintenance workload.  (Counts differ:
    # legacy memoizes stream views exactly like the pre-intent code, so
    # its second evolve re-reads nothing.)
    assert intent["maintenance_reads"] > 0
    assert legacy["maintenance_reads"] > 0

    # Acceptance: maintenance reads register zero SSD promotions with the
    # intent-aware mode; the legacy mode floods the cache.
    assert intent["maintenance_promotions"] == 0, (
        f"intent mode promoted {intent['maintenance_promotions']} "
        "maintenance blocks; maintenance reads must bypass admission"
    )
    assert legacy["maintenance_promotions"] > 0

    # Acceptance: the query path keeps its cache under maintenance churn.
    assert intent["query_hit_rate"] > legacy["query_hit_rate"], (
        f"query hit rate {intent['query_hit_rate']:.3f} (intent) must beat "
        f"{legacy['query_hit_rate']:.3f} (legacy)"
    )

    result = ExperimentResult(
        figure="Ablation A10",
        title="Query-path cache hit rate under concurrent evolve",
        x_label="metric",
        y_label="value",
        series=[
            Series("intent-aware (maintenance_read_mode=intent)", [
                ("query hit rate", intent["query_hit_rate"]),
                ("maintenance promotions", float(intent["maintenance_promotions"])),
                ("query promotions", float(intent["query_promotions"])),
            ]),
            Series("legacy (promote everything)", [
                ("query hit rate", legacy["query_hit_rate"]),
                ("maintenance promotions", float(legacy["maintenance_promotions"])),
                ("query promotions", float(legacy["query_promotions"])),
            ]),
        ],
        notes=(
            f"{NUM_RUNS} groomed runs x {ENTRIES_PER_RUN} entries, all "
            f"levels purged, SSD bounded at half a wide run; {QUERY_ROUNDS} "
            f"rounds x {len(_hot_keys())} hot lookups with two streaming "
            "evolves interleaved.  Hit rate = local hits / reads on the "
            "QUERY intent ledger."
        ),
        metrics={
            "query_hit_rate_intent": intent["query_hit_rate"],
            "query_hit_rate_legacy": legacy["query_hit_rate"],
            "maintenance_promotions_intent": float(
                intent["maintenance_promotions"]
            ),
            "maintenance_promotions_legacy": float(
                legacy["maintenance_promotions"]
            ),
            "maintenance_reads_intent": float(intent["maintenance_reads"]),
            "maintenance_reads_legacy": float(legacy["maintenance_reads"]),
            "query_reads_per_mode": float(intent["query_reads"]),
            "wall_s_intent": intent["wall_s"],
            "wall_s_legacy": legacy["wall_s"],
        },
    )
    reporter(result, "cache_maintenance")
