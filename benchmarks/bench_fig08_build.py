"""Figure 8: index building performance.

Paper: build time scales ~linearly with entries; I3 (one fewer key column)
is fastest; the number of indexed columns matters far less than sort cost.
"""

from repro.bench.experiments import fig08_build
from repro.bench.fixtures import entries_for_keys
from repro.bench.harness import assert_roughly_linear
from repro.core.builder import RunBuilder
from repro.core.definition import i1_definition
from repro.core.entry import Zone
from repro.storage.hierarchy import StorageHierarchy

SIZES = (1_000, 5_000, 20_000)


def test_fig08_build(benchmark, reporter):
    result = fig08_build(
        sizes=SIZES,
        repeat=1,  # wallclock-shape-ok: roughly-linear over a 20x sweep, 1.6x slack per hop
    )
    reporter(result)

    # Shape: near-linear build time for every definition.
    for label in ("I1", "I2", "I3"):
        series = result.series_by_label(label)
        assert_roughly_linear(
            [x for x, _ in series.points], series.ys(),
            tolerance=3.0, label=f"fig8 {label}",
        )
    # Shape: I3 never meaningfully slower than I1 (one fewer key column).
    i1 = result.series_by_label("I1").ys()
    i3 = result.series_by_label("I3").ys()
    for a, b in zip(i3, i1):
        assert a <= b * 1.3, f"I3 should not be slower than I1: {a} vs {b}"

    # Benchmark the primitive: building one run of the middle size.
    definition = i1_definition()
    entries = entries_for_keys(definition, list(range(SIZES[1])))

    def build_run():
        RunBuilder(definition, StorageHierarchy()).build(
            "bench", entries, Zone.GROOMED, 0, 0, 0
        )

    benchmark(build_run)
