"""Figure 8: index building performance.

Paper: build time scales ~linearly with entries; I3 (one fewer key column)
is fastest; the number of indexed columns matters far less than sort cost.

The shape assertions run on simulated I/O nanoseconds (deterministic:
latency models over the blocks each build writes), so this bench no
longer needs a wall-clock waiver; wall time stays plot-only.
"""

from repro.bench.experiments import fig08_build
from repro.bench.fixtures import entries_for_keys
from repro.bench.harness import assert_roughly_linear
from repro.core.builder import RunBuilder
from repro.core.definition import i1_definition
from repro.core.entry import Zone
from repro.storage.hierarchy import StorageHierarchy

SIZES = (1_000, 5_000, 20_000)


def test_fig08_build(benchmark, reporter):
    result = fig08_build(
        sizes=SIZES,
        repeat=1,  # counter-asserted
    )
    reporter(result)

    # Shape: near-linear build cost (simulated ns) for every definition.
    for label in ("I1", "I2", "I3"):
        series = result.series_by_label(label)
        assert_roughly_linear(
            [x for x, _ in series.points], series.ys(),
            # Deterministic sim-ns: 2.5x absorbs the per-op fixed cost
            # that amortizes across bigger runs (y grows ~10-12x for 20x).
            tolerance=2.5, label=f"fig8 {label}",
        )
    # Shape: I3 never costlier than I1 (one fewer key column means fewer
    # bytes per entry, hence fewer blocks written -- deterministic).
    i1 = result.series_by_label("I1").ys()
    i3 = result.series_by_label("I3").ys()
    for a, b in zip(i3, i1):
        assert a <= b, f"I3 should not cost more than I1: {a} vs {b}"

    # Benchmark the primitive: building one run of the middle size.
    definition = i1_definition()
    entries = entries_for_keys(definition, list(range(SIZES[1])))

    def build_run():
        RunBuilder(definition, StorageHierarchy()).build(
            "bench", entries, Zone.GROOMED, 0, 0, 0
        )

    benchmark(build_run)
