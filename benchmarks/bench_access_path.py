"""Ablation A15: cost-based access-path planning vs always-primary (ISSUE 9).

Two single-shard arms hold byte-identical data -- a skewed orders table
with two secondary indexes (``by_customer``: equality on customer with
``amount`` included; ``by_region``: sorted on region with ``amount``
included) -- and answer the same multi-predicate workload.  The
``baseline`` arm plans every typed query onto the primary index (the
pre-planner behaviour); the ``smart`` arm runs the cost-based planner
over all three indexes, choosing secondary prefix scans with RID
fetch-back and index-only scans when the included columns cover the
projection.

Every measured query starts from a cold shard (decode caches dropped,
local tiers crashed), so the counters are exact per-query costs:

* **block fetches** -- shared-tier block transfers
  (``IOStats.tier("shared").reads``), the paper's block-basis unit;
* **raw key probes** -- zero-decode sort-key slices
  (``DecodeStats.raw_key_probes``), the CPU-side search cost.

Asserted per workload query: baseline and smart return byte-identical
rows; smart never fetches more blocks or probes more keys than baseline,
and strictly fewer whenever it leaves the primary; the smart plan matches
the golden access path; and every index-only query finishes with **zero**
block reads attributed to the primary index and zero to the record store
(the read-attribution ledger, scoped per plan component).

Every persisted number is a deterministic ledger counter -- the workload
is generated arithmetically, no wall-clock and no RNG anywhere -- so
``BENCH_access_path.json`` is byte-stable and CI diffs it against the
committed artifact (same full-size run everywhere, like A13/A14).
"""

from repro.bench.harness import ExperimentResult, Series
from repro.core.definition import ColumnSpec, ColumnType
from repro.core.index import UmziConfig
from repro.planner import Query
from repro.wildfire.engine import ShardConfig, WildfireShard
from repro.wildfire.schema import IndexSpec, TableSchema

N_ROWS = 1_200
BATCHES = 6
DATA_BLOCK_BYTES = 1_024  # fine-grained index blocks: per-block costs show
CUSTOMERS = tuple(f"c{i:02d}" for i in range(16))
# Integer weights (sum 100): c00 takes 20% of rows, the tail 2-5% each.
CUSTOMER_WEIGHTS = (20, 14, 10, 8, 7, 6, 5, 5, 4, 4, 3, 3, 3, 3, 3, 2)
REGIONS = tuple(f"r{i:02d}" for i in range(30))

_ALPHABET = tuple(
    name
    for name, weight in zip(CUSTOMERS, CUSTOMER_WEIGHTS)
    for _ in range(weight)
)


def make_rows():
    """The deterministic skewed order set shared by both arms.

    Orders arrive in bursts of 12 per customer and 8 per region (session
    locality), with the burst-to-slot maps strided so one customer's
    bursts scatter across the whole order_id domain.  ``(i // 12) * 37
    mod 100`` visits every alphabet slot exactly once over 1200 rows, so
    each customer receives exactly ``weight%`` of the rows; regions are
    uniform (40 rows each); amounts span 0..4999 uncorrelated.
    """
    return [
        (
            i,
            _ALPHABET[((i // 12) * 37) % len(_ALPHABET)],
            REGIONS[((i // 8) * 7) % len(REGIONS)],
            (i * 97) % 5_000,
        )
        for i in range(N_ROWS)
    ]


def make_shard(planner: str) -> WildfireShard:
    schema = TableSchema(
        name="orders",
        columns=(
            ColumnSpec("order_id"),
            ColumnSpec("customer", ColumnType.STRING),
            ColumnSpec("region", ColumnType.STRING),
            ColumnSpec("amount"),
        ),
        primary_key=("order_id",),
        sharding_key=("order_id",),
    )
    config = ShardConfig(
        planner=planner,
        post_groom_every=2,
        umzi=UmziConfig(data_block_bytes=DATA_BLOCK_BYTES),
        secondary_indexes={
            "by_customer": IndexSpec(
                equality_columns=("customer",), included_columns=("amount",)
            ),
            "by_region": IndexSpec(
                sort_columns=("region",), included_columns=("amount",)
            ),
        },
    )
    return WildfireShard(schema, IndexSpec(sort_columns=("order_id",)), config=config)


def build_arm(planner: str) -> WildfireShard:
    shard = make_shard(planner)
    rows = make_rows()
    batch = N_ROWS // BATCHES
    for b in range(BATCHES):
        shard.ingest(rows[b * batch : (b + 1) * batch])
        shard.tick()
    shard.run_cycles(4)
    return shard


# The workload: (slug, query, golden smart path (index, index_only,
# fetch_back)).  Queries 0-1 are primary-optimal (both arms plan the
# same path); the rest must leave the primary under the smart planner.
WORKLOAD = (
    (
        "pk_point",
        Query(equalities=(("order_id", 700),)),
        ("primary", False, False),
    ),
    (
        "pk_range",
        Query(ranges=(("order_id", 100, 160),)),
        ("primary", False, False),
    ),
    (
        "cust_hot_cover",
        Query(equalities=(("customer", "c00"),),
              projection=("order_id", "amount")),
        ("by_customer", True, False),
    ),
    (
        "cust_mid_rows",
        Query(equalities=(("customer", "c07"),)),
        ("by_customer", False, True),
    ),
    (
        "cust_cold_cover",
        Query(equalities=(("customer", "c15"),),
              projection=("order_id", "amount")),
        ("by_customer", True, False),
    ),
    (
        "region_band_cover",
        Query(ranges=(("region", "r00", "r04"),),
              projection=("region", "amount")),
        ("by_region", True, False),
    ),
    (
        "region_eq_rows",
        Query(equalities=(("region", "r17"),)),
        ("by_region", False, True),
    ),
    (
        "cust_amount_resid",
        Query(equalities=(("customer", "c05"),),
              ranges=(("amount", 0, 2_500),)),
        ("by_customer", False, True),
    ),
)


def cold_reset(shard: WildfireShard) -> None:
    """Drop every warm copy so the next query pays real block fetches."""
    for shard_index in shard.indexes.all():
        for run in shard_index.index.visible_runs():
            run.drop_decode_cache()
    shard.hierarchy.crash_local_tiers()
    shard.catalog.forget_decoded()


def measure(shard: WildfireShard, query: Query):
    """Run one query cold; return (rows, block_fetches, probes, attribution)."""
    cold_reset(shard)
    stats = shard.hierarchy.stats
    blocks_before = stats.tier("shared").reads
    probes_before = stats.decode.raw_key_probes
    attr_before = stats.attribution_snapshot()
    rows = shard.query(query)
    attr_after = stats.attribution_snapshot()
    attribution = {
        component: attr_after.get(component, 0) - attr_before.get(component, 0)
        for component in attr_after
        if attr_after.get(component, 0) != attr_before.get(component, 0)
    }
    return (
        rows,
        stats.tier("shared").reads - blocks_before,
        stats.decode.raw_key_probes - probes_before,
        attribution,
    )


def run_arm(planner: str):
    """Build one arm and measure every workload query cold."""
    shard = build_arm(planner)
    explains = [shard.explain(query) for _, query, _ in WORKLOAD]
    measurements = [measure(shard, query) for _, query, _ in WORKLOAD]
    return explains, measurements


def test_access_path_planner(reporter):
    base_explains, base_runs = run_arm("baseline")
    smart_explains, smart_runs = run_arm("smart")

    blocks_base = Series("block fetches (baseline)")
    blocks_smart = Series("block fetches (smart)")
    probes_base = Series("raw key probes (baseline)")
    probes_smart = Series("raw key probes (smart)")
    metrics = {}

    for ordinal, (slug, _, golden) in enumerate(WORKLOAD):
        index_name, index_only, fetch_back = golden
        b_rows, b_blocks, b_probes, _ = base_runs[ordinal]
        s_rows, s_blocks, s_probes, s_attr = smart_runs[ordinal]

        # The fetch-back re-check invariant: plans differ, answers do not.
        assert s_rows == b_rows, f"A15 {slug}: smart rows diverge"
        assert b_rows, f"A15 {slug}: workload query matched nothing"

        # Golden access paths: baseline is always the primary, smart
        # chooses the cost model's pick for this query shape.
        assert base_explains[ordinal]["index"] == "primary"
        assert not base_explains[ordinal]["index_only"]
        assert not base_explains[ordinal]["fetch_back"]
        explain = smart_explains[ordinal]
        assert (
            explain["index"], explain["index_only"], explain["fetch_back"]
        ) == golden, f"A15 {slug}: smart left the golden path: {explain}"

        # The planner never loses, and wins whenever it leaves the primary.
        assert s_blocks <= b_blocks, f"A15 {slug}: smart fetched more blocks"
        assert s_probes <= b_probes, f"A15 {slug}: smart probed more keys"
        if index_name != "primary":
            assert s_blocks < b_blocks, f"A15 {slug}: no block saving"
            assert s_probes < b_probes, f"A15 {slug}: no probe saving"
            assert s_attr.get(f"index:{index_name}", 0) > 0

        # Index-only means *zero* primary-index and record block reads.
        if index_only:
            assert s_attr.get("index:primary", 0) == 0, f"A15 {slug}"
            assert s_attr.get("records", 0) == 0, f"A15 {slug}"

        blocks_base.add(ordinal, b_blocks)
        blocks_smart.add(ordinal, s_blocks)
        probes_base.add(ordinal, b_probes)
        probes_smart.add(ordinal, s_probes)
        metrics[f"{slug}_rows"] = float(len(b_rows))
        metrics[f"{slug}_blocks_base"] = float(b_blocks)
        metrics[f"{slug}_blocks_smart"] = float(s_blocks)
        metrics[f"{slug}_probes_base"] = float(b_probes)
        metrics[f"{slug}_probes_smart"] = float(s_probes)
        metrics[f"{slug}_primary_reads_smart"] = float(
            s_attr.get("index:primary", 0)
        )
        metrics[f"{slug}_record_reads_smart"] = float(s_attr.get("records", 0))

    # Replay determinism: the smart arm twice, byte-for-byte -- rows,
    # counters, attribution maps, explains, everything.
    replay_explains, replay_runs = run_arm("smart")
    assert replay_explains == smart_explains
    assert replay_runs == smart_runs

    result = ExperimentResult(
        figure="Ablation A15",
        title="Cost-based access-path planning vs always-primary",
        x_label="workload query ordinal",
        y_label="cold per-query cost (counters)",
        series=[blocks_base, blocks_smart, probes_base, probes_smart],
        notes=(
            f"{N_ROWS} skewed orders (hot customer 20%), two secondary "
            "indexes with included columns; every query measured from a "
            "cold shard in both arms; smart answers are byte-identical "
            "to baseline and index-only queries read zero primary-index "
            "and zero record blocks"
        ),
        metrics=metrics,
    )
    reporter(result, "access_path")
