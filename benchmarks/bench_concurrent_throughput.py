"""Ablation A11: multi-threaded query throughput under live daemons.

The first *honest* concurrency benchmark of the reproduction: N query
threads hammer point lookups, range scans and batch lookups while the
groomer, post-groomer, indexer and per-zone merge daemons run for real
(``WildfireShard.start_daemons``) -- the deployment shape of paper
section 3, not a deterministic tick loop.

Compared modes (``ShardConfig.run_lifecycle``):

* ``"epoch"`` (default) -- queries pin immutable run-list versions;
  retired runs are reclaimed only once unpinned.  Acceptance (ISSUE 4):
  **zero** reclaim-while-pinned events and **zero** query errors, counter-
  asserted, while maintenance keeps retiring runs underneath.
* ``"legacy"`` -- the unprotected pre-epoch ablation: reclamation is
  inline, and the ``reclaimed_while_pinned`` counter records every free
  that raced an in-flight query (each one a potential missing-block read;
  any errors queries do hit are tolerated and *counted* instead of
  crashing the harness).

Set ``UMZI_BENCH_SMOKE=1`` for the CI-sized fixture.
"""

import os
import random
import threading
import time

from repro.bench.harness import ExperimentResult, Series
from repro.core.definition import ColumnSpec
from repro.core.index import UmziConfig
from repro.wildfire.engine import ShardConfig, WildfireShard
from repro.wildfire.schema import IndexSpec, TableSchema

_SMOKE = os.environ.get("UMZI_BENCH_SMOKE") == "1"
THREAD_COUNTS = (2,) if _SMOKE else (1, 2, 4)
DURATION_S = 0.25 if _SMOKE else 0.8
BASELINE_DEVICES = 4
BASELINE_MSGS = 16
GROOM_INTERVAL_S = 0.002


def _make_shard(mode: str) -> WildfireShard:
    schema = TableSchema(
        name="ct",
        columns=(ColumnSpec("device"), ColumnSpec("msg"), ColumnSpec("reading")),
        primary_key=("device", "msg"),
        sharding_key=("device",),
        partition_key=("msg",),
    )
    spec = IndexSpec(("device",), ("msg",), ("reading",))
    shard = WildfireShard(
        schema,
        spec,
        config=ShardConfig(
            post_groom_every=2,
            run_lifecycle=mode,
            umzi=UmziConfig(data_block_bytes=2048),
        ),
    )
    # Small heap budget so the cache manager purges and loads while the
    # queries run (the eviction paths the pins must gate); sized to leave
    # headroom for the committed log's transient blocks.
    shard.hierarchy.ssd.capacity_bytes = 1024 * 1024
    rows = [
        (d, m, d * 1000 + m)
        for d in range(BASELINE_DEVICES)
        for m in range(BASELINE_MSGS)
    ]
    shard.ingest(rows)
    shard.tick()  # baseline fully groomed + indexed before concurrency
    return shard


def _query_worker(shard, seed, stop, counters, lock):
    rng = random.Random(seed)
    ops = errors = 0
    while not stop.is_set():
        d = rng.randrange(BASELINE_DEVICES)
        m = rng.randrange(BASELINE_MSGS)
        try:
            if shard.index_lookup((d,), (m,)) is None:
                errors += 1
            elif len(shard.range_query((d,), (0,), (BASELINE_MSGS - 1,))) \
                    < BASELINE_MSGS:
                errors += 1
            elif any(
                hit is None
                for hit in shard.index_batch_lookup(
                    [((d,), (m2,)) for m2 in range(0, BASELINE_MSGS, 4)]
                )
            ):
                errors += 1
            ops += 3
        except Exception:
            # The legacy hazard: a reclaimed run read mid-query.  Count it;
            # the benchmark quantifies rather than crashes.
            errors += 1
    with lock:
        counters["ops"] += ops
        counters["errors"] += errors


def _run_mode(mode: str, num_threads: int):
    shard = _make_shard(mode)
    epochs = shard.hierarchy.stats.epochs
    stop = threading.Event()
    counters = {"ops": 0, "errors": 0}
    lock = threading.Lock()
    workers = [
        threading.Thread(
            target=_query_worker,
            args=(shard, 40 + i, stop, counters, lock),
        )
        for i in range(num_threads)
    ]
    shard.start_daemons(groom_interval_s=GROOM_INTERVAL_S)
    for w in workers:
        w.start()
    start = time.perf_counter()
    rng = random.Random(7)
    try:
        while time.perf_counter() - start < DURATION_S:
            # Keep the daemons fed: fresh rows -> grooms -> post-grooms ->
            # evolves -> merges, i.e. continuous retirement under queries.
            shard.ingest(
                [
                    (rng.randrange(BASELINE_DEVICES),
                     BASELINE_MSGS + rng.randrange(64),
                     rng.randrange(1000))
                    for _ in range(20)
                ]
            )
            time.sleep(0.005)
    finally:
        elapsed = time.perf_counter() - start
        stop.set()
        for w in workers:
            w.join(timeout=10.0)
        shard.stop_daemons()
    return {
        "ops_per_s": counters["ops"] / elapsed,
        "errors": counters["errors"],
        "runs_retired": epochs.runs_retired,
        "runs_reclaimed": epochs.runs_reclaimed,
        "reclaims_deferred": epochs.reclaims_deferred,
        "reclaimed_while_pinned": epochs.reclaimed_while_pinned,
    }


def test_concurrent_throughput(benchmark, reporter):
    series = []
    metrics = {}
    outcomes = {}
    for mode in ("epoch", "legacy"):
        line = Series(f"{mode} mode (queries/s)")
        for n in THREAD_COUNTS:
            outcome = _run_mode(mode, n)
            outcomes[(mode, n)] = outcome
            line.add(n, outcome["ops_per_s"])
        series.append(line)
        top = outcomes[(mode, THREAD_COUNTS[-1])]
        metrics[f"ops_per_s_{mode}"] = top["ops_per_s"]
        metrics[f"query_errors_{mode}"] = float(top["errors"])
        metrics[f"runs_retired_{mode}"] = float(top["runs_retired"])
        metrics[f"reclaims_deferred_{mode}"] = float(top["reclaims_deferred"])
        metrics[f"reclaimed_while_pinned_{mode}"] = float(
            top["reclaimed_while_pinned"]
        )

    result = ExperimentResult(
        figure="Ablation A11",
        title="Concurrent query throughput under live daemons",
        x_label="query threads",
        y_label="queries/s (sustained)",
        series=series,
        notes=f"{DURATION_S}s windows, groom every {GROOM_INTERVAL_S}s, "
              "post-groom every 2 grooms; epoch vs legacy run lifecycle",
        metrics=metrics,
    )
    reporter(result, slug="concurrent_throughput")

    # Acceptance (ISSUE 4), counter-asserted on every epoch window: the
    # epoch lifecycle sustains concurrent queries with ZERO reclaim-while-
    # pinned events and zero query errors while maintenance keeps retiring
    # runs underneath.
    for n in THREAD_COUNTS:
        outcome = outcomes[("epoch", n)]
        assert outcome["reclaimed_while_pinned"] == 0, outcome
        assert outcome["errors"] == 0, outcome
        assert outcome["ops_per_s"] > 0, outcome
        assert outcome["runs_retired"] > 0, (
            "fixture must actually retire runs under the queries"
        )
        assert outcome["runs_reclaimed"] <= outcome["runs_retired"]

    # Benchmark hook: one epoch-mode window at the top thread count.
    benchmark(lambda: _run_mode("epoch", THREAD_COUNTS[-1]))
